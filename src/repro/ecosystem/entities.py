"""Entities of the spam ecosystem.

The object model follows Section 2 and Section 4.2.4 of the paper:
spammers operate as *affiliates* of *affiliate programs* (pharmacy,
replica, software), run *campaigns* that advertise rotating registered
domains, and deliver mail either through *botnets* or direct senders,
using address lists of varying quality.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional, Sequence, Tuple

from repro.simtime import SimTime


class GoodsCategory(enum.Enum):
    """Goods categories the Click Trajectories tagging covers."""

    PHARMA = "pharma"
    REPLICA = "replica"
    SOFTWARE = "software"


class AddressStrategy(enum.Enum):
    """How a campaign's address list was obtained (Section 2).

    The strategy determines which collection apparatus can see the
    campaign at all:

    * ``BRUTE_FORCE`` -- generated addresses sprayed at every domain with
      a valid MX; reaches MX honeypots, honey accounts and real users.
    * ``HARVESTED`` -- scraped from forums/web sites/mailing lists;
      reaches seeded honey accounts and real users, but not quiescent MX
      honeypot domains.
    * ``PURCHASED`` -- high-quality purchased lists of real users only.
    * ``SOCIAL`` -- mined from compromised accounts' contact lists; real
      users only, invisible to all honeypot apparatus.
    """

    BRUTE_FORCE = "brute_force"
    HARVESTED = "harvested"
    PURCHASED = "purchased"
    SOCIAL = "social"


class CampaignClass(enum.Enum):
    """Structural campaign archetypes used by the world builder."""

    #: Loud, high-volume broadcast runs delivered by botnets.
    BOTNET_BROADCAST = "botnet_broadcast"
    #: Loud campaigns from direct senders / rented infrastructure.
    DIRECT_BROADCAST = "direct_broadcast"
    #: Quiet, deliverability-focused campaigns on quality lists.
    QUIET_TARGETED = "quiet_targeted"
    #: Campaigns for goods outside the tagged categories (dating,
    #: gambling, ebooks, ...) -- live but never tagged.
    OTHER_GOODS = "other_goods"
    #: Rustock-style domain-poisoning episode (random unregistered names).
    DGA_POISON = "dga_poison"


@dataclasses.dataclass(frozen=True)
class AffiliateProgram:
    """A spam affiliate program (e.g. an online pharmacy brand)."""

    program_id: int
    name: str
    category: GoodsCategory
    #: Relative popularity weight among spammers (heavy-tailed).
    weight: float
    #: Whether storefronts of this program carry an extractable affiliate
    #: identifier in the page source (true only for RX-Promotion).
    embeds_affiliate_id: bool = False

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("program weight must be positive")


@dataclasses.dataclass(frozen=True)
class Affiliate:
    """An affiliate (spammer) working for one program."""

    affiliate_id: int
    program_id: int
    #: Annual revenue in USD generated for the program (ground truth for
    #: the revenue-weighted coverage analysis, Figure 6).
    annual_revenue: float

    def __post_init__(self) -> None:
        if self.annual_revenue < 0:
            raise ValueError("revenue must be non-negative")


@dataclasses.dataclass(frozen=True)
class Botnet:
    """A spamming botnet.

    ``monitored`` marks botnets whose bots the research apparatus runs in
    a controlled environment -- only their output enters the ``Bot``
    feed.
    """

    botnet_id: int
    name: str
    #: Relative sending capacity (messages per campaign scale factor).
    capacity: float
    monitored: bool

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("botnet capacity must be positive")


@dataclasses.dataclass(frozen=True)
class DomainPlacement:
    """One advertised domain's active period within a campaign.

    Campaigns rotate through domains as blacklisting burns them; each
    placement is the interval during which the campaign's messages
    advertise this particular domain.
    """

    domain: str
    start: SimTime
    end: SimTime
    #: Messages advertising this domain over the placement (ground-truth
    #: emitted volume, before any feed's capture model).
    volume: float
    #: How long after ``start`` the *broad* (brute-force/harvest) blast
    #: begins.  Spammers warm a fresh domain up through targeted
    #: channels first; honeypot apparatus only sees the domain once the
    #: blast starts, which is why honeypot feeds lag Hu and the
    #: blacklists by days in Figure 9.
    broadcast_lag: SimTime = 0

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty placement for {self.domain!r}")
        if self.volume <= 0:
            raise ValueError(f"non-positive volume for {self.domain!r}")
        if self.broadcast_lag < 0:
            raise ValueError(f"negative broadcast lag for {self.domain!r}")

    @property
    def duration(self) -> SimTime:
        """Placement length in minutes."""
        return self.end - self.start

    @property
    def rate(self) -> float:
        """Emission rate in messages per minute."""
        return self.volume / self.duration

    @property
    def broadcast_start(self) -> SimTime:
        """When the broad blast begins (clamped inside the placement)."""
        return min(self.start + self.broadcast_lag, self.end - 1)


@dataclasses.dataclass
class Campaign:
    """A spam campaign: one affiliate advertising a set of domains.

    This is the simulator's unit of emission.  Feeds never see campaigns
    directly; they see (domain, time) sightings whose rates derive from
    the campaign's placements and the feed's exposure to the campaign's
    address strategy.
    """

    campaign_id: int
    campaign_class: CampaignClass
    strategy: AddressStrategy
    placements: List[DomainPlacement]
    #: Affiliate behind the campaign; None for untaggable campaigns
    #: (other goods, DGA poison).
    affiliate_id: Optional[int] = None
    program_id: Optional[int] = None
    #: Delivering botnet; None means direct sending.
    botnet_id: Optional[int] = None
    #: Probability that a message includes chaff URLs (benign domains
    #: inserted to undermine filters, image hosting, DTD references).
    chaff_probability: float = 0.0
    #: Probability that the advertised URL hides behind a redirector
    #: service (URL shortener / free hosting) instead of the storefront
    #: domain itself.
    redirector_probability: float = 0.0
    #: How well the campaign evades content filters, in [0, 1].  Quiet
    #: campaigns are engineered for deliverability; loud broadcast runs
    #: are mostly filtered before any human sees them.
    filter_evasion: float = 0.1

    def __post_init__(self) -> None:
        if not self.placements:
            raise ValueError("campaign must have at least one placement")
        if not (0.0 <= self.chaff_probability <= 1.0):
            raise ValueError("chaff_probability out of range")
        if not (0.0 <= self.redirector_probability <= 1.0):
            raise ValueError("redirector_probability out of range")
        if not (0.0 <= self.filter_evasion <= 1.0):
            raise ValueError("filter_evasion out of range")

    @property
    def start(self) -> SimTime:
        """Campaign start: earliest placement start."""
        return min(p.start for p in self.placements)

    @property
    def end(self) -> SimTime:
        """Campaign end: latest placement end."""
        return max(p.end for p in self.placements)

    @property
    def total_volume(self) -> float:
        """Ground-truth emitted message volume across all placements."""
        return sum(p.volume for p in self.placements)

    @property
    def domains(self) -> List[str]:
        """Distinct advertised domains, in first-placement order."""
        seen: Dict[str, None] = {}
        for p in self.placements:
            seen.setdefault(p.domain, None)
        return list(seen)

    def placements_for(self, domain: str) -> List[DomainPlacement]:
        """All placements advertising *domain*."""
        return [p for p in self.placements if p.domain == domain]

    def domain_interval(self, domain: str) -> Tuple[SimTime, SimTime]:
        """Ground-truth (first, last) advertising interval of *domain*."""
        spans = self.placements_for(domain)
        if not spans:
            raise KeyError(f"{domain!r} not advertised by this campaign")
        return min(p.start for p in spans), max(p.end for p in spans)

    @property
    def is_tagged_class(self) -> bool:
        """True if the campaign belongs to a taggable goods category."""
        return self.program_id is not None


def total_emitted_volume(campaigns: Sequence[Campaign]) -> float:
    """Sum of ground-truth emitted volume over *campaigns*."""
    return sum(c.total_volume for c in campaigns)
