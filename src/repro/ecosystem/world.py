"""The assembled ground-truth world and its query interface."""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set, Tuple

from repro.ecosystem.benign import BenignWorld
from repro.ecosystem.entities import (
    Affiliate,
    AffiliateProgram,
    Botnet,
    Campaign,
    DomainPlacement,
)
from repro.ecosystem.registry import Registry
from repro.simtime import SimTime, Timeline


@dataclasses.dataclass(frozen=True)
class HostingRecord:
    """Ground truth about what a crawler finds at a storefront domain.

    ``dead`` marks domains whose hosting was never provisioned or was
    taken down before the crawl; they resolve in DNS but serve nothing.
    """

    domain: str
    live_from: SimTime
    live_until: SimTime
    program_id: Optional[int]
    affiliate_id: Optional[int]
    dead: bool = False

    def live_at(self, t: SimTime) -> bool:
        """True if an HTTP fetch at time *t* reaches a working site."""
        return not self.dead and self.live_from <= t < self.live_until


@dataclasses.dataclass
class World:
    """Everything that exists: the reality every feed partially observes."""

    timeline: Timeline
    programs: Dict[int, AffiliateProgram]
    affiliates: Dict[int, Affiliate]
    botnets: Dict[int, Botnet]
    campaigns: List[Campaign]
    registry: Registry
    benign: BenignWorld
    hosting: Dict[str, HostingRecord]
    #: Random pseudo-domains from the poisoning episode (never registered).
    dga_domains: Set[str]
    #: The DGA campaign itself (also present in `campaigns`), if any.
    dga_campaign: Optional[Campaign]
    #: Redirector domains abused by tagged campaigns: domain ->
    #: (program_id, affiliate_id) of the storefront behind the redirect.
    redirector_tags: Dict[str, Tuple[int, Optional[int]]]
    #: Web-spam pool unique to the hybrid feed's non-email sources.
    hyb_webspam: List[str]
    #: Never-registered junk names that appear in user reports.
    junk_domains: List[str]

    def __post_init__(self) -> None:
        self._placements_by_domain: Optional[
            Dict[str, List[Tuple[Campaign, DomainPlacement]]]
        ] = None
        self._volume_by_domain: Optional[Dict[str, float]] = None

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------

    def campaign_by_id(self, campaign_id: int) -> Campaign:
        """Return the campaign with *campaign_id* (IndexError-safe)."""
        for c in self.campaigns:
            if c.campaign_id == campaign_id:
                return c
        raise KeyError(f"no campaign {campaign_id}")

    def placements_by_domain(
        self,
    ) -> Dict[str, List[Tuple[Campaign, DomainPlacement]]]:
        """Index of every placement by advertised domain (cached)."""
        if self._placements_by_domain is None:
            index: Dict[str, List[Tuple[Campaign, DomainPlacement]]] = {}
            for campaign in self.campaigns:
                for placement in campaign.placements:
                    index.setdefault(placement.domain, []).append(
                        (campaign, placement)
                    )
            self._placements_by_domain = index
        return self._placements_by_domain

    def emitted_volume_by_domain(self) -> Dict[str, float]:
        """Ground-truth emitted message volume per advertised domain."""
        if self._volume_by_domain is None:
            volumes: Dict[str, float] = {}
            for campaign in self.campaigns:
                for placement in campaign.placements:
                    volumes[placement.domain] = (
                        volumes.get(placement.domain, 0.0) + placement.volume
                    )
            self._volume_by_domain = volumes
        return self._volume_by_domain

    def advertised_domains(self) -> Set[str]:
        """All domains ever advertised in email spam (incl. DGA noise)."""
        return set(self.placements_by_domain())

    def domain_interval(self, domain: str) -> Tuple[SimTime, SimTime]:
        """Ground-truth (first, last) advertisement time of *domain*."""
        entries = self.placements_by_domain().get(domain)
        if not entries:
            raise KeyError(f"{domain!r} never advertised")
        return (
            min(p.start for _, p in entries),
            max(p.end for _, p in entries),
        )

    def is_dga(self, domain: str) -> bool:
        """True if *domain* came from the poisoning episode."""
        return domain in self.dga_domains

    def truth_program_of(self, domain: str) -> Optional[int]:
        """Ground-truth tagged program behind *domain*, if any.

        Covers both storefront domains (via hosting) and abused
        redirector domains (via redirect destination).
        """
        record = self.hosting.get(domain)
        if record is not None and record.program_id is not None:
            return record.program_id
        tag = self.redirector_tags.get(domain)
        if tag is not None:
            return tag[0]
        return None

    def truth_affiliate_of(self, domain: str) -> Optional[int]:
        """Ground-truth affiliate id behind *domain*, if any."""
        record = self.hosting.get(domain)
        if record is not None and record.affiliate_id is not None:
            return record.affiliate_id
        tag = self.redirector_tags.get(domain)
        if tag is not None:
            return tag[1]
        return None

    def rx_program_id(self) -> Optional[int]:
        """The program that embeds affiliate ids (RX-Promotion analog)."""
        for program in self.programs.values():
            if program.embeds_affiliate_id:
                return program.program_id
        return None

    def monitored_botnet_ids(self) -> Set[int]:
        """Botnets whose bots the Bot feed runs under instrumentation."""
        return {b.botnet_id for b in self.botnets.values() if b.monitored}

    # ------------------------------------------------------------------
    # Summary statistics (used by tests and examples)
    # ------------------------------------------------------------------

    def summary(self) -> Dict[str, float]:
        """Coarse world statistics for logging and sanity checks."""
        tagged = sum(1 for c in self.campaigns if c.is_tagged_class)
        return {
            "programs": len(self.programs),
            "affiliates": len(self.affiliates),
            "botnets": len(self.botnets),
            "campaigns": len(self.campaigns),
            "tagged_campaigns": tagged,
            "advertised_domains": len(self.advertised_domains()),
            "dga_domains": len(self.dga_domains),
            "registered_domains": len(self.registry),
            "alexa_size": len(self.benign.alexa_ranked),
            "odp_size": len(self.benign.odp_domains),
            "total_emitted_volume": sum(
                c.total_volume for c in self.campaigns
            ),
        }
