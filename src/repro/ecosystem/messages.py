"""Message-level rendering of campaign emissions.

The simulator works at (domain, time) granularity for scale, but some
feed providers ship *full URLs* or entire messages (Section 2).  This
module renders campaign emissions down to message level -- URLs with
subdomains, paths and query strings, plus chaff URLs -- so the URL
normalization path is exercised end-to-end and URL-style feed files can
be produced for the ingestion tooling.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.ecosystem.entities import Campaign, DomainPlacement
from repro.ecosystem.world import World
from repro.feeds.base import FeedRecord
from repro.simtime import SimTime

_SUBDOMAIN_WORDS = ("www", "shop", "secure", "buy", "order", "best", "go")
_PATH_WORDS = ("index", "buy", "order", "item", "meds", "promo", "track")


@dataclasses.dataclass(frozen=True)
class SpamMessage:
    """One rendered spam message."""

    campaign_id: int
    time: SimTime
    urls: List[str]

    @property
    def primary_url(self) -> str:
        """The advertised (first) URL."""
        return self.urls[0]


def render_url(
    rng: random.Random,
    domain: str,
    affiliate_id: Optional[int] = None,
) -> str:
    """Render a plausible spam-advertised URL for *domain*.

    Affiliate programs credit sales through the URL, so when an
    affiliate id is supplied it is embedded as a query parameter (one
    of the paper's observed crediting mechanisms).
    """
    host = domain
    if rng.random() < 0.6:
        host = f"{rng.choice(_SUBDOMAIN_WORDS)}.{domain}"
    path = f"/{rng.choice(_PATH_WORDS)}"
    if rng.random() < 0.4:
        path += f"/{rng.randrange(1, 10_000)}"
    query = ""
    if affiliate_id is not None:
        query = f"?aff={affiliate_id}"
    elif rng.random() < 0.25:
        query = f"?id={rng.randrange(1, 100_000)}"
    return f"http://{host}{path}{query}"


def render_message(
    rng: random.Random,
    world: World,
    campaign: Campaign,
    placement: DomainPlacement,
    time: SimTime,
) -> SpamMessage:
    """Render one message for *placement* at *time*."""
    urls = [
        render_url(rng, placement.domain, campaign.affiliate_id)
    ]
    if (
        campaign.chaff_probability > 0
        and world.benign.chaff_pool
        and rng.random() < campaign.chaff_probability
    ):
        urls.append(render_url(rng, world.benign.sample_chaff(rng)))
    return SpamMessage(campaign.campaign_id, time, urls)


def sample_messages(
    world: World,
    campaign: Campaign,
    n: int,
    rng: random.Random,
) -> List[SpamMessage]:
    """Sample *n* messages from *campaign*, volume-proportionally.

    Message times are uniform over each placement's active interval;
    placements are chosen proportionally to their emitted volume.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    placements = campaign.placements
    total = sum(p.volume for p in placements)
    messages: List[SpamMessage] = []
    for _ in range(n):
        x = rng.random() * total
        acc = 0.0
        chosen = placements[-1]
        for placement in placements:
            acc += placement.volume
            if x <= acc:
                chosen = placement
                break
        time = chosen.start + int(rng.random() * chosen.duration)
        messages.append(render_message(rng, world, campaign, chosen, time))
    messages.sort(key=lambda m: m.time)
    return messages


def iter_world_messages(
    world: World,
    per_campaign: int,
    seed: int = 0,
    campaigns: Optional[Sequence[Campaign]] = None,
) -> Iterator[SpamMessage]:
    """Yield a message sample across the world's campaigns."""
    rng = random.Random(seed)
    for campaign in campaigns if campaigns is not None else world.campaigns:
        yield from sample_messages(world, campaign, per_campaign, rng)


def messages_to_records(
    messages: Iterable["SpamMessage"],
) -> List[FeedRecord]:
    """Normalize rendered messages back to (domain, time) records.

    Every URL in every message yields one record; unparseable URLs are
    dropped (they would be a provider bug here, but the ingestion path
    stays lenient).
    """
    from repro.domains.url import try_domain_of_url

    records: List[FeedRecord] = []
    for message in messages:
        for url in message.urls:
            domain = try_domain_of_url(url)
            if domain is not None:
                records.append(FeedRecord(domain, message.time))
    return records
