"""Configuration of the synthetic spam ecosystem.

All knobs of the world generator live here.  The defaults
(:func:`paper_config`) are calibrated so that the ten simulated feeds
reproduce the qualitative shape of the paper's tables and figures at a
scale that runs on a laptop: unique-domain counts are roughly 1:100 of
the paper's and message volumes roughly 1:1500 (the paper's corpus is
over a billion messages).  :func:`small_config` is a miniature world for
fast unit tests.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

from repro.ecosystem.entities import AddressStrategy, CampaignClass


@dataclasses.dataclass(frozen=True)
class CampaignClassConfig:
    """Generation parameters for one campaign archetype.

    Volumes are drawn from a bounded Pareto (heavy tail: a few campaigns
    dominate total volume, as the paper assumes when noting that tagged
    domains are a third of domains but the bulk of volume).
    """

    count: int
    volume_low: float
    volume_high: float
    volume_alpha: float
    domains_low: int
    domains_high: int
    duration_low_days: float
    duration_high_days: float
    #: (strategy, weight) mix the class draws address strategies from.
    strategies: Tuple[Tuple[AddressStrategy, float], ...]
    chaff_probability: float = 0.0
    redirector_probability: float = 0.0
    filter_evasion_low: float = 0.05
    filter_evasion_high: float = 0.3
    #: Fraction of campaigns in this class run for tagged (known
    #: storefront) programs; the rest advertise minor untagged shops.
    tagged_fraction: float = 1.0
    #: Probability a storefront domain of this class is dead at crawl
    #: time (hosting never provisioned / taken down).  Quiet fly-by-night
    #: operations die much faster than professionally-hosted broadcast
    #: storefronts; this gap drives the Hu feed's low HTTP purity.
    dead_site_probability: float = 0.12
    #: How long (days) after a domain's first quiet appearance the broad
    #: blast begins -- the honeypot-visible phase of each placement.
    broadcast_lag_low_days: float = 0.0
    broadcast_lag_high_days: float = 0.0

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("count must be non-negative")
        if not (0 < self.volume_low <= self.volume_high):
            raise ValueError("need 0 < volume_low <= volume_high")
        if not (1 <= self.domains_low <= self.domains_high):
            raise ValueError("need 1 <= domains_low <= domains_high")
        if not (0 < self.duration_low_days <= self.duration_high_days):
            raise ValueError("bad duration range")
        if not (0.0 <= self.tagged_fraction <= 1.0):
            raise ValueError("tagged_fraction out of range")
        if not self.strategies:
            raise ValueError("need at least one strategy")


@dataclasses.dataclass(frozen=True)
class DgaConfig:
    """The Rustock-style domain-poisoning episode (Section 4.1.1)."""

    #: Number of distinct random pseudo-domains emitted.
    n_domains: int = 60_000
    #: Ground-truth emitted message volume over the episode.
    volume: float = 2_000_000.0
    start_day: float = 20.0
    duration_days: float = 21.0
    #: Fraction of the random names that happen to collide with real
    #: registered (parked) domains -- the likely source of the Bot
    #: feed's exclusive "live" domains in the paper (Section 4.2.1).
    registered_fraction: float = 0.012
    #: The (monitored) botnet that runs the episode, by name.
    botnet_name: str = "rustock"


@dataclasses.dataclass(frozen=True)
class BenignConfig:
    """The benign web: popularity lists, redirectors, chaff."""

    #: Size of the simulated Alexa top list.
    alexa_size: int = 8_000
    #: Size of the simulated Open Directory listing.
    odp_size: int = 6_000
    #: Fraction of ODP domains also on the Alexa list.
    odp_alexa_overlap: float = 0.45
    #: Redirector/free-hosting services abused by spammers (bit.ly,
    #: blogspot, ...).  All are Alexa-listed.
    n_redirectors: int = 40
    #: Chaff pool: benign domains that co-occur in spam messages (image
    #: hosting, DTD references, phished brands).  Drawn from Alexa/ODP.
    chaff_pool_size: int = 600
    #: Plain benign mail domains (newsletters etc.) that users mis-report.
    n_newsletter_domains: int = 400


@dataclasses.dataclass(frozen=True)
class ProgramConfig:
    """Affiliate-program population (Section 4.2.3)."""

    n_pharma: int = 30
    n_replica: int = 8
    n_software: int = 7
    #: RX-Promotion affiliate population; the paper extracted 846
    #: distinct affiliate identifiers from storefront page sources.
    rx_affiliates: int = 260
    affiliates_low: int = 15
    affiliates_high: int = 120
    #: Bounded-Pareto parameters for per-affiliate annual revenue (USD).
    revenue_alpha: float = 0.9
    revenue_low: float = 3_000.0
    revenue_high: float = 3_000_000.0
    #: Zipf exponent for program popularity among spammers.
    popularity_exponent: float = 0.9

    @property
    def total_programs(self) -> int:
        """Total number of tagged affiliate programs (45 in the paper)."""
        return self.n_pharma + self.n_replica + self.n_software


@dataclasses.dataclass(frozen=True)
class BotnetConfig:
    """Botnet population."""

    n_botnets: int = 8
    n_monitored: int = 3
    capacity_low: float = 0.5
    capacity_high: float = 3.0
    #: How many distinct programs a single botnet spams for (operators
    #: act as affiliates themselves; Section 4.2.3).
    programs_per_botnet_low: int = 2
    programs_per_botnet_high: int = 6


@dataclasses.dataclass(frozen=True)
class EcosystemConfig:
    """Everything the world builder needs, minus the seed."""

    programs: ProgramConfig = dataclasses.field(default_factory=ProgramConfig)
    botnets: BotnetConfig = dataclasses.field(default_factory=BotnetConfig)
    benign: BenignConfig = dataclasses.field(default_factory=BenignConfig)
    dga: DgaConfig = dataclasses.field(default_factory=DgaConfig)
    campaign_classes: Dict[CampaignClass, CampaignClassConfig] = dataclasses.field(
        default_factory=dict
    )
    #: Days a storefront domain is registered before first advertisement.
    registration_lead_low_days: float = 0.5
    registration_lead_high_days: float = 10.0
    #: Days a storefront stays up (crawlable) after its last placement.
    hosting_linger_low_days: float = 2.0
    hosting_linger_high_days: float = 45.0
    #: Probability that a storefront domain is already dead (hosting
    #: taken down / never provisioned) when the crawler visits it.
    dead_site_probability: float = 0.12
    #: Hybrid feed's non-email web-spam pool: scraped domains that never
    #: appear in email spam (drives Hyb's exclusive live domains).
    hyb_webspam_pool: int = 16_000
    #: Fraction of that pool that is live (the rest unregistered or dead,
    #: dragging Hyb's DNS purity down to ~64%).
    hyb_webspam_live_fraction: float = 0.28
    #: Pool of junk/never-registered domains that appear in user reports
    #: (typos, truncations); drives Hu's 88% DNS rate.
    junk_report_pool: int = 1_500

    def class_config(self, cls: CampaignClass) -> CampaignClassConfig:
        """Return the config for campaign class *cls* (KeyError if absent)."""
        return self.campaign_classes[cls]


def _default_campaign_classes(scale: float) -> Dict[CampaignClass, CampaignClassConfig]:
    """Campaign-class mix; *scale* multiplies campaign counts."""

    def n(count: int) -> int:
        return max(1, int(round(count * scale)))

    return {
        CampaignClass.BOTNET_BROADCAST: CampaignClassConfig(
            count=n(90),
            volume_low=3_000.0,
            volume_high=1_200_000.0,
            volume_alpha=0.85,
            domains_low=3,
            domains_high=16,
            duration_low_days=4.0,
            duration_high_days=60.0,
            strategies=(
                (AddressStrategy.BRUTE_FORCE, 0.7),
                (AddressStrategy.HARVESTED, 0.3),
            ),
            chaff_probability=0.12,
            redirector_probability=0.08,
            filter_evasion_low=0.01,
            filter_evasion_high=0.10,
            tagged_fraction=0.70,
            dead_site_probability=0.06,
            broadcast_lag_low_days=0.5,
            broadcast_lag_high_days=3.5,
        ),
        CampaignClass.DIRECT_BROADCAST: CampaignClassConfig(
            count=n(340),
            volume_low=500.0,
            volume_high=60_000.0,
            volume_alpha=1.0,
            domains_low=2,
            domains_high=8,
            duration_low_days=2.0,
            duration_high_days=25.0,
            strategies=(
                (AddressStrategy.BRUTE_FORCE, 0.45),
                (AddressStrategy.HARVESTED, 0.55),
            ),
            chaff_probability=0.10,
            redirector_probability=0.10,
            filter_evasion_low=0.05,
            filter_evasion_high=0.25,
            tagged_fraction=0.50,
            dead_site_probability=0.12,
            broadcast_lag_low_days=0.5,
            broadcast_lag_high_days=3.0,
        ),
        CampaignClass.QUIET_TARGETED: CampaignClassConfig(
            count=n(3_200),
            volume_low=20.0,
            volume_high=1_500.0,
            volume_alpha=1.3,
            domains_low=1,
            domains_high=5,
            duration_low_days=0.5,
            duration_high_days=12.0,
            strategies=(
                (AddressStrategy.PURCHASED, 0.55),
                (AddressStrategy.SOCIAL, 0.30),
                (AddressStrategy.HARVESTED, 0.15),
            ),
            chaff_probability=0.06,
            redirector_probability=0.18,
            filter_evasion_low=0.4,
            filter_evasion_high=0.95,
            tagged_fraction=0.22,
            dead_site_probability=0.38,
        ),
        CampaignClass.OTHER_GOODS: CampaignClassConfig(
            count=n(4_200),
            volume_low=50.0,
            volume_high=60_000.0,
            volume_alpha=1.1,
            domains_low=1,
            domains_high=8,
            duration_low_days=0.5,
            duration_high_days=20.0,
            strategies=(
                (AddressStrategy.BRUTE_FORCE, 0.25),
                (AddressStrategy.HARVESTED, 0.35),
                (AddressStrategy.PURCHASED, 0.25),
                (AddressStrategy.SOCIAL, 0.15),
            ),
            chaff_probability=0.08,
            redirector_probability=0.12,
            filter_evasion_low=0.1,
            filter_evasion_high=0.7,
            tagged_fraction=0.0,
            dead_site_probability=0.30,
            broadcast_lag_low_days=0.2,
            broadcast_lag_high_days=2.0,
        ),
    }


def paper_config(scale: float = 1.0) -> EcosystemConfig:
    """The default world: calibrated to the paper's qualitative shape.

    *scale* multiplies the campaign population and the volume-carrying
    pools (see :func:`scaled_config`); ``scale=1`` is the laptop-size
    1:100 reproduction, ``scale=100`` approaches the paper's ~1M
    distinct spam domains.
    """
    config = EcosystemConfig(campaign_classes=_default_campaign_classes(1.0))
    if scale != 1.0:
        config = scaled_config(config, scale)
    return config


def scaled_config(config: EcosystemConfig, scale: float) -> EcosystemConfig:
    """Scale *config*'s spam populations by *scale*.

    Multiplies campaign-class counts, the DGA episode (domains and
    volume), and the web-spam / junk-report pools.  The benign web is
    deliberately left fixed: Alexa/ODP list sizes are a property of the
    measurement apparatus, not of how much spam exists -- and keeping
    them fixed preserves each feed's benign-contamination *rates* while
    the spam side grows.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")

    def n(count: int) -> int:
        return max(1, int(round(count * scale)))

    classes = {
        cls: dataclasses.replace(cfg, count=n(cfg.count))
        for cls, cfg in config.campaign_classes.items()
    }
    return dataclasses.replace(
        config,
        campaign_classes=classes,
        dga=dataclasses.replace(
            config.dga,
            n_domains=n(config.dga.n_domains),
            volume=config.dga.volume * scale,
        ),
        hyb_webspam_pool=n(config.hyb_webspam_pool),
        junk_report_pool=n(config.junk_report_pool),
    )


def small_config() -> EcosystemConfig:
    """A miniature world for fast tests (seconds, not minutes)."""
    return EcosystemConfig(
        programs=ProgramConfig(
            n_pharma=6,
            n_replica=2,
            n_software=2,
            rx_affiliates=60,
            affiliates_low=5,
            affiliates_high=20,
        ),
        botnets=BotnetConfig(n_botnets=4, n_monitored=2),
        benign=BenignConfig(
            alexa_size=600,
            odp_size=400,
            n_redirectors=10,
            chaff_pool_size=80,
            n_newsletter_domains=50,
        ),
        dga=DgaConfig(n_domains=2_000, volume=60_000.0),
        campaign_classes=_default_campaign_classes(0.08),
        hyb_webspam_pool=700,
        junk_report_pool=120,
    )
