"""Sharded world construction: plan, pack, merge.

The monolithic :meth:`~repro.ecosystem.builder.WorldBuilder.build` holds
the entire world in one heap.  At 10--100x paper scale that is millions
of placement objects -- too much to build serially and too much to keep
resident just to compute summary tables.  This module splits the build
into a deterministic **plan** of independent units, executes contiguous
unit ranges (**shards**) on a pre-forked
:class:`~repro.parallel.pool.WorkerPool`, ships results back as packed
columnar blobs, and **merges** them in plan order.

Why shard count can never change a byte
---------------------------------------

* **The plan is serial.**  Entity populations and the campaign identity
  pre-pass run in the parent before any fork; every shard sees the same
  :class:`~repro.ecosystem.builder.BuildContext` copy-on-write.
* **Units own their streams.**  A unit draws only from RNG streams
  derived from ``(root_seed, unit label)`` -- ``campaign.<class>.<i>``,
  ``dga.<j>``, ``hyb.<j>``, ``junk.<j>`` -- so its output is a pure
  function of ``(ctx, unit)``, independent of which worker runs it or
  what ran before it.
* **Units own their names.**  Storefront name generators are salted
  per campaign / per block (see
  :class:`~repro.domains.names.SpamNameGenerator`), so shard-local
  issuance is globally collision-free without a shared issued set.
* **The merge folds in plan order** with operations that are either
  commutative (registry registration keeps the earliest date; XOR
  fingerprint folding) or first-write-wins over effectively disjoint
  key sets (hosting, redirector tags), so grouping units into 1 or 64
  shards yields the same world.  Shard boundaries are *cuts* in the
  fixed unit sequence; concatenating shard outputs reproduces the full
  unit sequence exactly.

The one caveat: gibberish pools (DGA bursts, junk reports) no longer
share an issued-name set across blocks, so two blocks *can* emit the
same name -- a birthday collision in a >10^12 name space, astronomically
rare at paper scale and deterministic (same seed, same collision) when
it happens.  The merge resolves any such collision by plan order.
"""

from __future__ import annotations

import bisect
import dataclasses
import hashlib
from array import array
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro import obs
from repro.ecosystem.builder import (
    BuildContext,
    CLASS_BUILD_ORDER,
    MEMBER_STRIDE,
    UnitResult,
    WorldBuilder,
    build_campaign_unit,
    build_dga_block,
    build_hyb_block,
    build_junk_block,
    dga_botnet_id,
    draw_identities,
    register_benign,
)
from repro.ecosystem.config import EcosystemConfig
from repro.ecosystem.entities import (
    AddressStrategy,
    Campaign,
    CampaignClass,
    DomainPlacement,
)
from repro.ecosystem.registry import Registry
from repro.ecosystem.world import HostingRecord, World
from repro.obs.hosttime import Stopwatch, peak_rss_kib
from repro.parallel.fanout import fork_available, resolve_jobs
from repro.parallel.pool import WorkerPool
from repro.simtime import Timeline

#: Maximum campaigns per campaign-partition unit.  (program, botnet)
#: partitions larger than this are chunked so the planner can balance
#: shards even when one program dominates.
PARTITION_MAX = 512
#: Names per DGA / web-spam / junk block unit.
DGA_BLOCK = 4096
HYB_BLOCK = 2048
JUNK_BLOCK = 2048

#: Rough per-item build cost by unit kind (campaign bodies draw
#: placements, registrations and hosting; block names are one draw
#: each).  Only relative magnitudes matter -- the planner balances
#: cumulative cost across shards.
_UNIT_COST = {"camp": 24.0, "dga": 1.0, "hyb": 1.5, "junk": 1.0}

#: Enum definition orders, used as compact integer ranks in packed rows.
CLASS_ORDER: Tuple[CampaignClass, ...] = tuple(CampaignClass)
STRATEGY_ORDER: Tuple[AddressStrategy, ...] = tuple(AddressStrategy)


@dataclasses.dataclass(frozen=True)
class PlanUnit:
    """One independently buildable unit of the world.

    ``kind`` selects the builder: ``camp`` (a chunk of one
    (program, botnet) campaign partition, with the flat identity rows
    in ``members``), or a ``dga`` / ``hyb`` / ``junk`` block of
    ``count`` names with block index ``index``.
    """

    kind: str
    index: int
    count: int
    members: Optional[array] = None

    @property
    def cost(self) -> float:
        return self.count * _UNIT_COST[self.kind]


@dataclasses.dataclass(frozen=True)
class ShardPlan:
    """The full, deterministic unit sequence for one world build.

    Derived from config + seed alone (via the identity pre-pass); the
    same plan drives serial and parallel builds, so "how many shards"
    is decided after -- and independently of -- "what work exists".
    """

    units: Tuple[PlanUnit, ...]
    #: Number of non-DGA campaigns; also the DGA campaign's id.
    n_campaigns: int
    #: Botnet the DGA episode runs on (None when it is disabled).
    dga_botnet_id: Optional[int]

    @property
    def cumulative_cost(self) -> Tuple[float, ...]:
        acc = 0.0
        out: List[float] = []
        for unit in self.units:
            acc += unit.cost
            out.append(acc)
        return tuple(out)


def build_plan(ctx: BuildContext) -> ShardPlan:
    """Derive the unit sequence: identity pre-pass, partition, chunk.

    Campaigns are partitioned by their (program, botnet) identity --
    the paper's natural unit of attribution, and RNG-independent
    because identities are fixed *before* any campaign body draws.
    Partitions are visited in sorted key order and chunked to at most
    :data:`PARTITION_MAX` campaigns; the gibberish/side pools follow as
    fixed-size blocks.
    """
    members = draw_identities(ctx)
    partitions: Dict[Tuple[int, int], List[Tuple[int, ...]]] = {}
    for row in members:
        key = (row[4], row[6])  # (program_id, botnet_id), -1 for absent
        partitions.setdefault(key, []).append(row)

    units: List[PlanUnit] = []
    part_index = 0
    for key in sorted(partitions):
        rows = partitions[key]
        for lo in range(0, len(rows), PARTITION_MAX):
            chunk = rows[lo:lo + PARTITION_MAX]
            flat = array("q")
            for row in chunk:
                flat.extend(row)
            units.append(
                PlanUnit(
                    kind="camp",
                    index=part_index,
                    count=len(chunk),
                    members=flat,
                )
            )
            part_index += 1

    cfg = ctx.config
    for kind, total, block in (
        ("dga", cfg.dga.n_domains, DGA_BLOCK),
        ("hyb", cfg.hyb_webspam_pool, HYB_BLOCK),
        ("junk", cfg.junk_report_pool, JUNK_BLOCK),
    ):
        for j, lo in enumerate(range(0, total, block)):
            units.append(
                PlanUnit(kind=kind, index=j, count=min(block, total - lo))
            )

    return ShardPlan(
        units=tuple(units),
        n_campaigns=len(members),
        dga_botnet_id=(
            dga_botnet_id(cfg, ctx.botnets) if cfg.dga.n_domains > 0 else None
        ),
    )


def shard_ranges(plan: ShardPlan, shards: int) -> List[Tuple[int, int]]:
    """Cut the unit sequence into ≤ *shards* contiguous, cost-balanced
    ranges.  Returns non-empty ``(lo, hi)`` unit-index pairs whose
    concatenation is exactly ``range(len(plan.units))`` -- the property
    the merge's shard-count invariance rests on.
    """
    if shards < 1:
        raise ValueError("need at least one shard")
    cumulative = plan.cumulative_cost
    if not cumulative:
        return []
    total = cumulative[-1]
    ranges: List[Tuple[int, int]] = []
    lo = 0
    for s in range(1, shards + 1):
        target = total * s / shards
        hi = bisect.bisect_left(cumulative, target) + 1
        hi = max(hi, lo)
        hi = min(hi, len(plan.units))
        if s == shards:
            hi = len(plan.units)
        if hi > lo:
            ranges.append((lo, hi))
        lo = hi
    return ranges


def build_unit(ctx: BuildContext, plan: ShardPlan, index: int) -> UnitResult:
    """Build unit *index* of *plan* (pure in ``(ctx, plan, index)``)."""
    unit = plan.units[index]
    if unit.kind == "camp":
        assert unit.members is not None
        return build_campaign_unit(ctx, unit.members)
    if unit.kind == "dga":
        return build_dga_block(ctx, unit.index, unit.count)
    if unit.kind == "hyb":
        return build_hyb_block(ctx, unit.index, unit.count)
    if unit.kind == "junk":
        return build_junk_block(ctx, unit.index, unit.count)
    raise ValueError(f"unknown unit kind {unit.kind!r}")


# ----------------------------------------------------------------------
# Packed shard blobs
# ----------------------------------------------------------------------


def _join(domains: Iterable[str]) -> bytes:
    return "\n".join(domains).encode("utf-8")


def _split(blob: bytes) -> List[str]:
    if not blob:
        return []
    return blob.decode("utf-8").split("\n")


class PackedUnit(NamedTuple):
    """One :class:`UnitResult` in columnar form (cheap to pickle).

    Workers return these instead of object graphs: a handful of typed
    arrays and newline-joined name blobs pickle as flat buffers,
    sidestepping per-object pickling costs the same way
    :mod:`repro.io.columns` does for feed records.  Campaign placements
    are stored per campaign in campaign order; ``placements`` rows
    beyond the campaigns' total are the unit's loose (DGA) placements.
    """

    kind: str
    #: Per campaign: id, class rank, strategy rank, program, affiliate,
    #: botnet (-1 for absent), n_placements.
    camp_meta: array
    #: Per campaign: chaff, redirector, filter_evasion.
    camp_floats: array
    p_domains: bytes
    #: Per placement: start, end, broadcast_lag.
    p_times: array
    p_volumes: array
    reg_domains: bytes
    reg_times: array
    host_domains: bytes
    #: Per hosting record: live_from, live_until.
    host_times: array
    #: Per hosting record: program, affiliate (-1 for absent), dead flag.
    host_ids: array
    tag_domains: bytes
    #: Per redirector tag: program, affiliate (-1 for absent).
    tag_ids: array
    pool_domains: bytes


def pack_unit(unit: UnitResult) -> PackedUnit:
    """Pack a built unit into columnar form."""
    camp_meta = array("q")
    camp_floats = array("d")
    p_names: List[str] = []
    p_times = array("q")
    p_volumes = array("d")
    for c in unit.campaigns:
        camp_meta.extend(
            (
                c.campaign_id,
                CLASS_ORDER.index(c.campaign_class),
                STRATEGY_ORDER.index(c.strategy),
                -1 if c.program_id is None else c.program_id,
                -1 if c.affiliate_id is None else c.affiliate_id,
                -1 if c.botnet_id is None else c.botnet_id,
                len(c.placements),
            )
        )
        camp_floats.extend(
            (c.chaff_probability, c.redirector_probability, c.filter_evasion)
        )
        for p in c.placements:
            p_names.append(p.domain)
            p_times.extend((p.start, p.end, p.broadcast_lag))
            p_volumes.append(p.volume)
    for p in unit.placements:
        p_names.append(p.domain)
        p_times.extend((p.start, p.end, p.broadcast_lag))
        p_volumes.append(p.volume)

    reg_times = array("q")
    reg_names: List[str] = []
    for domain, t in unit.registrations:
        reg_names.append(domain)
        reg_times.append(t)

    host_names: List[str] = []
    host_times = array("q")
    host_ids = array("q")
    for record in unit.hosting:
        host_names.append(record.domain)
        host_times.extend((record.live_from, record.live_until))
        host_ids.extend(
            (
                -1 if record.program_id is None else record.program_id,
                -1 if record.affiliate_id is None else record.affiliate_id,
                int(record.dead),
            )
        )

    tag_names: List[str] = []
    tag_ids = array("q")
    for domain, program, affiliate in unit.redirector_tags:
        tag_names.append(domain)
        tag_ids.extend((program, affiliate))

    return PackedUnit(
        kind=unit.kind,
        camp_meta=camp_meta,
        camp_floats=camp_floats,
        p_domains=_join(p_names),
        p_times=p_times,
        p_volumes=p_volumes,
        reg_domains=_join(reg_names),
        reg_times=reg_times,
        host_domains=_join(host_names),
        host_times=host_times,
        host_ids=host_ids,
        tag_domains=_join(tag_names),
        tag_ids=tag_ids,
        pool_domains=_join(unit.pool),
    )


def unpack_unit(packed: PackedUnit) -> UnitResult:
    """Reconstruct a :class:`UnitResult` from its packed form."""
    result = UnitResult(kind=packed.kind)
    names = _split(packed.p_domains)

    def placements_at(start: int, n: int) -> List[DomainPlacement]:
        out: List[DomainPlacement] = []
        for i in range(start, start + n):
            out.append(
                DomainPlacement(
                    domain=names[i],
                    start=packed.p_times[3 * i],
                    end=packed.p_times[3 * i + 1],
                    volume=packed.p_volumes[i],
                    broadcast_lag=packed.p_times[3 * i + 2],
                )
            )
        return out

    cursor = 0
    meta = packed.camp_meta
    for offset in range(0, len(meta), 7):
        (cid, cls_rank, strat_rank, program, affiliate, botnet,
         n_placements) = meta[offset:offset + 7]
        findex = offset // 7
        result.campaigns.append(
            Campaign(
                campaign_id=cid,
                campaign_class=CLASS_ORDER[cls_rank],
                strategy=STRATEGY_ORDER[strat_rank],
                placements=placements_at(cursor, n_placements),
                affiliate_id=None if affiliate < 0 else affiliate,
                program_id=None if program < 0 else program,
                botnet_id=None if botnet < 0 else botnet,
                chaff_probability=packed.camp_floats[3 * findex],
                redirector_probability=packed.camp_floats[3 * findex + 1],
                filter_evasion=packed.camp_floats[3 * findex + 2],
            )
        )
        cursor += n_placements
    result.placements = placements_at(cursor, len(names) - cursor)

    for i, domain in enumerate(_split(packed.reg_domains)):
        result.registrations.append((domain, packed.reg_times[i]))
    for i, domain in enumerate(_split(packed.host_domains)):
        result.hosting.append(
            HostingRecord(
                domain=domain,
                live_from=packed.host_times[2 * i],
                live_until=packed.host_times[2 * i + 1],
                program_id=(
                    None if packed.host_ids[3 * i] < 0
                    else packed.host_ids[3 * i]
                ),
                affiliate_id=(
                    None if packed.host_ids[3 * i + 1] < 0
                    else packed.host_ids[3 * i + 1]
                ),
                dead=bool(packed.host_ids[3 * i + 2]),
            )
        )
    for i, domain in enumerate(_split(packed.tag_domains)):
        result.redirector_tags.append(
            (domain, packed.tag_ids[2 * i], packed.tag_ids[2 * i + 1])
        )
    result.pool = _split(packed.pool_domains)
    return result


class PackedShard(NamedTuple):
    """A worker's output for one contiguous unit range."""

    lo: int
    hi: int
    units: Tuple[PackedUnit, ...]
    #: Worker-process peak RSS after building the shard (a process
    #: lifetime high-water mark, so it bounds this shard from above).
    peak_rss_kib: Optional[int]
    build_seconds: float


# ----------------------------------------------------------------------
# Worker entry point (pre-fork copy-on-write state)
# ----------------------------------------------------------------------

#: (ctx, plan) published before the pool forks; workers inherit it
#: copy-on-write and tasks carry only a (lo, hi) unit range.
_SHARD_RUN: Optional[Tuple[BuildContext, ShardPlan]] = None


def set_shard_run(ctx: BuildContext, plan: ShardPlan) -> None:
    """Publish the build context + plan for shard workers to inherit."""
    global _SHARD_RUN
    _SHARD_RUN = (ctx, plan)  # reprolint: disable=REP009 -- pre-fork publication point, never called from a worker


def clear_shard_run() -> None:
    """Drop the published shard-run state."""
    global _SHARD_RUN
    _SHARD_RUN = None  # reprolint: disable=REP009 -- pre-fork publication point, never called from a worker


def _build_shard_task(payload: Tuple[int, int]) -> PackedShard:
    """Worker task: build and pack units ``[lo, hi)`` of the plan."""
    state = _SHARD_RUN
    if state is None:
        raise RuntimeError("shard run state not installed before fork")
    ctx, plan = state
    lo, hi = payload
    watch = Stopwatch()
    units = tuple(
        pack_unit(build_unit(ctx, plan, index)) for index in range(lo, hi)
    )
    return PackedShard(lo, hi, units, peak_rss_kib(), watch.elapsed())


# ----------------------------------------------------------------------
# Merge
# ----------------------------------------------------------------------


def merge_units(
    ctx: BuildContext,
    plan: ShardPlan,
    units: Iterable[UnitResult],
) -> World:
    """Fold unit results (in plan order) into the assembled world.

    Fold operations and why order cannot matter:

    * **registry** -- ``Registry.register`` keeps the earliest
      registration date (a commutative min-fold), and the serial build
      registers each domain through the exact same calls.
    * **hosting** -- first-write-wins over key sets that are disjoint
      across units (salted storefront names), so "first" is only ever
      exercised by the astronomically rare gibberish-pool birthday
      collision, which plan order resolves deterministically.
    * **redirector tags** -- first-write-wins over *shared* benign
      redirector domains, so here order genuinely matters; it stays
      deterministic because units always fold in plan order: the
      parallel path streams shard results back in submission-index
      order (``WorkerPool.run_stream``), which is plan order for any
      shard count.
    * **campaigns** -- collected from camp units and sorted by the
      globally unique campaign id assigned at plan time.
    * **DGA placements / side pools** -- concatenated in plan (block)
      order, which shard cuts preserve by construction.
    """
    registry = Registry()
    register_benign(ctx, registry)

    campaigns: List[Campaign] = []
    dga_placements: List[DomainPlacement] = []
    hosting: Dict[str, HostingRecord] = {}
    redirector_tags: Dict[str, Tuple[int, Optional[int]]] = {}
    hyb_webspam: List[str] = []
    junk_domains: List[str] = []

    for unit in units:
        for domain, registered_at in unit.registrations:
            registry.register(domain, registered_at)
        for record in unit.hosting:
            hosting.setdefault(record.domain, record)
        for domain, program, affiliate in unit.redirector_tags:
            redirector_tags.setdefault(
                domain, (program, None if affiliate < 0 else affiliate)
            )
        campaigns.extend(unit.campaigns)
        if unit.kind == "dga":
            dga_placements.extend(unit.placements)
        elif unit.kind == "hyb":
            hyb_webspam.extend(unit.pool)
        elif unit.kind == "junk":
            junk_domains.extend(unit.pool)

    campaigns.sort(key=lambda c: c.campaign_id)

    dga_campaign: Optional[Campaign] = None
    dga_domains: Set[str] = set()
    if dga_placements:
        dga_campaign = Campaign(
            campaign_id=plan.n_campaigns,
            campaign_class=CampaignClass.DGA_POISON,
            strategy=AddressStrategy.BRUTE_FORCE,
            placements=dga_placements,
            botnet_id=plan.dga_botnet_id,
            filter_evasion=0.0,
        )
        campaigns.append(dga_campaign)
        dga_domains = {p.domain for p in dga_placements}

    return World(
        timeline=ctx.timeline,
        programs=ctx.programs,
        affiliates=ctx.affiliates,
        botnets=ctx.botnets,
        campaigns=campaigns,
        registry=registry,
        benign=ctx.benign,
        hosting=hosting,
        dga_domains=dga_domains,
        dga_campaign=dga_campaign,
        redirector_tags=redirector_tags,
        hyb_webspam=hyb_webspam,
        junk_domains=junk_domains,
    )


# ----------------------------------------------------------------------
# Orchestration
# ----------------------------------------------------------------------


def _iter_units(
    ctx: BuildContext,
    plan: ShardPlan,
    shards: int,
    jobs: Optional[int],
) -> Iterator[UnitResult]:
    """Yield unit results in plan order, building shards in parallel
    when the platform and requested width allow it."""
    width = min(resolve_jobs(jobs), max(1, shards))
    if shards <= 1 or width < 2 or not fork_available():
        for index in range(len(plan.units)):
            yield build_unit(ctx, plan, index)
        return

    ranges = shard_ranges(plan, shards)
    set_shard_run(ctx, plan)
    pool = WorkerPool(min(width, len(ranges)) if len(ranges) >= 2 else 2)
    try:
        labels = [f"world.shard[{lo}:{hi}]" for lo, hi in ranges]
        for index, packed in pool.run_stream(
            _build_shard_task, ranges, labels
        ):
            with obs.span(
                "world.shard",
                shard=index,
                units=packed.hi - packed.lo,
                worker_peak_rss_kib=packed.peak_rss_kib,
                worker_seconds=round(packed.build_seconds, 6),
            ):
                for packed_unit in packed.units:
                    yield unpack_unit(packed_unit)
    finally:
        pool.close()
        clear_shard_run()


def build_world_sharded(
    config: Optional[EcosystemConfig] = None,
    seed: int = 2012,
    timeline: Optional[Timeline] = None,
    shards: int = 1,
    jobs: Optional[int] = None,
) -> World:
    """Build a world from *shards* parallel shard builds + one merge.

    ``shards=1`` (or any environment where forking is unavailable)
    degrades to the serial unit loop, which is exactly what
    :meth:`WorldBuilder.build` runs -- byte-identical by construction.
    """
    from repro.ecosystem.config import paper_config

    builder = WorldBuilder(config or paper_config(), seed, timeline)
    with obs.span("world.context"):
        ctx = builder.context()
    with obs.span("world.plan"):
        plan = build_plan(ctx)
    with obs.span("world.merge", units=len(plan.units), shards=shards):
        return merge_units(ctx, plan, _iter_units(ctx, plan, shards, jobs))


# ----------------------------------------------------------------------
# Content fingerprint
# ----------------------------------------------------------------------


class ContentFingerprint:
    """Order-independent digest of a world's campaign/pool content.

    Each row (campaign, placement, pool name) hashes to 16 bytes and is
    XOR-folded into the accumulator, so the digest is invariant to fold
    order -- the natural shape for content assembled from shards.  The
    digest covers exactly the conflict-free content: campaign rows,
    placement rows (bound to their campaign id), and the side pools
    with their global position.  It deliberately excludes benign-world
    registration dates, which iterate a Python ``set`` of strings and
    therefore vary with the interpreter's hash salt (while staying
    semantically equivalent: every benign domain long predates the
    window).
    """

    def __init__(self) -> None:
        self._acc = 0
        self._hyb = 0
        self._junk = 0
        self._dga_placements = 0

    def _fold(self, *fields: object) -> None:
        row = "|".join(str(f) for f in fields).encode("utf-8")
        self._acc ^= int.from_bytes(
            hashlib.sha256(row).digest()[:16], "big"
        )

    def add_placement(self, campaign_id: int, p: DomainPlacement) -> None:
        self._fold(
            "P", campaign_id, p.domain, p.start, p.end,
            p.broadcast_lag, repr(p.volume),
        )

    def add_campaign(self, c: Campaign) -> None:
        self._fold(
            "C",
            c.campaign_id,
            c.campaign_class.value,
            c.strategy.value,
            -1 if c.program_id is None else c.program_id,
            -1 if c.affiliate_id is None else c.affiliate_id,
            -1 if c.botnet_id is None else c.botnet_id,
            len(c.placements),
            repr(c.chaff_probability),
            repr(c.redirector_probability),
            repr(c.filter_evasion),
        )
        for p in c.placements:
            self.add_placement(c.campaign_id, p)

    def add_pool(self, kind: str, index: int, domain: str) -> None:
        self._fold(kind, index, domain)

    def add_unit(self, plan: ShardPlan, unit: UnitResult) -> None:
        """Fold one unit result (units may arrive in any order)."""
        for c in unit.campaigns:
            self.add_campaign(c)
        for p in unit.placements:
            self.add_placement(plan.n_campaigns, p)
            self._dga_placements += 1
        if unit.kind == "hyb":
            for domain in unit.pool:
                self.add_pool("hyb", self._hyb, domain)
                self._hyb += 1
        elif unit.kind == "junk":
            for domain in unit.pool:
                self.add_pool("junk", self._junk, domain)
                self._junk += 1

    def finish_units(self, plan: ShardPlan) -> None:
        """Fold the synthetic DGA campaign row the merge would create."""
        if self._dga_placements:
            self._fold(
                "C",
                plan.n_campaigns,
                CampaignClass.DGA_POISON.value,
                AddressStrategy.BRUTE_FORCE.value,
                -1,
                -1,
                -1 if plan.dga_botnet_id is None else plan.dga_botnet_id,
                self._dga_placements,
                repr(0.0),
                repr(0.0),
                repr(0.0),
            )

    @property
    def dga_placement_count(self) -> int:
        """Loose DGA placements folded so far."""
        return self._dga_placements

    def hexdigest(self) -> str:
        return f"{self._acc:032x}"


def world_fingerprint(world: World) -> str:
    """Content fingerprint of an assembled :class:`World`."""
    fp = ContentFingerprint()
    for campaign in world.campaigns:
        fp.add_campaign(campaign)
    for index, domain in enumerate(world.hyb_webspam):
        fp.add_pool("hyb", index, domain)
    for index, domain in enumerate(world.junk_domains):
        fp.add_pool("junk", index, domain)
    return fp.hexdigest()


# ----------------------------------------------------------------------
# Bounded-memory scale summary
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class WorldScaleSummary:
    """What a scale run reports without materializing a :class:`World`."""

    campaigns: int
    placements: int
    advertised_domains: int
    registered_domains: int
    pool_domains: int
    total_volume: float
    #: Events counted off the k-way merged per-shard placement streams.
    merged_events: int
    first_event: Optional[int]
    last_event: Optional[int]
    fingerprint: str
    shards: int


def summarize_world_sharded(
    config: Optional[EcosystemConfig] = None,
    seed: int = 2012,
    timeline: Optional[Timeline] = None,
    shards: int = 1,
    jobs: Optional[int] = None,
) -> WorldScaleSummary:
    """Build at scale and summarize without assembling a world.

    Units are folded one at a time: counters, the XOR content
    fingerprint, and per-shard ``(start, domain)`` placement columns.
    The columns are then k-way merged through
    :class:`~repro.stream.merge.RecordStream` -- the same machinery the
    feed pipeline streams through -- so the only whole-run state is
    flat time arrays and name lists, never campaign object graphs.

    Every reported quantity is invariant to shard count: counts and the
    fingerprint fold per unit, domain distinctness uses unit-local
    counting (exact thanks to salted names, with benign redirector
    placements tracked globally), and the merge contributes only its
    event count and time extremes (the interleaving of same-time events
    across shard sources is the one thing that *does* depend on the
    cut, so nothing order-sensitive is folded from it).
    """
    from repro.ecosystem.config import paper_config
    # Imported here, not at module scope: repro.stream reaches feeds,
    # which import the ecosystem package this module is part of.
    from repro.stream.merge import ColumnSource, RecordStream

    builder = WorldBuilder(config or paper_config(), seed, timeline)
    with obs.span("world.context"):
        ctx = builder.context()
    with obs.span("world.plan"):
        plan = build_plan(ctx)
    ranges = shard_ranges(plan, max(1, shards))
    unit_shard = array("q", [0] * len(plan.units))
    for shard_index, (lo, hi) in enumerate(ranges):
        for u in range(lo, hi):
            unit_shard[u] = shard_index

    fp = ContentFingerprint()
    campaigns = 0
    placements = 0
    pool_domains = 0
    registered = len(ctx.benign.all_benign)
    distinct = 0
    total_volume = 0.0
    benign_placed: Set[str] = set()
    shard_times: List[array] = [array("q") for _ in ranges]
    shard_names: List[List[str]] = [[] for _ in ranges]

    unit_index = 0
    with obs.span("world.summary.fold", units=len(plan.units), shards=shards):
        for unit in _iter_units(ctx, plan, shards, jobs):
            shard_index = unit_shard[unit_index]
            times = shard_times[shard_index]
            names = shard_names[shard_index]
            local: Set[str] = set()
            for c in unit.campaigns:
                campaigns += 1
                for p in c.placements:
                    placements += 1
                    total_volume += p.volume
                    times.append(p.start)
                    names.append(p.domain)
                    if p.domain in ctx.benign_union:
                        benign_placed.add(p.domain)
                    else:
                        local.add(p.domain)
            for p in unit.placements:
                placements += 1
                total_volume += p.volume
                times.append(p.start)
                names.append(p.domain)
                local.add(p.domain)
            distinct += len(local)
            registered += len(unit.registrations)
            pool_domains += len(unit.pool)
            fp.add_unit(plan, unit)
            unit_index += 1
    fp.finish_units(plan)
    if fp.dga_placement_count:
        campaigns += 1

    sources: Dict[str, ColumnSource] = {}
    for shard_index, (times, names) in enumerate(
        zip(shard_times, shard_names)
    ):
        if not names:
            continue
        order = sorted(range(len(names)), key=lambda i: (times[i], names[i]))
        sources[f"shard{shard_index}"] = ColumnSource(
            array("q", (times[i] for i in order)),
            [names[i] for i in order],
        )

    merged_events = 0
    first_event: Optional[int] = None
    last_event: Optional[int] = None
    if sources:
        with obs.span("world.summary.merge", sources=len(sources)):
            stream = RecordStream(sources, presorted=True)
            while True:
                batch = stream.next_batch()
                if not batch:
                    break
                if first_event is None:
                    first_event = batch[0].time
                last_event = batch[-1].time
                merged_events += len(batch)

    return WorldScaleSummary(
        campaigns=campaigns,
        placements=placements,
        advertised_domains=distinct + len(benign_placed),
        registered_domains=registered,
        pool_domains=pool_domains,
        total_volume=total_volume,
        merged_events=merged_events,
        first_event=first_event,
        last_event=last_event,
        fingerprint=fp.hexdigest(),
        shards=shards,
    )
