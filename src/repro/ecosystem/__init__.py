"""Ground-truth spam ecosystem simulator.

The paper's raw inputs are ten proprietary feeds observing the same
underlying reality: spam campaigns run by affiliates of a few dozen
affiliate programs, delivered by botnets or direct senders, advertising
constantly-rotating registered domains, polluted by chaff, redirectors
and (for a few weeks) Rustock's random pseudo-domains.

This package generates that reality synthetically: a :class:`World`
containing affiliate programs, affiliates (with revenue), botnets,
campaigns with domain schedules and targeting strategies, a domain
registry, and the benign web (Alexa/ODP, redirector services, chaff).
Feed collectors (:mod:`repro.feeds`) then observe the world through
their respective collection biases, and the oracles
(:mod:`repro.oracles`) answer the measurement-side questions the paper's
analysis needs (DNS registration, web liveness/tagging, incoming-mail
volume).
"""

from repro.ecosystem.config import (
    CampaignClassConfig,
    EcosystemConfig,
    paper_config,
    scaled_config,
    small_config,
)
from repro.ecosystem.entities import (
    Affiliate,
    AffiliateProgram,
    AddressStrategy,
    Botnet,
    Campaign,
    CampaignClass,
    DomainPlacement,
    GoodsCategory,
)
from repro.ecosystem.registry import Registry, RegistryEntry
from repro.ecosystem.benign import BenignWorld
from repro.ecosystem.builder import BuildContext, WorldBuilder, build_world
from repro.ecosystem.shard import (
    ShardPlan,
    WorldScaleSummary,
    build_plan,
    build_world_sharded,
    shard_ranges,
    summarize_world_sharded,
    world_fingerprint,
)
from repro.ecosystem.world import World

__all__ = [
    "AddressStrategy",
    "Affiliate",
    "AffiliateProgram",
    "BenignWorld",
    "Botnet",
    "BuildContext",
    "Campaign",
    "CampaignClass",
    "CampaignClassConfig",
    "DomainPlacement",
    "EcosystemConfig",
    "GoodsCategory",
    "Registry",
    "RegistryEntry",
    "ShardPlan",
    "World",
    "WorldBuilder",
    "WorldScaleSummary",
    "build_plan",
    "build_world",
    "build_world_sharded",
    "paper_config",
    "scaled_config",
    "shard_ranges",
    "small_config",
    "summarize_world_sharded",
    "world_fingerprint",
]
