"""The benign web: popularity lists, redirectors, chaff, newsletters.

Benign domains enter spam feeds three ways (Section 4.1.3): spammers
include legitimate links (chaff / phished brands), legitimate mail is
inadvertently captured (typos, sign-up dummy addresses, newsletters
mis-reported by users), and spammers abuse legitimate redirection
services to hide behind established domains.  The last group is the
dangerous one: Alexa/ODP-listed redirectors can be *tagged* (they really
do lead to a storefront) and carry enormous mail volume (Figure 3).
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Set

from repro.domains import BenignNameGenerator
from repro.stats.distributions import zipf_weights


class BenignWorld:
    """Benign-domain populations and their popularity structure."""

    def __init__(
        self,
        alexa_ranked: List[str],
        odp_domains: Set[str],
        redirectors: List[str],
        chaff_pool: List[str],
        newsletter_domains: List[str],
    ):
        self.alexa_ranked = list(alexa_ranked)
        self.alexa_set = set(alexa_ranked)
        if len(self.alexa_set) != len(self.alexa_ranked):
            raise ValueError("alexa list contains duplicates")
        self.odp_domains = set(odp_domains)
        self.redirectors = list(redirectors)
        self.chaff_pool = list(chaff_pool)
        self.newsletter_domains = list(newsletter_domains)
        for r in self.redirectors:
            if r not in self.alexa_set:
                raise ValueError(f"redirector {r!r} must be Alexa-listed")
        #: Zipf weights over the chaff pool: a handful of chaff domains
        #: (DTD hosts, big image hosts) recur in a huge share of spam.
        self._chaff_weights = zipf_weights(len(self.chaff_pool), 1.7) if self.chaff_pool else []

    @property
    def all_benign(self) -> Set[str]:
        """Union of every benign population."""
        return (
            self.alexa_set
            | self.odp_domains
            | set(self.chaff_pool)
            | set(self.newsletter_domains)
        )

    def is_benign(self, domain: str) -> bool:
        """True if *domain* belongs to any benign population."""
        return (
            domain in self.alexa_set
            or domain in self.odp_domains
            or domain in self._chaff_set()
            or domain in self._newsletter_set()
        )

    def _chaff_set(self) -> Set[str]:
        if not hasattr(self, "_chaff_cached"):
            self._chaff_cached = set(self.chaff_pool)
        return self._chaff_cached

    def _newsletter_set(self) -> Set[str]:
        if not hasattr(self, "_newsletter_cached"):
            self._newsletter_cached = set(self.newsletter_domains)
        return self._newsletter_cached

    def sample_chaff(self, rng: random.Random) -> str:
        """Draw one chaff domain (Zipf-weighted toward the head)."""
        if not self.chaff_pool:
            raise ValueError("empty chaff pool")
        x = rng.random()
        acc = 0.0
        for domain, w in zip(self.chaff_pool, self._chaff_weights):
            acc += w
            if x <= acc:
                return domain
        return self.chaff_pool[-1]

    def sample_redirector(self, rng: random.Random) -> str:
        """Draw one redirector service domain (uniform)."""
        if not self.redirectors:
            raise ValueError("no redirector services in this world")
        return rng.choice(self.redirectors)

    def sample_newsletter(self, rng: random.Random) -> str:
        """Draw one newsletter/legit-commercial domain (uniform)."""
        if not self.newsletter_domains:
            raise ValueError("no newsletter domains in this world")
        return rng.choice(self.newsletter_domains)


def build_benign_world(
    rng: random.Random,
    alexa_size: int,
    odp_size: int,
    odp_alexa_overlap: float,
    n_redirectors: int,
    chaff_pool_size: int,
    n_newsletter_domains: int,
) -> BenignWorld:
    """Generate the benign web.

    Redirector services are drawn from the top of the Alexa ranking
    (URL shorteners and free-hosting sites are very popular); chaff is a
    mix of Alexa and ODP domains; newsletters are ordinary benign names
    that may or may not be listed.
    """
    if not (0.0 <= odp_alexa_overlap <= 1.0):
        raise ValueError("odp_alexa_overlap out of range")
    if n_redirectors > alexa_size:
        raise ValueError("more redirectors than Alexa slots")

    gen = BenignNameGenerator(rng)
    alexa_ranked = gen.generate_batch(alexa_size)

    n_overlap = int(round(odp_size * odp_alexa_overlap))
    n_overlap = min(n_overlap, alexa_size)
    odp: Set[str] = set(rng.sample(alexa_ranked, n_overlap))
    odp.update(gen.generate_batch(odp_size - n_overlap))

    # Redirector/free-hosting services are popular but not the very
    # head of the ranking (search engines and social networks are).
    band_start = min(2_500, max(0, alexa_size - n_redirectors))
    band_end = min(alexa_size, max(band_start + n_redirectors, 8_000))
    band = alexa_ranked[band_start:band_end]
    redirectors = rng.sample(band, n_redirectors)

    chaff_candidates = [d for d in alexa_ranked if d not in redirectors]
    chaff_from_alexa = rng.sample(
        chaff_candidates, min(chaff_pool_size // 2, len(chaff_candidates))
    )
    odp_only = sorted(odp - set(alexa_ranked))
    chaff_from_odp = rng.sample(
        odp_only, min(chaff_pool_size - len(chaff_from_alexa), len(odp_only))
    )
    chaff_pool = chaff_from_alexa + chaff_from_odp

    newsletters = gen.generate_batch(n_newsletter_domains)

    return BenignWorld(
        alexa_ranked=alexa_ranked,
        odp_domains=odp,
        redirectors=redirectors,
        chaff_pool=chaff_pool,
        newsletter_domains=newsletters,
    )
