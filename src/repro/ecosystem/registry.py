"""The simulated domain registry (ground truth behind the DNS oracle).

The paper checks feed domains against zone files for seven TLDs
(com, net, org, biz, us, aero, info) over a window bracketing the
measurement period by 16 months on each side (Section 4.1.1).  This
module holds the ground-truth registration intervals that the
:class:`repro.oracles.dns_zone.ZoneOracle` snapshots.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Optional

from repro.simtime import SimTime, days

#: The TLDs whose zone files the measurement apparatus can obtain.
COVERED_TLDS = frozenset({"com", "net", "org", "biz", "us", "aero", "info"})

#: Zone files bracket the window by 16 months before and after.
ZONE_BRACKET_MINUTES = days(16 * 30)


@dataclasses.dataclass(frozen=True)
class RegistryEntry:
    """Registration lifetime of one registered domain."""

    domain: str
    registered_at: SimTime
    #: None means still registered at the end of the zone bracket.
    dropped_at: Optional[SimTime] = None

    def __post_init__(self) -> None:
        if self.dropped_at is not None and self.dropped_at <= self.registered_at:
            raise ValueError(f"drop precedes registration for {self.domain!r}")

    def active_during(self, start: SimTime, end: SimTime) -> bool:
        """True if the registration overlaps the interval [start, end)."""
        if self.registered_at >= end:
            return False
        return self.dropped_at is None or self.dropped_at > start


def tld_of(domain: str) -> str:
    """Return the final label of *domain* (its TLD)."""
    return domain.rsplit(".", 1)[-1]


class Registry:
    """All ground-truth domain registrations in the simulated world."""

    def __init__(self) -> None:
        self._entries: Dict[str, RegistryEntry] = {}

    def register(
        self,
        domain: str,
        registered_at: SimTime,
        dropped_at: Optional[SimTime] = None,
    ) -> RegistryEntry:
        """Record a registration; re-registering keeps the earliest date.

        Spam campaigns occasionally reuse domains; the registry keeps the
        widest lifetime seen.
        """
        existing = self._entries.get(domain)
        if existing is not None:
            registered_at = min(registered_at, existing.registered_at)
            if existing.dropped_at is None or dropped_at is None:
                dropped_at = None
            else:
                dropped_at = max(dropped_at, existing.dropped_at)
        entry = RegistryEntry(domain, registered_at, dropped_at)
        self._entries[domain] = entry
        return entry

    def entry(self, domain: str) -> Optional[RegistryEntry]:
        """Return the entry for *domain*, or None if never registered."""
        return self._entries.get(domain)

    def is_registered(self, domain: str) -> bool:
        """True if *domain* was ever registered."""
        return domain in self._entries

    def domains(self) -> Iterable[str]:
        """Iterate over all registered domain names."""
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, domain: str) -> bool:
        return domain in self._entries
