"""World construction: from an :class:`EcosystemConfig` to a :class:`World`.

The builder materializes the ground truth that all ten feeds observe:
affiliate programs and their affiliates (with revenue), botnets, the
benign web, the domain registry, web hosting truth, and -- most
importantly -- the campaign population whose structure drives every
qualitative result in the paper:

* a few dozen *loud* botnet broadcast campaigns dominate volume,
* hundreds of direct broadcast campaigns fill the middle,
* thousands of *quiet*, deliverability-engineered campaigns carry most
  of the distinct domains (and the high-revenue affiliates), and
* one Rustock-style DGA poisoning episode floods two feeds with
  unregistered gibberish.

Construction is organized for sharding (see :mod:`repro.ecosystem.shard`):

* A cheap shared :class:`BuildContext` holds the entity populations
  (programs, affiliates, botnets, the benign web) plus precomputed
  weighted samplers.
* Campaign **identities** -- which (program, affiliate, botnet) runs
  each campaign -- are drawn in one serial pre-pass
  (:func:`draw_identities`) from per-class ``campaigns.<class>.identity``
  streams, giving the shard planner its (program, botnet) partition keys
  without paying for campaign bodies.
* Campaign **bodies** each draw from their own
  ``campaign.<class>.<index>`` stream, and the DGA / web-spam / junk
  pools are generated in fixed-size blocks with per-block streams
  (``dga.<j>``, ``hyb.<j>``, ``junk.<j>``), so any contiguous grouping
  of this work produces byte-identical output -- shard count is pure
  execution width.
* Every storefront name generator is salted with a globally unique
  :func:`~repro.domains.names.salt_token`, which makes name issuance
  collision-free *by construction* instead of via a shared issued-name
  set -- the property that lets shards run without coordination.
"""

from __future__ import annotations

import bisect
import dataclasses
import math
import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.domains import DgaNameGenerator, SpamNameGenerator
from repro.domains.names import salt_token
from repro.ecosystem.benign import BenignWorld, build_benign_world
from repro.ecosystem.config import CampaignClassConfig, EcosystemConfig
from repro.ecosystem.entities import (
    AddressStrategy,
    Affiliate,
    AffiliateProgram,
    Botnet,
    Campaign,
    CampaignClass,
    DomainPlacement,
    GoodsCategory,
)
from repro.ecosystem.registry import Registry
from repro.ecosystem.world import HostingRecord, World
from repro.simtime import SimTime, Timeline, days
from repro.stats.distributions import bounded_pareto, weighted_choice, zipf_weights
from repro.stats.rng import SeedSequence

_BOTNET_NAMES = (
    "rustock", "cutwail", "grum", "mega-d", "lethic", "maazben",
    "bobax", "waledac", "festi", "bagle", "kelihos", "darkmailer",
)

#: Canonical campaign generation order; campaign ids are assigned
#: sequentially in this class order, then by index within the class.
CLASS_BUILD_ORDER = (
    CampaignClass.BOTNET_BROADCAST,
    CampaignClass.DIRECT_BROADCAST,
    CampaignClass.QUIET_TARGETED,
    CampaignClass.OTHER_GOODS,
)

#: Integers per campaign-member record in a plan unit's flat array:
#: (class_rank, class_index, campaign_id, tagged, program, affiliate,
#: botnet), with -1 for absent ids.
MEMBER_STRIDE = 7


def total_campaigns(config: EcosystemConfig) -> int:
    """Number of non-DGA campaigns *config* generates (pure function)."""
    return sum(
        config.campaign_classes[cls].count
        for cls in CLASS_BUILD_ORDER
        if cls in config.campaign_classes
    )


class _Picker:
    """Precomputed cumulative table replicating ``weighted_choice``.

    ``weighted_choice`` rebuilds its prefix-sum list per call, which is
    fine for one campaign but dominates the identity pre-pass at 100x
    scale.  This caches the table once; the draw semantics (one
    ``rng.random()``, ``bisect_right``, clamp) are byte-identical.
    """

    __slots__ = ("_items", "_cumulative", "_total")

    def __init__(self, items: Sequence, weights: Sequence[float]) -> None:
        if len(items) != len(weights) or not items:
            raise ValueError("items and weights must be non-empty and match")
        cumulative: List[float] = []
        total = 0.0
        for weight in weights:
            if weight < 0:
                raise ValueError("weights must be non-negative")
            total += weight
            cumulative.append(total)
        if total <= 0:
            raise ValueError("total weight must be positive")
        self._items = list(items)
        self._cumulative = cumulative
        self._total = total

    def pick(self, rng: random.Random):
        x = rng.random() * self._total
        index = bisect.bisect_right(self._cumulative, x)
        return self._items[min(index, len(self._items) - 1)]


@dataclasses.dataclass
class BuildContext:
    """Shared read-only state every build unit needs.

    Built once in the parent process (cheap relative to campaign
    bodies) and inherited copy-on-write by shard workers.  Nothing in
    here is mutated during unit builds except worker-local RNG
    bookkeeping inside :class:`SeedSequence`.
    """

    config: EcosystemConfig
    seed: int
    timeline: Timeline
    programs: Dict[int, AffiliateProgram]
    affiliates: Dict[int, Affiliate]
    members_by_program: Dict[int, List[Affiliate]]
    botnets: Dict[int, Botnet]
    botnet_identities: Dict[int, List[Tuple[int, int]]]
    benign: BenignWorld
    benign_union: Set[str]
    program_picker: _Picker
    affiliate_pickers: Dict[Tuple[int, bool], _Picker]
    botnet_picker: Optional[_Picker]
    seeds: SeedSequence


@dataclasses.dataclass
class UnitResult:
    """Everything one build unit contributes to the merged world.

    The registry / hosting / redirector-tag contributions are carried
    as flat lists so the merge step can fold them with commutative (or
    canonically ordered) operations; see ``shard.merge_units``.
    """

    kind: str
    campaigns: List[Campaign] = dataclasses.field(default_factory=list)
    #: Loose placements (DGA blocks only; assembled into the single DGA
    #: campaign at merge time).
    placements: List[DomainPlacement] = dataclasses.field(default_factory=list)
    registrations: List[Tuple[str, SimTime]] = dataclasses.field(
        default_factory=list
    )
    hosting: List[HostingRecord] = dataclasses.field(default_factory=list)
    #: (domain, program_id, affiliate_id) with -1 for a missing affiliate.
    redirector_tags: List[Tuple[str, int, int]] = dataclasses.field(
        default_factory=list
    )
    #: Side-pool names (hyb web spam / junk reports).
    pool: List[str] = dataclasses.field(default_factory=list)


class WorldBuilder:
    """Deterministic world generator.

    Every stochastic decision draws from a labelled RNG stream derived
    from the root seed, so adding draws to one stage never perturbs the
    others -- and so independently built shards of the campaign
    population compose into the same world as a monolithic pass.
    """

    def __init__(
        self,
        config: EcosystemConfig,
        seed: int = 2012,
        timeline: Optional[Timeline] = None,
    ):
        self.config = config
        self.seed = seed
        self.timeline = timeline or Timeline()
        self._seeds = SeedSequence(seed)

    # ------------------------------------------------------------------
    # Stage 1: populations
    # ------------------------------------------------------------------

    def build_programs(self) -> Dict[int, AffiliateProgram]:
        """Create the tagged affiliate programs (45 in the paper)."""
        cfg = self.config.programs
        rng = self._seeds.rng("programs")
        categories: List[GoodsCategory] = (
            [GoodsCategory.PHARMA] * cfg.n_pharma
            + [GoodsCategory.REPLICA] * cfg.n_replica
            + [GoodsCategory.SOFTWARE] * cfg.n_software
        )
        weights = zipf_weights(len(categories), cfg.popularity_exponent)
        # Category order is deterministic; shuffle so weight rank is not
        # perfectly aligned with category.
        order = list(range(len(categories)))
        rng.shuffle(order)
        programs: Dict[int, AffiliateProgram] = {}
        for pid, slot in enumerate(order):
            category = categories[slot]
            weight = weights[pid]
            # Program 0 is the RX-Promotion analog: the dominant pharma
            # program, and the only one embedding affiliate identifiers.
            if pid == 0:
                category = GoodsCategory.PHARMA
                weight *= 3.0
            programs[pid] = AffiliateProgram(
                program_id=pid,
                name=f"{category.value}-program-{pid:02d}",
                category=category,
                weight=weight,
                embeds_affiliate_id=(pid == 0),
            )
        return programs

    def build_affiliates(
        self, programs: Dict[int, AffiliateProgram]
    ) -> Dict[int, Affiliate]:
        """Create affiliates with heavy-tailed annual revenue."""
        cfg = self.config.programs
        rng = self._seeds.rng("affiliates")
        affiliates: Dict[int, Affiliate] = {}
        next_id = 0
        for pid in sorted(programs):
            if programs[pid].embeds_affiliate_id:
                n = cfg.rx_affiliates
            else:
                n = rng.randint(cfg.affiliates_low, cfg.affiliates_high)
            for _ in range(n):
                revenue = bounded_pareto(
                    rng, cfg.revenue_alpha, cfg.revenue_low, cfg.revenue_high
                )
                affiliates[next_id] = Affiliate(
                    affiliate_id=next_id,
                    program_id=pid,
                    annual_revenue=revenue,
                )
                next_id += 1
        return affiliates

    def build_botnets(self) -> Dict[int, Botnet]:
        """Create the botnet population; the first ones are monitored."""
        cfg = self.config.botnets
        rng = self._seeds.rng("botnets")
        if cfg.n_monitored > cfg.n_botnets:
            raise ValueError("cannot monitor more botnets than exist")
        botnets: Dict[int, Botnet] = {}
        for bid in range(cfg.n_botnets):
            name = _BOTNET_NAMES[bid % len(_BOTNET_NAMES)]
            botnets[bid] = Botnet(
                botnet_id=bid,
                name=name,
                capacity=rng.uniform(cfg.capacity_low, cfg.capacity_high),
                monitored=(bid < cfg.n_monitored),
            )
        return botnets

    def _affiliates_by_program(
        self, affiliates: Dict[int, Affiliate]
    ) -> Dict[int, List[Affiliate]]:
        index: Dict[int, List[Affiliate]] = {}
        for a in affiliates.values():
            index.setdefault(a.program_id, []).append(a)
        for members in index.values():
            members.sort(key=lambda a: a.affiliate_id)
        return index

    # ------------------------------------------------------------------
    # Stage 2: the shared build context
    # ------------------------------------------------------------------

    def context(self) -> BuildContext:
        """Build the shared context all campaign/pool units draw on."""
        cfg = self.config
        programs = self.build_programs()
        affiliates = self.build_affiliates(programs)
        botnets = self.build_botnets()
        benign = build_benign_world(
            self._seeds.rng("benign-world"),
            alexa_size=cfg.benign.alexa_size,
            odp_size=cfg.benign.odp_size,
            odp_alexa_overlap=cfg.benign.odp_alexa_overlap,
            n_redirectors=cfg.benign.n_redirectors,
            chaff_pool_size=cfg.benign.chaff_pool_size,
            n_newsletter_domains=cfg.benign.n_newsletter_domains,
        )
        members_by_program = self._affiliates_by_program(affiliates)

        pids = sorted(programs)
        program_picker = _Picker(pids, [programs[p].weight for p in pids])
        affiliate_pickers: Dict[Tuple[int, bool], _Picker] = {}
        for pid, members in members_by_program.items():
            for prefer_high in (False, True):
                # Quiet, deliverability-focused campaigns come from the
                # skilled, high-revenue affiliates; botnet broadcast
                # runs from the long tail.  This correlation is what
                # makes the revenue-weighted coverage (Figure 6) favor
                # the Hu/dbl feeds.
                ranked = sorted(
                    members,
                    key=lambda a: a.annual_revenue,
                    reverse=prefer_high,
                )
                exponent = 0.9 if prefer_high else 0.7
                affiliate_pickers[(pid, prefer_high)] = _Picker(
                    ranked, zipf_weights(len(ranked), exponent)
                )
        botnet_picker = None
        if botnets:
            bids = sorted(botnets)
            botnet_picker = _Picker(
                bids, [botnets[b].capacity for b in bids]
            )

        # Each botnet operator spams for a small fixed set of
        # (program, affiliate) identities -- the reason the Bot feed
        # covers so few programs and RX affiliates (Figures 4 and 5).
        botnet_identities: Dict[int, List[Tuple[int, int]]] = {}
        rng_bn = self._seeds.rng("botnet-identities")
        bcfg = cfg.botnets
        for bid in sorted(botnets):
            n_programs = rng_bn.randint(
                bcfg.programs_per_botnet_low, bcfg.programs_per_botnet_high
            )
            identities: List[Tuple[int, int]] = []
            for _ in range(n_programs):
                pid = program_picker.pick(rng_bn)
                member = affiliate_pickers[(pid, False)].pick(rng_bn)
                identities.append((pid, member.affiliate_id))
            botnet_identities[bid] = identities

        return BuildContext(
            config=cfg,
            seed=self.seed,
            timeline=self.timeline,
            programs=programs,
            affiliates=affiliates,
            members_by_program=members_by_program,
            botnets=botnets,
            botnet_identities=botnet_identities,
            benign=benign,
            benign_union=benign.alexa_set | benign.odp_domains,
            program_picker=program_picker,
            affiliate_pickers=affiliate_pickers,
            botnet_picker=botnet_picker,
            seeds=self._seeds,
        )

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def build(self) -> World:
        """Run all stages serially and return the assembled world.

        This *is* the sharded build at shard count 1: the same plan,
        the same per-unit streams, the same merge fold -- which is what
        makes ``shards=1`` byte-identical to any other shard count.
        """
        from repro.ecosystem.shard import build_plan, build_unit, merge_units

        ctx = self.context()
        plan = build_plan(ctx)
        units = (
            build_unit(ctx, plan, index)
            for index in range(len(plan.units))
        )
        return merge_units(ctx, plan, units)


# ----------------------------------------------------------------------
# Identity pre-pass
# ----------------------------------------------------------------------

#: RNG stream label for each class's identity pre-pass.  The ``26``
#: generation suffix versions the stream: restructuring the builder
#: around shardable units re-partitioned draw order, and this label
#: re-rolls the identity assignment so the seed-2012 world keeps the
#: qualitative shapes the paper reports (Hu covering every program,
#: dbl among the tagged-volume leaders, mx2 nearest the mail baseline).
_IDENTITY_STREAM_FMT = "campaigns.{0}.identity26"


def draw_identities(ctx: BuildContext) -> List[Tuple[int, ...]]:
    """Assign every campaign its (program, affiliate, botnet) identity.

    One serial pass over per-class ``campaigns.<class>.identity``
    streams, always run in the parent at plan time; the result gives
    the shard planner its (program, botnet) partition keys.  Returns
    :data:`MEMBER_STRIDE`-tuples in campaign-id order.
    """
    members: List[Tuple[int, ...]] = []
    campaign_id = 0
    for cls_rank, cls in enumerate(CLASS_BUILD_ORDER):
        class_cfg = ctx.config.campaign_classes.get(cls)
        if class_cfg is None:
            continue
        rng = ctx.seeds.rng(_IDENTITY_STREAM_FMT.format(cls.value))
        for index in range(class_cfg.count):
            tagged = rng.random() < class_cfg.tagged_fraction
            program_id = affiliate_id = botnet_id = -1
            if cls is CampaignClass.BOTNET_BROADCAST:
                if ctx.botnet_picker is None:
                    raise ValueError(
                        "botnet broadcast campaigns need botnets"
                    )
                botnet_id = ctx.botnet_picker.pick(rng)
                if tagged:
                    program_id, affiliate_id = rng.choice(
                        ctx.botnet_identities[botnet_id]
                    )
            elif tagged:
                program_id = ctx.program_picker.pick(rng)
                prefer_high = cls is CampaignClass.QUIET_TARGETED
                member = ctx.affiliate_pickers[
                    (program_id, prefer_high)
                ].pick(rng)
                affiliate_id = member.affiliate_id
            members.append(
                (
                    cls_rank,
                    index,
                    campaign_id,
                    int(tagged),
                    program_id,
                    affiliate_id,
                    botnet_id,
                )
            )
            campaign_id += 1
    return members


# ----------------------------------------------------------------------
# Campaign bodies
# ----------------------------------------------------------------------


def _sample_interval(
    rng: random.Random,
    timeline: Timeline,
    duration_low_days: float,
    duration_high_days: float,
) -> Tuple[SimTime, SimTime]:
    """Sample a campaign interval inside the measurement window."""
    duration = days(rng.uniform(duration_low_days, duration_high_days))
    duration = max(duration, 30)  # at least half an hour
    latest_start = max(timeline.start, timeline.end - duration)
    start = rng.randrange(timeline.start, latest_start + 1)
    end = min(start + duration, timeline.end)
    return start, end


def _build_placements(
    rng: random.Random,
    namer: SpamNameGenerator,
    start: SimTime,
    end: SimTime,
    n_domains: int,
    total_volume: float,
    broadcast_lag_low_days: float = 0.0,
    broadcast_lag_high_days: float = 0.0,
) -> List[DomainPlacement]:
    """Rotate *n_domains* fresh names across [start, end).

    Segments overlap slightly (old domain winds down while the next
    spins up), volumes are proportional to segment length.
    """
    span = end - start
    n_domains = max(1, min(n_domains, max(1, span // 30)))
    edges = sorted(rng.uniform(0, 1) for _ in range(n_domains - 1))
    bounds = [0.0] + edges + [1.0]
    placements: List[DomainPlacement] = []
    for i in range(n_domains):
        seg_start = start + int(bounds[i] * span)
        seg_end = start + int(bounds[i + 1] * span)
        # Slight overlap with the following segment.
        overlap = int((seg_end - seg_start) * 0.15)
        seg_end = min(end, seg_end + overlap)
        if seg_end - seg_start < 30:
            seg_end = min(end, seg_start + 30)
        if seg_end <= seg_start:
            continue
        share = (seg_end - seg_start) / span
        volume = max(1.0, total_volume * share)
        lag = days(
            rng.uniform(broadcast_lag_low_days, broadcast_lag_high_days)
        )
        # The blast must still cover most of the placement, or the
        # domain would never monetize; cap the warm-up phase.
        lag = min(lag, int(0.7 * (seg_end - seg_start)))
        placements.append(
            DomainPlacement(
                domain=namer.generate(),
                start=seg_start,
                end=seg_end,
                volume=volume,
                broadcast_lag=lag,
            )
        )
    if not placements:
        placements.append(
            DomainPlacement(
                domain=namer.generate(),
                start=start,
                end=max(end, start + 30),
                volume=max(1.0, total_volume),
            )
        )
    return placements


def _apply_redirector(
    rng: random.Random,
    benign: BenignWorld,
    campaign: Campaign,
    redirector_tags: List[Tuple[str, int, int]],
) -> None:
    """Divert part of a campaign's volume through a redirector domain.

    The diverted messages advertise the *redirector's* registered
    domain (that is the whole point: hiding behind an established
    name), so feeds and the mail oracle see the benign domain.  If the
    campaign is tagged, a crawl of the redirector follows the redirect
    to the storefront -- the redirector domain becomes *tagged* despite
    being Alexa-listed (Section 4.1.4, Figure 3).
    """
    r = campaign.redirector_probability
    if r <= 0 or not benign.redirectors:
        return
    redirector = benign.sample_redirector(rng)
    extra: List[DomainPlacement] = []
    reduced: List[DomainPlacement] = []
    for placement in campaign.placements:
        diverted = placement.volume * r
        kept = placement.volume - diverted
        if diverted >= 1.0 and kept >= 1.0:
            extra.append(
                dataclasses.replace(
                    placement, domain=redirector, volume=diverted
                )
            )
            reduced.append(
                dataclasses.replace(placement, volume=kept)
            )
        else:
            reduced.append(placement)
    if extra:
        campaign.placements = reduced + extra
        if campaign.program_id is not None:
            affiliate = (
                -1 if campaign.affiliate_id is None else campaign.affiliate_id
            )
            redirector_tags.append(
                (redirector, campaign.program_id, affiliate)
            )


def _register_and_host(
    rng: random.Random,
    config: EcosystemConfig,
    campaign: Campaign,
    benign_union: Set[str],
    registrations: List[Tuple[str, SimTime]],
    hosting: Dict[str, HostingRecord],
    dead_site_probability: float,
) -> None:
    """Register the campaign's storefront domains and provision hosting."""
    for domain in campaign.domains:
        if domain in benign_union:
            continue  # redirector placements: already-existing domains
        first, last = campaign.domain_interval(domain)
        lead = days(
            rng.uniform(
                config.registration_lead_low_days,
                config.registration_lead_high_days,
            )
        )
        registered_at = first - lead
        registrations.append((domain, registered_at))
        if domain in hosting:
            continue
        dead = rng.random() < dead_site_probability
        linger = days(
            rng.uniform(
                config.hosting_linger_low_days,
                config.hosting_linger_high_days,
            )
        )
        hosting[domain] = HostingRecord(
            domain=domain,
            live_from=registered_at,
            live_until=last + linger,
            program_id=campaign.program_id,
            affiliate_id=campaign.affiliate_id,
            dead=dead,
        )


def _build_one_campaign(
    ctx: BuildContext,
    rng: random.Random,
    cls: CampaignClass,
    class_cfg: CampaignClassConfig,
    campaign_id: int,
    program_id: int,
    affiliate_id: int,
    botnet_id: int,
) -> Campaign:
    """One campaign body from its own stream, identity already fixed."""
    volume = bounded_pareto(
        rng, class_cfg.volume_alpha, class_cfg.volume_low, class_cfg.volume_high
    )
    duration_low = class_cfg.duration_low_days
    duration_high = class_cfg.duration_high_days
    if cls in (
        CampaignClass.BOTNET_BROADCAST, CampaignClass.DIRECT_BROADCAST
    ):
        # The loudest campaigns are sustained operations: their domains
        # churn for weeks, which is why a 5-day incoming mail sample
        # still sees most of the head of the volume distribution
        # (Section 4.3).
        span = math.log(class_cfg.volume_high / class_cfg.volume_low)
        vfrac = math.log(volume / class_cfg.volume_low) / span if span else 1.0
        floor = duration_low + vfrac * (duration_high - duration_low)
        duration_low = min(duration_high, max(duration_low, floor * 0.8))
    start, end = _sample_interval(rng, ctx.timeline, duration_low, duration_high)
    n_domains = rng.randint(class_cfg.domains_low, class_cfg.domains_high)

    if botnet_id >= 0:
        volume *= ctx.botnets[botnet_id].capacity

    if program_id >= 0:
        category = ctx.programs[program_id].category.value
    else:
        category = "pharma"  # minor untagged shops mimic pharma names
    namer = SpamNameGenerator(
        rng, category, salt=salt_token(campaign_id)
    )

    placements = _build_placements(
        rng, namer, start, end, n_domains, volume,
        broadcast_lag_low_days=class_cfg.broadcast_lag_low_days,
        broadcast_lag_high_days=class_cfg.broadcast_lag_high_days,
    )
    strategy = weighted_choice(
        rng,
        [s for s, _ in class_cfg.strategies],
        [w for _, w in class_cfg.strategies],
    )
    return Campaign(
        campaign_id=campaign_id,
        campaign_class=cls,
        strategy=strategy,
        placements=placements,
        affiliate_id=None if affiliate_id < 0 else affiliate_id,
        program_id=None if program_id < 0 else program_id,
        botnet_id=None if botnet_id < 0 else botnet_id,
        chaff_probability=class_cfg.chaff_probability,
        redirector_probability=class_cfg.redirector_probability,
        filter_evasion=rng.uniform(
            class_cfg.filter_evasion_low, class_cfg.filter_evasion_high
        ),
    )


def build_campaign_unit(
    ctx: BuildContext, members: Sequence[int]
) -> UnitResult:
    """Build the campaigns of one (program, botnet) partition block.

    *members* is a flat :data:`MEMBER_STRIDE`-stride int sequence from
    the identity pre-pass.  Each campaign body draws only from its own
    ``campaign.<class>.<index>`` stream, so this function's output
    depends on nothing but ``(ctx, members)`` -- the unit can run in
    any process, in any order, at any shard width.
    """
    result = UnitResult(kind="camp")
    hosting: Dict[str, HostingRecord] = {}
    for offset in range(0, len(members), MEMBER_STRIDE):
        (cls_rank, index, campaign_id, _tagged,
         program_id, affiliate_id, botnet_id) = members[
            offset:offset + MEMBER_STRIDE
        ]
        cls = CLASS_BUILD_ORDER[cls_rank]
        class_cfg = ctx.config.campaign_classes[cls]
        rng = ctx.seeds.rng(f"campaign.{cls.value}.{index}")
        campaign = _build_one_campaign(
            ctx, rng, cls, class_cfg, campaign_id,
            program_id, affiliate_id, botnet_id,
        )
        _apply_redirector(rng, ctx.benign, campaign, result.redirector_tags)
        _register_and_host(
            rng, ctx.config, campaign, ctx.benign_union,
            result.registrations, hosting,
            dead_site_probability=class_cfg.dead_site_probability,
        )
        result.campaigns.append(campaign)
    result.hosting = list(hosting.values())
    return result


# ----------------------------------------------------------------------
# Stage 3: the DGA poisoning episode (blocked)
# ----------------------------------------------------------------------


def dga_botnet_id(
    config: EcosystemConfig, botnets: Dict[int, Botnet]
) -> Optional[int]:
    """The botnet running the DGA episode (None without botnets)."""
    for bid, botnet in sorted(botnets.items()):
        if botnet.name == config.dga.botnet_name:
            return bid
    return min(botnets) if botnets else 0


def build_dga_block(ctx: BuildContext, block: int, count: int) -> UnitResult:
    """One block of the Rustock random pseudo-domain episode (S 4.1.1).

    Block *block* draws its bursts from ``dga.<block>`` and its parked
    collision sliver from ``dga.<block>.collisions`` -- both fixed-size
    streams, so the episode is identical however blocks are grouped
    into shards.  Collision registration (Section 4.2.1: the Bot feed's
    exclusive "live" domains) rides along in the block.
    """
    dga_cfg = ctx.config.dga
    rng = ctx.seeds.rng(f"dga.{block}")
    generator = DgaNameGenerator(rng)
    start = days(dga_cfg.start_day)
    end = min(start + days(dga_cfg.duration_days), ctx.timeline.end)
    span = end - start
    per_domain = dga_cfg.volume / dga_cfg.n_domains
    result = UnitResult(kind="dga")
    for _ in range(count):
        # Each bogus name is blasted for a brief burst.
        burst_start = start + rng.randrange(max(1, span - 120))
        burst_end = min(end, burst_start + rng.randint(30, 360))
        result.placements.append(
            DomainPlacement(
                domain=generator.generate(),
                start=burst_start,
                end=max(burst_end, burst_start + 30),
                volume=max(1.0, per_domain),
            )
        )
    # A sliver of random names collide with real parked domains; these
    # resolve and serve placeholder pages.
    fraction = dga_cfg.registered_fraction
    if fraction > 0:
        rng_c = ctx.seeds.rng(f"dga.{block}.collisions")
        for domain in sorted(p.domain for p in result.placements):
            if rng_c.random() >= fraction:
                continue
            registered_at = -days(rng_c.uniform(100, 2000))
            result.registrations.append((domain, registered_at))
            result.hosting.append(
                HostingRecord(
                    domain=domain,
                    live_from=registered_at,
                    live_until=ctx.timeline.end + days(365),
                    program_id=None,
                    affiliate_id=None,
                    dead=False,
                )
            )
    return result


# ----------------------------------------------------------------------
# Stage 4: side pools (blocked)
# ----------------------------------------------------------------------


def build_hyb_block(ctx: BuildContext, block: int, count: int) -> UnitResult:
    """One block of scraped web-spam domains (hybrid-feed exclusives).

    Salted past the campaign-id range so block-local name issuance can
    never collide with any campaign's storefronts.
    """
    cfg = ctx.config
    rng = ctx.seeds.rng(f"hyb.{block}")
    namer = SpamNameGenerator(
        rng, "software", salt=salt_token(total_campaigns(cfg) + 1 + block)
    )
    result = UnitResult(kind="hyb")
    for _ in range(count):
        domain = namer.generate()
        result.pool.append(domain)
        if rng.random() < cfg.hyb_webspam_live_fraction:
            registered_at = -days(rng.uniform(0, 200))
            result.registrations.append((domain, registered_at))
            result.hosting.append(
                HostingRecord(
                    domain=domain,
                    live_from=registered_at,
                    live_until=ctx.timeline.end + days(rng.uniform(0, 60)),
                    program_id=None,
                    affiliate_id=None,
                    dead=rng.random() < 0.25,
                )
            )
    return result


def build_junk_block(ctx: BuildContext, block: int, count: int) -> UnitResult:
    """One block of never-registered junk names from user reports."""
    rng = ctx.seeds.rng(f"junk.{block}")
    generator = DgaNameGenerator(rng, min_len=6, max_len=12)
    result = UnitResult(kind="junk")
    result.pool = generator.generate_batch(count)
    return result


def register_benign(
    ctx: BuildContext, registry: Registry
) -> None:
    """Benign domains are long-registered and stay registered.

    Runs at merge time, first, in the parent.  ``all_benign`` is a set
    of strings, so the (domain -> date) pairing varies with the process
    hash seed -- harmless, because every benign domain predates the
    window by 200+ days either way, but it is why content fingerprints
    exclude benign registrations.
    """
    rng = ctx.seeds.rng("benign-registration")
    for domain in ctx.benign.all_benign:
        registry.register(domain, -days(rng.uniform(200, 3000)))


def build_world(
    config: Optional[EcosystemConfig] = None,
    seed: int = 2012,
    timeline: Optional[Timeline] = None,
) -> World:
    """Convenience wrapper: build a world from *config* (default: paper)."""
    from repro.ecosystem.config import paper_config

    return WorldBuilder(config or paper_config(), seed, timeline).build()
