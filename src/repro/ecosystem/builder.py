"""World construction: from an :class:`EcosystemConfig` to a :class:`World`.

The builder materializes the ground truth that all ten feeds observe:
affiliate programs and their affiliates (with revenue), botnets, the
benign web, the domain registry, web hosting truth, and -- most
importantly -- the campaign population whose structure drives every
qualitative result in the paper:

* a few dozen *loud* botnet broadcast campaigns dominate volume,
* hundreds of direct broadcast campaigns fill the middle,
* thousands of *quiet*, deliverability-engineered campaigns carry most
  of the distinct domains (and the high-revenue affiliates), and
* one Rustock-style DGA poisoning episode floods two feeds with
  unregistered gibberish.
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.domains import DgaNameGenerator, SpamNameGenerator
from repro.ecosystem.benign import BenignWorld, build_benign_world
from repro.ecosystem.config import CampaignClassConfig, EcosystemConfig
from repro.ecosystem.entities import (
    AddressStrategy,
    Affiliate,
    AffiliateProgram,
    Botnet,
    Campaign,
    CampaignClass,
    DomainPlacement,
    GoodsCategory,
)
from repro.ecosystem.registry import Registry
from repro.ecosystem.world import HostingRecord, World
from repro.simtime import SimTime, Timeline, days
from repro.stats.distributions import bounded_pareto, weighted_choice, zipf_weights
from repro.stats.rng import SeedSequence

_BOTNET_NAMES = (
    "rustock", "cutwail", "grum", "mega-d", "lethic", "maazben",
    "bobax", "waledac", "festi", "bagle", "kelihos", "darkmailer",
)


class WorldBuilder:
    """Deterministic world generator.

    Every stochastic decision draws from a labelled RNG stream derived
    from the root seed, so adding draws to one stage never perturbs the
    others.
    """

    def __init__(
        self,
        config: EcosystemConfig,
        seed: int = 2012,
        timeline: Optional[Timeline] = None,
    ):
        self.config = config
        self.seed = seed
        self.timeline = timeline or Timeline()
        self._seeds = SeedSequence(seed)
        #: One shared issued-name set keeps every spam-name generator
        #: (storefronts, web spam, DGA) collision-free against the rest.
        self._issued_names: Set[str] = set()
        #: Lazily built Alexa|ODP union shared by every campaign's
        #: registration pass (pure cache; consumes no RNG).
        self._benign_union: Optional[Set[str]] = None

    # ------------------------------------------------------------------
    # Stage 1: populations
    # ------------------------------------------------------------------

    def build_programs(self) -> Dict[int, AffiliateProgram]:
        """Create the tagged affiliate programs (45 in the paper)."""
        cfg = self.config.programs
        rng = self._seeds.rng("programs")
        categories: List[GoodsCategory] = (
            [GoodsCategory.PHARMA] * cfg.n_pharma
            + [GoodsCategory.REPLICA] * cfg.n_replica
            + [GoodsCategory.SOFTWARE] * cfg.n_software
        )
        weights = zipf_weights(len(categories), cfg.popularity_exponent)
        # Category order is deterministic; shuffle so weight rank is not
        # perfectly aligned with category.
        order = list(range(len(categories)))
        rng.shuffle(order)
        programs: Dict[int, AffiliateProgram] = {}
        for pid, slot in enumerate(order):
            category = categories[slot]
            weight = weights[pid]
            # Program 0 is the RX-Promotion analog: the dominant pharma
            # program, and the only one embedding affiliate identifiers.
            if pid == 0:
                category = GoodsCategory.PHARMA
                weight *= 3.0
            programs[pid] = AffiliateProgram(
                program_id=pid,
                name=f"{category.value}-program-{pid:02d}",
                category=category,
                weight=weight,
                embeds_affiliate_id=(pid == 0),
            )
        return programs

    def build_affiliates(
        self, programs: Dict[int, AffiliateProgram]
    ) -> Dict[int, Affiliate]:
        """Create affiliates with heavy-tailed annual revenue."""
        cfg = self.config.programs
        rng = self._seeds.rng("affiliates")
        affiliates: Dict[int, Affiliate] = {}
        next_id = 0
        for pid in sorted(programs):
            if programs[pid].embeds_affiliate_id:
                n = cfg.rx_affiliates
            else:
                n = rng.randint(cfg.affiliates_low, cfg.affiliates_high)
            for _ in range(n):
                revenue = bounded_pareto(
                    rng, cfg.revenue_alpha, cfg.revenue_low, cfg.revenue_high
                )
                affiliates[next_id] = Affiliate(
                    affiliate_id=next_id,
                    program_id=pid,
                    annual_revenue=revenue,
                )
                next_id += 1
        return affiliates

    def build_botnets(self) -> Dict[int, Botnet]:
        """Create the botnet population; the first ones are monitored."""
        cfg = self.config.botnets
        rng = self._seeds.rng("botnets")
        if cfg.n_monitored > cfg.n_botnets:
            raise ValueError("cannot monitor more botnets than exist")
        botnets: Dict[int, Botnet] = {}
        for bid in range(cfg.n_botnets):
            name = _BOTNET_NAMES[bid % len(_BOTNET_NAMES)]
            botnets[bid] = Botnet(
                botnet_id=bid,
                name=name,
                capacity=rng.uniform(cfg.capacity_low, cfg.capacity_high),
                monitored=(bid < cfg.n_monitored),
            )
        return botnets

    # ------------------------------------------------------------------
    # Stage 2: campaigns
    # ------------------------------------------------------------------

    def _pick_program(
        self,
        rng: random.Random,
        programs: Dict[int, AffiliateProgram],
    ) -> AffiliateProgram:
        pids = sorted(programs)
        weights = [programs[p].weight for p in pids]
        return programs[weighted_choice(rng, pids, weights)]

    def _affiliates_by_program(
        self, affiliates: Dict[int, Affiliate]
    ) -> Dict[int, List[Affiliate]]:
        index: Dict[int, List[Affiliate]] = {}
        for a in affiliates.values():
            index.setdefault(a.program_id, []).append(a)
        for members in index.values():
            members.sort(key=lambda a: a.affiliate_id)
        return index

    def _pick_affiliate(
        self,
        rng: random.Random,
        members: Sequence[Affiliate],
        prefer_high_revenue: bool,
    ) -> Affiliate:
        """Sample an affiliate, biased by revenue rank.

        Quiet, deliverability-focused campaigns come from the skilled,
        high-revenue affiliates; botnet broadcast runs from the long
        tail.  This correlation is what makes the revenue-weighted
        coverage (Figure 6) favor the Hu/dbl feeds.
        """
        ranked = sorted(
            members,
            key=lambda a: a.annual_revenue,
            reverse=prefer_high_revenue,
        )
        exponent = 0.9 if prefer_high_revenue else 0.7
        weights = zipf_weights(len(ranked), exponent)
        return weighted_choice(rng, ranked, weights)

    def _sample_interval(
        self, rng: random.Random, duration_low_days: float, duration_high_days: float
    ) -> Tuple[SimTime, SimTime]:
        """Sample a campaign interval inside the measurement window."""
        tl = self.timeline
        duration = days(rng.uniform(duration_low_days, duration_high_days))
        duration = max(duration, 30)  # at least half an hour
        latest_start = max(tl.start, tl.end - duration)
        start = rng.randrange(tl.start, latest_start + 1)
        end = min(start + duration, tl.end)
        return start, end

    def _build_placements(
        self,
        rng: random.Random,
        namer: SpamNameGenerator,
        start: SimTime,
        end: SimTime,
        n_domains: int,
        total_volume: float,
        broadcast_lag_low_days: float = 0.0,
        broadcast_lag_high_days: float = 0.0,
    ) -> List[DomainPlacement]:
        """Rotate *n_domains* fresh names across [start, end).

        Segments overlap slightly (old domain winds down while the next
        spins up), volumes are proportional to segment length.
        """
        span = end - start
        n_domains = max(1, min(n_domains, max(1, span // 30)))
        edges = sorted(rng.uniform(0, 1) for _ in range(n_domains - 1))
        bounds = [0.0] + edges + [1.0]
        placements: List[DomainPlacement] = []
        for i in range(n_domains):
            seg_start = start + int(bounds[i] * span)
            seg_end = start + int(bounds[i + 1] * span)
            # Slight overlap with the following segment.
            overlap = int((seg_end - seg_start) * 0.15)
            seg_end = min(end, seg_end + overlap)
            if seg_end - seg_start < 30:
                seg_end = min(end, seg_start + 30)
            if seg_end <= seg_start:
                continue
            share = (seg_end - seg_start) / span
            volume = max(1.0, total_volume * share)
            lag = days(
                rng.uniform(broadcast_lag_low_days, broadcast_lag_high_days)
            )
            # The blast must still cover most of the placement, or the
            # domain would never monetize; cap the warm-up phase.
            lag = min(lag, int(0.7 * (seg_end - seg_start)))
            placements.append(
                DomainPlacement(
                    domain=namer.generate(),
                    start=seg_start,
                    end=seg_end,
                    volume=volume,
                    broadcast_lag=lag,
                )
            )
        if not placements:
            placements.append(
                DomainPlacement(
                    domain=namer.generate(),
                    start=start,
                    end=max(end, start + 30),
                    volume=max(1.0, total_volume),
                )
            )
        return placements

    def _apply_redirector(
        self,
        rng: random.Random,
        benign: BenignWorld,
        campaign: Campaign,
        redirector_tags: Dict[str, Tuple[int, Optional[int]]],
    ) -> None:
        """Divert part of a campaign's volume through a redirector domain.

        The diverted messages advertise the *redirector's* registered
        domain (that is the whole point: hiding behind an established
        name), so feeds and the mail oracle see the benign domain.  If
        the campaign is tagged, a crawl of the redirector follows the
        redirect to the storefront -- the redirector domain becomes
        *tagged* despite being Alexa-listed (Section 4.1.4, Figure 3).
        """
        r = campaign.redirector_probability
        if r <= 0 or not benign.redirectors:
            return
        redirector = benign.sample_redirector(rng)
        extra: List[DomainPlacement] = []
        reduced: List[DomainPlacement] = []
        for placement in campaign.placements:
            diverted = placement.volume * r
            kept = placement.volume - diverted
            if diverted >= 1.0 and kept >= 1.0:
                extra.append(
                    dataclasses.replace(
                        placement, domain=redirector, volume=diverted
                    )
                )
                reduced.append(
                    dataclasses.replace(placement, volume=kept)
                )
            else:
                reduced.append(placement)
        if extra:
            campaign.placements = reduced + extra
            if campaign.program_id is not None:
                redirector_tags.setdefault(
                    redirector, (campaign.program_id, campaign.affiliate_id)
                )

    def build_campaigns(
        self,
        programs: Dict[int, AffiliateProgram],
        affiliates: Dict[int, Affiliate],
        botnets: Dict[int, Botnet],
        benign: BenignWorld,
        registry: Registry,
        hosting: Dict[str, HostingRecord],
        redirector_tags: Dict[str, Tuple[int, Optional[int]]],
    ) -> List[Campaign]:
        """Generate the full campaign population (all classes but DGA)."""
        cfg = self.config
        campaigns: List[Campaign] = []
        members_by_program = self._affiliates_by_program(affiliates)

        # Each botnet operator spams for a small fixed set of
        # (program, affiliate) identities -- the reason the Bot feed
        # covers so few programs and RX affiliates (Figures 4 and 5).
        botnet_identities: Dict[int, List[Tuple[int, int]]] = {}
        rng_bn = self._seeds.rng("botnet-identities")
        bcfg = cfg.botnets
        for bid in sorted(botnets):
            n_programs = rng_bn.randint(
                bcfg.programs_per_botnet_low, bcfg.programs_per_botnet_high
            )
            identities: List[Tuple[int, int]] = []
            for _ in range(n_programs):
                program = self._pick_program(rng_bn, programs)
                member = self._pick_affiliate(
                    rng_bn, members_by_program[program.program_id],
                    prefer_high_revenue=False,
                )
                identities.append((program.program_id, member.affiliate_id))
            botnet_identities[bid] = identities

        namers: Dict[GoodsCategory, SpamNameGenerator] = {}
        rng_names = self._seeds.rng("campaign-domains")
        for category in GoodsCategory:
            namers[category] = SpamNameGenerator(
                rng_names, category.value, issued=self._issued_names
            )
        other_namer = SpamNameGenerator(
            rng_names, "pharma", issued=self._issued_names
        )

        campaign_id = 0
        for cls in (
            CampaignClass.BOTNET_BROADCAST,
            CampaignClass.DIRECT_BROADCAST,
            CampaignClass.QUIET_TARGETED,
            CampaignClass.OTHER_GOODS,
        ):
            class_cfg = cfg.campaign_classes.get(cls)
            if class_cfg is None:
                continue
            rng = self._seeds.rng(f"campaigns.{cls.value}")
            for _ in range(class_cfg.count):
                campaign = self._build_one_campaign(
                    rng,
                    campaign_id,
                    cls,
                    class_cfg,
                    programs,
                    members_by_program,
                    botnets,
                    botnet_identities,
                    namers,
                    other_namer,
                )
                self._apply_redirector(rng, benign, campaign, redirector_tags)
                self._register_and_host(
                    rng, campaign, registry, hosting, benign,
                    dead_site_probability=class_cfg.dead_site_probability,
                )
                campaigns.append(campaign)
                campaign_id += 1
        return campaigns

    def _build_one_campaign(
        self,
        rng: random.Random,
        campaign_id: int,
        cls: CampaignClass,
        class_cfg: CampaignClassConfig,
        programs: Dict[int, AffiliateProgram],
        members_by_program: Dict[int, List[Affiliate]],
        botnets: Dict[int, Botnet],
        botnet_identities: Dict[int, List[Tuple[int, int]]],
        namers: Dict[GoodsCategory, SpamNameGenerator],
        other_namer: SpamNameGenerator,
    ) -> Campaign:
        volume = bounded_pareto(
            rng, class_cfg.volume_alpha, class_cfg.volume_low, class_cfg.volume_high
        )
        duration_low = class_cfg.duration_low_days
        duration_high = class_cfg.duration_high_days
        if cls in (
            CampaignClass.BOTNET_BROADCAST, CampaignClass.DIRECT_BROADCAST
        ):
            # The loudest campaigns are sustained operations: their
            # domains churn for weeks, which is why a 5-day incoming
            # mail sample still sees most of the head of the volume
            # distribution (Section 4.3).
            span = math.log(class_cfg.volume_high / class_cfg.volume_low)
            vfrac = math.log(volume / class_cfg.volume_low) / span if span else 1.0
            floor = duration_low + vfrac * (duration_high - duration_low)
            duration_low = min(duration_high, max(duration_low, floor * 0.8))
        start, end = self._sample_interval(rng, duration_low, duration_high)
        n_domains = rng.randint(class_cfg.domains_low, class_cfg.domains_high)

        botnet_id: Optional[int] = None
        program_id: Optional[int] = None
        affiliate_id: Optional[int] = None
        tagged = rng.random() < class_cfg.tagged_fraction

        if cls is CampaignClass.BOTNET_BROADCAST:
            botnet_id = weighted_choice(
                rng,
                sorted(botnets),
                [botnets[b].capacity for b in sorted(botnets)],
            )
            volume *= botnets[botnet_id].capacity
            if tagged:
                program_id, affiliate_id = rng.choice(
                    botnet_identities[botnet_id]
                )
        elif tagged:
            program = self._pick_program(rng, programs)
            program_id = program.program_id
            member = self._pick_affiliate(
                rng,
                members_by_program[program_id],
                prefer_high_revenue=(cls is CampaignClass.QUIET_TARGETED),
            )
            affiliate_id = member.affiliate_id

        if program_id is not None:
            category = programs[program_id].category
            namer = namers[category]
        else:
            namer = other_namer

        placements = self._build_placements(
            rng, namer, start, end, n_domains, volume,
            broadcast_lag_low_days=class_cfg.broadcast_lag_low_days,
            broadcast_lag_high_days=class_cfg.broadcast_lag_high_days,
        )
        strategy = weighted_choice(
            rng,
            [s for s, _ in class_cfg.strategies],
            [w for _, w in class_cfg.strategies],
        )
        return Campaign(
            campaign_id=campaign_id,
            campaign_class=cls,
            strategy=strategy,
            placements=placements,
            affiliate_id=affiliate_id,
            program_id=program_id,
            botnet_id=botnet_id,
            chaff_probability=class_cfg.chaff_probability,
            redirector_probability=class_cfg.redirector_probability,
            filter_evasion=rng.uniform(
                class_cfg.filter_evasion_low, class_cfg.filter_evasion_high
            ),
        )

    def _register_and_host(
        self,
        rng: random.Random,
        campaign: Campaign,
        registry: Registry,
        hosting: Dict[str, HostingRecord],
        benign: BenignWorld,
        dead_site_probability: Optional[float] = None,
    ) -> None:
        """Register the campaign's storefront domains and provision hosting."""
        cfg = self.config
        if dead_site_probability is None:
            dead_site_probability = cfg.dead_site_probability
        # The Alexa/ODP union is identical for every campaign; rebuilding
        # it per call dominated world-build wall time at paper scale.
        benign_set = self._benign_union
        if benign_set is None:
            benign_set = self._benign_union = (
                benign.alexa_set | benign.odp_domains
            )
        for domain in campaign.domains:
            if domain in benign_set:
                continue  # redirector placements: already-existing domains
            first, last = campaign.domain_interval(domain)
            lead = days(
                rng.uniform(
                    cfg.registration_lead_low_days, cfg.registration_lead_high_days
                )
            )
            registered_at = first - lead
            registry.register(domain, registered_at)
            if domain in hosting:
                continue
            dead = rng.random() < dead_site_probability
            linger = days(
                rng.uniform(
                    cfg.hosting_linger_low_days, cfg.hosting_linger_high_days
                )
            )
            hosting[domain] = HostingRecord(
                domain=domain,
                live_from=registered_at,
                live_until=last + linger,
                program_id=campaign.program_id,
                affiliate_id=campaign.affiliate_id,
                dead=dead,
            )

    # ------------------------------------------------------------------
    # Stage 3: the DGA poisoning episode
    # ------------------------------------------------------------------

    def build_dga_campaign(
        self, botnets: Dict[int, Botnet], campaign_id: int
    ) -> Tuple[Optional[Campaign], Set[str]]:
        """The Rustock random pseudo-domain episode (Section 4.1.1)."""
        dga_cfg = self.config.dga
        if dga_cfg.n_domains <= 0:
            return None, set()
        rng = self._seeds.rng("dga")
        botnet_id = None
        for bid, botnet in sorted(botnets.items()):
            if botnet.name == dga_cfg.botnet_name:
                botnet_id = bid
                break
        if botnet_id is None:
            botnet_id = min(botnets) if botnets else 0
        generator = DgaNameGenerator(rng, issued=self._issued_names)
        start = days(dga_cfg.start_day)
        end = min(start + days(dga_cfg.duration_days), self.timeline.end)
        span = end - start
        per_domain = dga_cfg.volume / dga_cfg.n_domains
        placements: List[DomainPlacement] = []
        for _ in range(dga_cfg.n_domains):
            # Each bogus name is blasted for a brief burst.
            burst_start = start + rng.randrange(max(1, span - 120))
            burst_end = min(end, burst_start + rng.randint(30, 360))
            placements.append(
                DomainPlacement(
                    domain=generator.generate(),
                    start=burst_start,
                    end=max(burst_end, burst_start + 30),
                    volume=max(1.0, per_domain),
                )
            )
        campaign = Campaign(
            campaign_id=campaign_id,
            campaign_class=CampaignClass.DGA_POISON,
            strategy=AddressStrategy.BRUTE_FORCE,
            placements=placements,
            botnet_id=botnet_id,
            filter_evasion=0.0,
        )
        return campaign, {p.domain for p in placements}

    def register_dga_collisions(
        self,
        dga_domains: Set[str],
        registry: Registry,
        hosting: Dict[str, HostingRecord],
    ) -> None:
        """A sliver of random names collide with real parked domains.

        These resolve and serve placeholder pages, which is the likely
        source of the Bot feed's few thousand exclusive "live" domains
        in the paper (Section 4.2.1).
        """
        fraction = self.config.dga.registered_fraction
        if fraction <= 0:
            return
        rng = self._seeds.rng("dga-collisions")
        for domain in sorted(dga_domains):
            if rng.random() >= fraction:
                continue
            registered_at = -days(rng.uniform(100, 2000))
            registry.register(domain, registered_at)
            hosting[domain] = HostingRecord(
                domain=domain,
                live_from=registered_at,
                live_until=self.timeline.end + days(365),
                program_id=None,
                affiliate_id=None,
                dead=False,
            )

    # ------------------------------------------------------------------
    # Stage 4: side pools
    # ------------------------------------------------------------------

    def build_hyb_webspam(
        self, registry: Registry, hosting: Dict[str, HostingRecord]
    ) -> List[str]:
        """Scraped web-spam domains only the hybrid feed's sources find."""
        cfg = self.config
        rng = self._seeds.rng("hyb-webspam")
        namer = SpamNameGenerator(rng, "software", issued=self._issued_names)
        pool: List[str] = []
        for _ in range(cfg.hyb_webspam_pool):
            domain = namer.generate()
            pool.append(domain)
            if rng.random() < cfg.hyb_webspam_live_fraction:
                registered_at = -days(rng.uniform(0, 200))
                registry.register(domain, registered_at)
                hosting[domain] = HostingRecord(
                    domain=domain,
                    live_from=registered_at,
                    live_until=self.timeline.end + days(rng.uniform(0, 60)),
                    program_id=None,
                    affiliate_id=None,
                    dead=rng.random() < 0.25,
                )
        return pool

    def build_junk_domains(self) -> List[str]:
        """Never-registered junk names that show up in user reports."""
        rng = self._seeds.rng("junk-reports")
        generator = DgaNameGenerator(
            rng, min_len=6, max_len=12, issued=self._issued_names
        )
        return generator.generate_batch(self.config.junk_report_pool)

    def register_benign(self, benign: BenignWorld, registry: Registry) -> None:
        """Benign domains are long-registered and stay registered."""
        rng = self._seeds.rng("benign-registration")
        for domain in benign.all_benign:
            registry.register(domain, -days(rng.uniform(200, 3000)))

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def build(self) -> World:
        """Run all stages and return the assembled world."""
        cfg = self.config
        programs = self.build_programs()
        affiliates = self.build_affiliates(programs)
        botnets = self.build_botnets()

        rng_benign = self._seeds.rng("benign-world")
        benign = build_benign_world(
            rng_benign,
            alexa_size=cfg.benign.alexa_size,
            odp_size=cfg.benign.odp_size,
            odp_alexa_overlap=cfg.benign.odp_alexa_overlap,
            n_redirectors=cfg.benign.n_redirectors,
            chaff_pool_size=cfg.benign.chaff_pool_size,
            n_newsletter_domains=cfg.benign.n_newsletter_domains,
        )

        registry = Registry()
        hosting: Dict[str, HostingRecord] = {}
        redirector_tags: Dict[str, Tuple[int, Optional[int]]] = {}

        self.register_benign(benign, registry)
        campaigns = self.build_campaigns(
            programs, affiliates, botnets, benign, registry, hosting,
            redirector_tags,
        )
        dga_campaign, dga_domains = self.build_dga_campaign(
            botnets, campaign_id=len(campaigns)
        )
        if dga_campaign is not None:
            campaigns.append(dga_campaign)
            self.register_dga_collisions(dga_domains, registry, hosting)

        hyb_webspam = self.build_hyb_webspam(registry, hosting)
        junk = self.build_junk_domains()

        return World(
            timeline=self.timeline,
            programs=programs,
            affiliates=affiliates,
            botnets=botnets,
            campaigns=campaigns,
            registry=registry,
            benign=benign,
            hosting=hosting,
            dga_domains=dga_domains,
            dga_campaign=dga_campaign,
            redirector_tags=redirector_tags,
            hyb_webspam=hyb_webspam,
            junk_domains=junk,
        )


def build_world(
    config: Optional[EcosystemConfig] = None,
    seed: int = 2012,
    timeline: Optional[Timeline] = None,
) -> World:
    """Convenience wrapper: build a world from *config* (default: paper)."""
    from repro.ecosystem.config import paper_config

    return WorldBuilder(config or paper_config(), seed, timeline).build()
