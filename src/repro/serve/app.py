"""The serve daemon's request logic, transport-free.

:class:`ServeApp` maps ``(path, query)`` to a :class:`Response` using a
:class:`~repro.serve.worlds.WorldCache`; the HTTP layer in
:mod:`repro.serve.server` only parses requests and writes bytes.  The
split keeps every endpoint unit-testable without a socket and keeps the
answer surface honest: each endpoint is a pure function of its
parameters plus the deterministic world they select.

Endpoints (all GET):

* ``/healthz`` -- liveness probe, never touches a world.
* ``/v1/tables`` -- every table and figure, byte-identical to
  ``python -m repro run`` stdout for the same config and seed.
* ``/v1/table/{1,2,3}`` -- one paper table.
* ``/v1/feeds`` -- per-feed purity and coverage as JSON.
* ``/v1/snapshot?day=D`` -- Table 1/2/3 as of the start of day D.
* ``/v1/recommend?question=Q`` -- Section 5 feed ranking as JSON.
* ``/v1/first-seen?domain=X`` -- cross-run first-seen from the
  daemon's sighting store.
* ``/v1/stats`` -- daemon counters, resident worlds, uptime.

World-selecting endpoints share three query parameters: ``seed``
(default from the CLI), ``small`` (0/1) and ``scale`` (float) -- the
same knobs the batch CLI exposes, resolved to the same configs.
"""

from __future__ import annotations

import dataclasses
import json
import threading
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.analysis.recommend import Question, rank_feeds
from repro.ecosystem import (
    EcosystemConfig,
    paper_config,
    scaled_config,
    small_config,
)
from repro.io.artifacts import fingerprint
from repro.serve.worlds import ServeStats, WorldCache, WorldEntry
from repro.store.backend import StoreError
from repro.store.sightings import SightingStore


@dataclasses.dataclass
class Response:
    """One finished answer, ready for any transport."""

    status: int
    content_type: str
    body: bytes
    #: Key of the world that answered (manifest provenance), if any.
    config_fingerprint: str = ""
    seed: Optional[int] = None

    @classmethod
    def text(cls, text: str, status: int = 200, **meta: Any) -> "Response":
        return cls(
            status, "text/plain; charset=utf-8", text.encode("utf-8"), **meta
        )

    @classmethod
    def json(cls, payload: Any, status: int = 200, **meta: Any) -> "Response":
        body = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        return cls(status, "application/json", body.encode("utf-8"), **meta)

    @classmethod
    def error(cls, status: int, message: str) -> "Response":
        return cls.json({"error": message}, status=status)


class BadRequest(ValueError):
    """A malformed or unanswerable request (becomes a 400)."""


def _first(query: Mapping[str, List[str]], name: str) -> Optional[str]:
    values = query.get(name)
    return values[0] if values else None


class ServeApp:
    """Routes requests over one world cache and one optional store."""

    def __init__(
        self,
        worlds: WorldCache,
        stats: ServeStats,
        default_seed: int = 2012,
        default_small: bool = False,
        store: Optional[SightingStore] = None,
    ):
        self.worlds = worlds
        self.stats = stats
        self.default_seed = default_seed
        self.default_small = default_small
        #: Daemon-held read connection for first-seen queries, guarded
        #: by the store lock in :mod:`repro.serve.server` handlers via
        #: :meth:`first_seen_rows`.
        self._store = store
        self._store_lock = threading.Lock()
        self._routes: Dict[str, Callable[..., Response]] = {
            "/healthz": self._healthz,
            "/v1/tables": self._tables,
            "/v1/table/1": self._one_table,
            "/v1/table/2": self._one_table,
            "/v1/table/3": self._one_table,
            "/v1/feeds": self._feeds,
            "/v1/snapshot": self._snapshot,
            "/v1/recommend": self._recommend,
            "/v1/first-seen": self._first_seen,
            "/v1/stats": self._stats,
        }

    # -- parameter resolution ------------------------------------------

    def resolve_config(
        self, query: Mapping[str, List[str]]
    ) -> Tuple[EcosystemConfig, int]:
        """The (config, seed) a request's query parameters select."""
        seed_raw = _first(query, "seed")
        try:
            seed = self.default_seed if seed_raw is None else int(seed_raw)
        except ValueError:
            raise BadRequest(
                f"seed must be an integer, got {seed_raw!r}"
            ) from None
        small_raw = _first(query, "small")
        if small_raw is None:
            small = self.default_small
        elif small_raw in ("0", "1"):
            small = small_raw == "1"
        else:
            raise BadRequest(f"small must be 0 or 1, got {small_raw!r}")
        config = small_config() if small else paper_config()
        scale_raw = _first(query, "scale")
        if scale_raw is not None:
            try:
                scale = float(scale_raw)
            except ValueError:
                raise BadRequest(
                    f"scale must be a number, got {scale_raw!r}"
                ) from None
            if scale != 1.0:
                config = scaled_config(config, scale)
        return config, seed

    # -- dispatch ------------------------------------------------------

    def endpoints(self) -> List[str]:
        """Every routable path, sorted (the 404 body lists them)."""
        return sorted(self._routes)

    def handle(
        self, path: str, query: Mapping[str, List[str]]
    ) -> Response:
        """Answer one parsed request (transport-independent)."""
        self.stats.add("serve.requests")
        route = self._routes.get(path)
        if route is None:
            self.stats.add("serve.not_found")
            return Response.json(
                {"error": f"no such endpoint: {path}",
                 "endpoints": self.endpoints()},
                status=404,
            )
        try:
            return route(path, query)
        except BadRequest as exc:
            self.stats.add("serve.bad_requests")
            return Response.error(400, str(exc))

    # -- endpoints -----------------------------------------------------

    def _healthz(
        self, path: str, query: Mapping[str, List[str]]
    ) -> Response:
        return Response.text("ok\n")

    def _entry(self, query: Mapping[str, List[str]]) -> WorldEntry:
        config, seed = self.resolve_config(query)
        return self.worlds.entry(config, seed)

    def _tables(
        self, path: str, query: Mapping[str, List[str]]
    ) -> Response:
        entry = self._entry(query)
        # print() in the batch CLI appends one newline; matching it
        # here is what makes `GET /v1/tables` byte-identical to
        # `python -m repro run` stdout.
        text = self.worlds.render(entry, "all") + "\n"
        return Response.text(
            text, config_fingerprint=entry.key[0], seed=entry.seed
        )

    def _one_table(
        self, path: str, query: Mapping[str, List[str]]
    ) -> Response:
        number = path.rsplit("/", 1)[1]
        entry = self._entry(query)
        text = self.worlds.render(entry, f"table{number}") + "\n"
        return Response.text(
            text, config_fingerprint=entry.key[0], seed=entry.seed
        )

    def _feeds(
        self, path: str, query: Mapping[str, List[str]]
    ) -> Response:
        entry = self._entry(query)
        pipeline = entry.pipeline

        def compute() -> dict:
            purity = {
                row.feed: {
                    "dns": row.dns,
                    "http": row.http,
                    "tagged": row.tagged,
                    "odp": row.odp,
                    "alexa": row.alexa,
                    "n_domains": row.n_domains,
                }
                for row in pipeline.table2()
            }
            coverage = {
                row.feed: {
                    "total_all": row.total_all,
                    "exclusive_all": row.exclusive_all,
                    "total_live": row.total_live,
                    "exclusive_live": row.exclusive_live,
                    "total_tagged": row.total_tagged,
                    "exclusive_tagged": row.exclusive_tagged,
                }
                for row in pipeline.table3()
            }
            return {
                "seed": entry.seed,
                "config_fingerprint": entry.key[0],
                "feeds": list(pipeline.feed_order),
                "purity": purity,
                "coverage": coverage,
            }

        return Response.json(
            self.worlds.payload(entry, "feeds", compute),
            config_fingerprint=entry.key[0],
            seed=entry.seed,
        )

    def _snapshot(
        self, path: str, query: Mapping[str, List[str]]
    ) -> Response:
        day_raw = _first(query, "day")
        if day_raw is None:
            raise BadRequest("snapshot requires a day parameter")
        try:
            day = int(day_raw)
        except ValueError:
            raise BadRequest(
                f"day must be an integer, got {day_raw!r}"
            ) from None
        entry = self._entry(query)
        total = entry.total_days()
        if not 0 <= day <= total:
            raise BadRequest(
                f"day must be between 0 and {total}, got {day}"
            )
        text = self.worlds.snapshot(entry, day) + "\n"
        return Response.text(
            text, config_fingerprint=entry.key[0], seed=entry.seed
        )

    def _recommend(
        self, path: str, query: Mapping[str, List[str]]
    ) -> Response:
        question_raw = _first(query, "question")
        if question_raw is None:
            raise BadRequest(
                "recommend requires a question parameter; one of: "
                + ", ".join(q.value for q in Question)
            )
        try:
            question = Question(question_raw)
        except ValueError:
            raise BadRequest(
                f"unknown question {question_raw!r}; one of: "
                + ", ".join(q.value for q in Question)
            ) from None
        entry = self._entry(query)

        def compute() -> dict:
            ranking = rank_feeds(entry.pipeline.comparison, question)
            return {
                "seed": entry.seed,
                "config_fingerprint": entry.key[0],
                "question": question.value,
                "ranking": [
                    {
                        "rank": rank,
                        "feed": score.feed,
                        "score": score.score,
                        "rationale": score.rationale,
                    }
                    for rank, score in enumerate(ranking, start=1)
                ],
            }

        return Response.json(
            self.worlds.payload(
                entry, f"recommend:{question.value}", compute
            ),
            config_fingerprint=entry.key[0],
            seed=entry.seed,
        )

    def _first_seen(
        self, path: str, query: Mapping[str, List[str]]
    ) -> Response:
        if self._store is None:
            raise BadRequest(
                "the daemon has no sighting store; restart serve with "
                "--store PATH to enable first-seen queries"
            )
        domain = _first(query, "domain")
        if not domain:
            raise BadRequest("first-seen requires a domain parameter")
        with self._store_lock:
            try:
                rows = self._store.first_seen(domain)
            except StoreError as exc:
                raise BadRequest(str(exc)) from exc
        return Response.json(
            {
                "domain": domain,
                "sightings": [
                    {
                        "feed": row.feed,
                        "first_seen": row.first_seen,
                        "last_seen": row.last_seen,
                        "n_sightings": row.n_sightings,
                    }
                    for row in rows
                ],
            }
        )

    def _stats(
        self, path: str, query: Mapping[str, List[str]]
    ) -> Response:
        return Response.json(
            {
                "metrics": self.stats.snapshot(),
                "worlds": self.worlds.resident(),
                "store": self.worlds.store_path,
            }
        )

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Drop the daemon store connection (the server closes worlds)."""
        if self._store is not None:
            self._store.close()
            self._store = None


def default_config_fingerprint(small: bool) -> str:
    """Fingerprint of the daemon's default config (manifest provenance)."""
    return fingerprint(small_config() if small else paper_config())


__all__ = ["BadRequest", "Response", "ServeApp"]
