"""The HTTP transport and lifecycle of ``python -m repro serve``.

Zero dependencies: :class:`http.server.ThreadingHTTPServer` over a
local socket, one thread per request, all request logic delegated to
:class:`~repro.serve.app.ServeApp`.  This module owns the two things
the app deliberately does not know about:

* **Lifecycle.**  SIGINT and SIGTERM initiate a graceful drain: stop
  accepting connections, let every in-flight request finish and flush
  its response, then close the resident worlds (reaping their worker
  pools), the sighting store, and the socket.  Handler threads are
  non-daemon and joined on close -- a client that got its request in
  before the signal always gets its full response.
* **Per-request manifests.**  With ``--manifest-dir``, every request
  is traced on its own :class:`~repro.obs.Tracer` (thread-private, so
  concurrent requests never interleave span trees) and frozen into a
  standard ``repro-run-manifest`` JSON naming the endpoint and the
  world that answered.  Manifests are a side channel: response bytes
  are identical with and without them.
"""

from __future__ import annotations

import itertools
import os
import signal
import socket
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional
from urllib.parse import parse_qs, urlsplit

from repro.obs.manifest import build_manifest, write_manifest
from repro.obs.trace import Tracer
from repro.serve.app import Response, ServeApp


class _RequestHandler(BaseHTTPRequestHandler):
    """Thin HTTP shim: parse, delegate to the app, write bytes."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"
    #: Idle keep-alive connections poll at this interval, which bounds
    #: how long a graceful drain waits for threads that are not
    #: actually computing anything.
    timeout = 1.0

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        daemon: "ServeDaemon" = self.server.repro_daemon  # type: ignore[attr-defined]
        split = urlsplit(self.path)
        query = parse_qs(split.query)
        response = daemon.handle_request(split.path, query)
        body = response.body
        try:
            self.send_response(response.status)
            self.send_header("Content-Type", response.content_type)
            self.send_header("Content-Length", str(len(body)))
            if daemon.draining:
                self.send_header("Connection", "close")
                self.close_connection = True
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            # The client went away mid-write; nothing to salvage.
            self.close_connection = True

    def log_message(self, format: str, *args: Any) -> None:
        daemon: "ServeDaemon" = self.server.repro_daemon  # type: ignore[attr-defined]
        if daemon.verbose:
            sys.stderr.write(
                "[serve] %s %s\n" % (self.address_string(), format % args)
            )


class _Server(ThreadingHTTPServer):
    """Threaded server that joins in-flight requests on close."""

    #: Non-daemon handler threads + block_on_close: server_close()
    #: waits for every in-flight request -- the graceful-drain half of
    #: the SIGINT/SIGTERM contract.
    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True


class ServeDaemon:
    """Binds the app to a socket and owns start/drain/close."""

    def __init__(
        self,
        app: ServeApp,
        host: str = "127.0.0.1",
        port: int = 0,
        manifest_dir: Optional[str] = None,
        verbose: bool = False,
    ):
        self.app = app
        self.manifest_dir = manifest_dir
        self.verbose = verbose
        self.draining = False
        self._request_ids = itertools.count(1)
        self._id_lock = threading.Lock()
        self._stop = threading.Event()
        self._received: List[int] = []
        self._previous_handlers: Optional[Dict[int, Any]] = None
        self._server = _Server((host, port), _RequestHandler)
        self._server.repro_daemon = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    # -- introspection -------------------------------------------------

    @property
    def address(self) -> str:
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    @property
    def port(self) -> int:
        return int(self._server.server_address[1])

    # -- request path --------------------------------------------------

    def handle_request(self, path: str, query: Any) -> Response:
        """One request: app dispatch plus optional manifest emission."""
        with self._id_lock:
            request_id = next(self._request_ids)
        tracer = Tracer() if self.manifest_dir is not None else None
        if tracer is None:
            return self.app.handle(path, query)
        with tracer.span("serve.request", path=path) as span:
            response = self.app.handle(path, query)
            span.attributes["status"] = response.status
        self._write_request_manifest(request_id, path, tracer, response)
        return response

    def _write_request_manifest(
        self,
        request_id: int,
        path: str,
        tracer: Tracer,
        response: Response,
    ) -> None:
        assert self.manifest_dir is not None
        manifest = build_manifest(
            tracer,
            command="serve",
            seed=(
                response.seed
                if response.seed is not None
                else self.app.default_seed
            ),
            config_fingerprint=response.config_fingerprint,
            request=f"{request_id:06d} GET {path} -> {response.status}",
        )
        target = os.path.join(
            self.manifest_dir, f"request-{request_id:06d}.json"
        )
        try:
            write_manifest(target, manifest)
        except OSError as exc:
            # Manifests are a side channel; losing one degrades
            # observability, never the response.
            sys.stderr.write(
                f"warning: cannot write request manifest {target}: {exc}\n"
            )
            return
        self.app.stats.add("serve.manifests_written")

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Serve in a background thread (returns once accepting)."""
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-serve-accept",
        )
        self._thread.start()

    def drain(self) -> None:
        """Graceful shutdown: stop accepting, finish in-flight, close.

        Idempotent; safe to call from any thread except a request
        handler (a handler draining the server that is joining it
        would deadlock).
        """
        if self.draining:
            return
        self.draining = True
        self._server.shutdown()  # stop the accept loop
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        # server_close() joins every in-flight (non-daemon) handler
        # thread before closing the listening socket: responses first,
        # then teardown.
        self._server.server_close()
        self.app.worlds.close()  # reap worker pools
        self.app.close()  # flush + close the sighting store
        self._stop.set()

    def install_signal_handlers(self) -> None:
        """Route SIGINT/SIGTERM to a graceful drain from now on.

        Called *before* the readiness line is printed so there is no
        window where a supervisor that just read the line can signal
        the daemon and still hit the CLI's exit-with-status handlers
        instead of the drain path.
        """
        if self._previous_handlers is not None:
            return

        def on_signal(signum: int, frame: Any) -> None:
            self._received.append(signum)
            self._stop.set()

        self._previous_handlers = {
            signum: signal.signal(signum, on_signal)
            for signum in (signal.SIGINT, signal.SIGTERM)
        }

    def wait_for_signal(self) -> int:
        """Block until SIGINT/SIGTERM, then drain; returns exit status."""
        self.install_signal_handlers()
        previous = self._previous_handlers or {}
        try:
            self._stop.wait()
            self.drain()
        finally:
            self._previous_handlers = None
            for signum, handler in previous.items():
                signal.signal(signum, handler)
        if self.verbose and self._received:
            sys.stderr.write(
                f"[serve] {signal.Signals(self._received[0]).name}: "
                "drained and closed cleanly\n"
            )
        return 0

    def close(self) -> None:
        """Hard close for error paths (no accept loop running)."""
        try:
            self._server.server_close()
        except OSError:
            pass
        self.app.worlds.close()
        self.app.close()


def probe(address: str, timeout: float = 1.0) -> bool:
    """True when a serve daemon is accepting at ``host:port``."""
    split = urlsplit(address if "//" in address else f"//{address}")
    assert split.hostname is not None and split.port is not None
    try:
        with socket.create_connection(
            (split.hostname, split.port), timeout=timeout
        ):
            return True
    except OSError:
        return False


__all__ = ["ServeDaemon", "probe"]
