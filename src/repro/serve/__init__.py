"""``repro.serve`` -- the long-lived analysis query daemon.

``python -m repro serve`` turns the batch pipeline into a resident
service: worlds are built (or artifact-cache-loaded) on demand, keyed
by ``(config fingerprint, seed)``, kept warm in an LRU with their
worker pools alive, and queried concurrently over a local HTTP socket.
Identical in-flight requests coalesce through
:class:`~repro.serve.singleflight.SingleFlight`, so a cold-start storm
costs one build.  Every response is byte-identical to what the batch
CLI prints for the same parameters -- the daemon changes *when* things
are computed, never *what*.

Layering (each importable and testable without the one above):

* :mod:`repro.serve.singleflight` -- the coalescing primitive.
* :mod:`repro.serve.worlds` -- resident worlds, derived-answer caches.
* :mod:`repro.serve.app` -- request routing, transport-free.
* :mod:`repro.serve.server` -- HTTP transport, signals, manifests.
"""

from repro.serve.app import BadRequest, Response, ServeApp
from repro.serve.server import ServeDaemon, probe
from repro.serve.singleflight import SingleFlight
from repro.serve.worlds import ServeStats, WorldCache, WorldEntry

__all__ = [
    "BadRequest",
    "Response",
    "ServeApp",
    "ServeDaemon",
    "ServeStats",
    "SingleFlight",
    "WorldCache",
    "WorldEntry",
    "probe",
]
