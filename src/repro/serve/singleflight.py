"""Single-flight request coalescing.

The serve daemon's cold-start hazard: N clients ask for the same
expensive answer (a world build, a full render) at the same instant,
and a naive server computes it N times -- N× the latency, N× the RSS,
and N racing writers against the artifact cache.  :class:`SingleFlight`
collapses that storm into one computation: the first caller for a key
becomes the *leader* and runs the function; everyone else arriving
while it is in flight becomes a *waiter* and blocks until the leader
finishes, then shares its result (or its exception).

This is a coalescing primitive, not a cache: the key is forgotten the
moment the leader finishes, so a request arriving *after* completion
starts a fresh flight.  Durable reuse is the world cache's job --
single-flight only guarantees that identical concurrent work happens
once.

Determinism note: every computation routed through here is a pure
function of its key (worlds and renders are pure functions of
``(config fingerprint, seed, as-of-day)``), so sharing the leader's
result is observationally identical to recomputing it -- coalescing
changes wall-clock and build counts, never bytes.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Optional, Tuple


class _Flight:
    """One in-flight computation and its eventual outcome."""

    __slots__ = ("done", "value", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.value: Any = None
        self.error: Optional[BaseException] = None


class SingleFlight:
    """Coalesce concurrent calls with equal keys into one execution."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: Dict[Any, _Flight] = {}

    def do(self, key: Any, fn: Callable[[], Any]) -> Tuple[Any, bool]:
        """Run ``fn()`` once per concurrent burst of *key*.

        Returns ``(result, leader)`` where *leader* is True for the
        caller that actually executed *fn*.  A leader's exception is
        re-raised in every coalesced caller: the waiters asked the
        same question, so they get the same answer either way.
        """
        with self._lock:
            flight = self._flights.get(key)
            if flight is None:
                flight = _Flight()
                self._flights[key] = flight
                leader = True
            else:
                leader = False
        if leader:
            try:
                flight.value = fn()
            except BaseException as exc:
                flight.error = exc
                raise
            finally:
                # Forget the key before releasing the waiters so the
                # next arrival starts a fresh flight instead of
                # latching onto a finished one.
                with self._lock:
                    del self._flights[key]
                flight.done.set()
            return flight.value, True
        flight.done.wait()
        if flight.error is not None:
            raise flight.error
        return flight.value, False

    def in_flight(self) -> int:
        """Number of keys currently being computed (for stats only)."""
        with self._lock:
            return len(self._flights)


__all__ = ["SingleFlight"]
