"""World registry for the serve daemon: build once, answer many.

A *world* here is everything ``python -m repro run`` computes before
rendering: the simulated ecosystem plus the ten collected feed
datasets, identified by ``(config fingerprint, seed)`` -- the same
identity the artifact cache and the sighting store use.  The daemon
keeps recently used worlds resident in :class:`WorldEntry` objects so
repeated queries skip straight to (cached) rendering, and coalesces
concurrent cold-starts through one :class:`~repro.serve.singleflight
.SingleFlight` registry per cache.

Each entry owns its :class:`~repro.pipeline.PaperPipeline` *open*: the
persistent :class:`~repro.parallel.pool.WorkerPool` the pipeline forked
right after the world build stays alive across requests, so parallel
renders keep reusing the same copy-on-write workers until the entry is
evicted or the daemon shuts down.  As-of-day questions reuse one
forward-advancing :class:`~repro.stream.StreamEngine` per entry: asking
for day 20 after day 10 consumes only the ten-day suffix; asking for an
earlier day rewinds by replaying from the start (records are already in
RAM -- no rebuild).

Everything served from an entry is a pure function of its key (plus
the as-of day), which is what makes the concurrency safe to reason
about: locks and coalescing change who computes and when, never what
comes out.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.ecosystem import EcosystemConfig
from repro.io.artifacts import ArtifactCache, fingerprint
from repro.obs.metrics import MetricsRegistry, Number
from repro.pipeline import PaperPipeline
from repro.serve.singleflight import SingleFlight
from repro.store import SightingStore
from repro.store.sightings import run_key_for
from repro.stream.engine import StreamEngine


class ServeStats:
    """Thread-safe counters for the daemon (``/v1/stats`` feeds on it).

    A plain :class:`MetricsRegistry` behind one lock: request handler
    threads increment concurrently, and read-modify-write on a dict is
    not atomic, so the registry the tests assert single-flight behavior
    against must be guarded.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics = MetricsRegistry()

    def add(self, name: str, value: Number = 1) -> None:
        with self._lock:
            self._metrics.add(name, value)

    def set_gauge(self, name: str, value: Number) -> None:
        with self._lock:
            self._metrics.set_gauge(name, value)

    def counter(self, name: str) -> Number:
        with self._lock:
            return self._metrics.counter(name)

    def snapshot(self) -> Dict[str, Dict[str, Number]]:
        with self._lock:
            return self._metrics.snapshot()


class WorldEntry:
    """One resident world and its derived-answer caches."""

    def __init__(self, key: Tuple[str, int], pipeline: PaperPipeline):
        self.key = key
        self.pipeline = pipeline
        self.seed = pipeline.seed
        #: Rendered text per artifact name ("all", "table1", ...).
        self._renders: Dict[str, str] = {}
        #: Computed JSON payloads per endpoint-specific name.
        self._payloads: Dict[str, Any] = {}
        #: Rendered as-of-day tables per day index.
        self._snapshots: Dict[int, str] = {}
        #: The forward-advancing snapshot cursor and its guard.
        self._engine: Optional[StreamEngine] = None
        self._engine_day = -1
        self._engine_lock = threading.Lock()

    # -- rendering -----------------------------------------------------

    def render(self, name: str) -> str:
        """The named rendered artifact (memoized; caller coalesces)."""
        text = self._renders.get(name)
        if text is not None:
            return text
        if name == "all":
            text = self.pipeline.render_all()
        else:
            text = str(getattr(self.pipeline, f"render_{name}")())
        self._renders[name] = text
        return text

    def has_render(self, name: str) -> bool:
        return name in self._renders

    def has_payload(self, name: str) -> bool:
        return name in self._payloads

    def payload(self, name: str, compute: "Callable[[], Any]") -> Any:
        """The named JSON payload (memoized; caller coalesces)."""
        cached = self._payloads.get(name)
        if cached is None:
            cached = compute()
            self._payloads[name] = cached
        return cached

    # -- as-of-day snapshots -------------------------------------------

    def total_days(self) -> int:
        return int(self.pipeline.run().world.timeline.duration_days)

    def has_snapshot(self, day: int) -> bool:
        return day in self._snapshots

    def snapshot_text(self, day: int) -> str:
        """Tables as of the start of (zero-based) *day*, memoized.

        The engine advances monotonically; a request for an earlier day
        replays the in-RAM record stream from the start rather than
        rebuilding the world.  Serialized per entry: two coalesced
        days never interleave on one engine.
        """
        cached = self._snapshots.get(day)
        if cached is not None:
            return cached
        with self._engine_lock:
            cached = self._snapshots.get(day)
            if cached is not None:
                return cached
            if self._engine is None or day < self._engine_day:
                self._engine = self.pipeline.stream_engine()
                self._engine_day = -1
            self._engine.advance_to_day(day)
            self._engine_day = day
            snapshot = self._engine.snapshot()
            text = f"{snapshot.header()}\n\n{snapshot.render_tables()}"
            self._snapshots[day] = text
            return text

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Release the pipeline's worker pool.  Idempotent."""
        self.pipeline.close()


class WorldCache:
    """LRU registry of resident worlds with coalesced cold builds."""

    def __init__(
        self,
        stats: ServeStats,
        jobs: Optional[int] = None,
        shards: Optional[int] = None,
        cache: Optional[ArtifactCache] = None,
        store_path: Optional[str] = None,
        max_worlds: int = 4,
    ):
        if max_worlds < 1:
            raise ValueError("the daemon must keep at least one world")
        self.stats = stats
        self.jobs = jobs
        self.shards = shards
        self.cache = cache
        self.store_path = store_path
        self.max_worlds = max_worlds
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple[str, int], WorldEntry]" = (
            OrderedDict()
        )
        self._flights = SingleFlight()

    # -- lookup --------------------------------------------------------

    def entry(self, config: EcosystemConfig, seed: int) -> WorldEntry:
        """The resident entry for ``(config, seed)``, building on demand.

        Concurrent identical cold-starts coalesce: exactly one request
        thread builds (``serve.worlds_built`` counts it), everyone else
        blocks and shares the entry.  A completed entry is an LRU dict
        hit -- no flight, no lock beyond the bookkeeping.
        """
        key = (fingerprint(config), seed)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.add("serve.world_hits")
                return entry

        def build() -> WorldEntry:
            # Leadership can be won *after* a previous flight already
            # published (dict-miss then flight-miss race); re-check
            # before paying for a rebuild.
            with self._lock:
                existing = self._entries.get(key)
                if existing is not None:
                    self._entries.move_to_end(key)
                    self.stats.add("serve.world_hits")
                    return existing
            # Publish into the LRU *inside* the flight, before the key
            # is forgotten: a request that missed the dict but arrives
            # after the flight completes must find the entry resident,
            # not start a second build.
            built = self._build(key, config, seed)
            evicted: List[WorldEntry] = []
            with self._lock:
                self._entries[key] = built
                self._entries.move_to_end(key)
                while len(self._entries) > self.max_worlds:
                    _, old = self._entries.popitem(last=False)
                    evicted.append(old)
            for old in evicted:
                old.close()
                self.stats.add("serve.worlds_evicted")
            return built

        entry, leader = self._flights.do(("world",) + key, build)
        if not leader:
            self.stats.add("serve.coalesced_builds")
        return entry

    def _build(
        self, key: Tuple[str, int], config: EcosystemConfig, seed: int
    ) -> WorldEntry:
        """Leader-only: build (or cache-load) the world and land it."""
        store = None
        if self.store_path is not None:
            # A fresh thread-bound connection per build: SQLite
            # connections must stay on their creating thread, and the
            # leader runs on a request thread, so the daemon-level
            # read connection cannot be borrowed here.
            store = SightingStore.open(self.store_path)
        try:
            pipeline = PaperPipeline(
                config,
                seed=seed,
                jobs=self.jobs,
                cache=self.cache,
                store=store,
                shards=self.shards,
            )
            try:
                pipeline.run()
            except BaseException:
                pipeline.close()
                raise
        finally:
            if store is not None:
                store.close()
        self.stats.add("serve.worlds_built")
        return WorldEntry(key, pipeline)

    def run_key(self, config: EcosystemConfig, seed: int) -> str:
        """The sighting-store run key a build of this world lands under."""
        return run_key_for(fingerprint(config), seed)

    # -- coalesced derived answers -------------------------------------

    def render(self, entry: WorldEntry, name: str) -> str:
        """Coalesced memoized render of one artifact for *entry*."""
        if entry.has_render(name):
            self.stats.add("serve.render_hits")
            return entry.render(name)

        def compute() -> str:
            return entry.render(name)

        text, leader = self._flights.do(
            ("render", entry.key, name), compute
        )
        self.stats.add(
            "serve.renders_built" if leader else "serve.coalesced_renders"
        )
        return str(text)

    def payload(
        self, entry: WorldEntry, name: str, compute: Callable[[], Any]
    ) -> Any:
        """Coalesced memoized JSON payload for *entry*.

        The JSON endpoints (feeds, recommend) walk the comparison
        analyses, which are far from free -- without this they would
        recompute per request while their text twins ride the render
        cache.
        """
        if entry.has_payload(name):
            self.stats.add("serve.payload_hits")
            return entry.payload(name, compute)

        def build() -> Any:
            return entry.payload(name, compute)

        value, leader = self._flights.do(
            ("payload", entry.key, name), build
        )
        self.stats.add(
            "serve.payloads_built" if leader else "serve.coalesced_payloads"
        )
        return value

    def snapshot(self, entry: WorldEntry, day: int) -> str:
        """Coalesced memoized as-of-day tables for *entry*."""
        if entry.has_snapshot(day):
            self.stats.add("serve.snapshot_hits")
            return entry.snapshot_text(day)

        def compute() -> str:
            return entry.snapshot_text(day)

        text, leader = self._flights.do(
            ("snapshot", entry.key, day), compute
        )
        self.stats.add(
            "serve.snapshots_built" if leader else "serve.coalesced_snapshots"
        )
        return str(text)

    # -- introspection / lifecycle -------------------------------------

    def resident(self) -> List[Dict[str, Any]]:
        """JSON-friendly description of the resident worlds (stats)."""
        with self._lock:
            entries = list(self._entries.values())
        return [
            {
                "config_fingerprint": entry.key[0],
                "seed": entry.key[1],
                "pool_workers": entry.pipeline.pool_width,
            }
            for entry in entries
        ]

    def close(self) -> None:
        """Close every resident pipeline (drains worker pools)."""
        with self._lock:
            entries = list(self._entries.values())
            self._entries.clear()
        for entry in entries:
            entry.close()


__all__ = ["ServeStats", "WorldCache", "WorldEntry"]
