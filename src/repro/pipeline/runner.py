"""The paper pipeline: one object, every table and figure."""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.analysis import (
    FeedComparison,
    coverage_table,
    exclusive_scatter,
    first_appearance_latencies,
    duration_errors,
    kendall_matrix,
    last_appearance_gaps,
    pairwise_overlap,
    program_coverage_matrix,
    affiliate_coverage_matrix,
    purity_table,
    revenue_coverage,
    variation_distance_matrix,
    volume_coverage,
)
from repro.analysis.coverage import CoverageRow, OverlapMatrix, ScatterPoint
from repro.analysis.purity import PurityRow
from repro.analysis.timing import BoxStats
from repro.analysis.volume import VolumeCoverageRow
from repro.analysis.affiliates import RevenueCoverageRow
from repro.ecosystem import EcosystemConfig, build_world, paper_config
from repro.ecosystem.world import World
from repro.feeds import (
    FeedCollector,
    FeedDataset,
    PAPER_FEED_ORDER,
    clear_pool_state,
    collect_all,
    land_dataset,
    pool_world,
    set_pool_state,
    standard_feed_suite,
)
from repro.feeds.base import ColumnarFeedDataset, PackedColumns
from repro.io.artifacts import ArtifactCache, artifact_key, fingerprint
from repro.store.sightings import RunWriter, SightingStore, run_key_for
from repro.parallel import (
    PoolClosed,
    WorkerCrashed,
    WorkerPool,
    fork_available,
    ordered_fanout,
    resolve_jobs,
)
from repro.reporting.charts import (
    render_bars,
    render_box_stats,
    render_scatter,
    render_stacked_bars,
)
from repro.reporting.matrix import render_overlap_matrix, render_value_matrix
from repro.reporting.paper_tables import (
    render_table1,
    render_table2,
    render_table3,
    table1_data,
)
from repro.simtime import MINUTES_PER_DAY, MINUTES_PER_HOUR

#: Feeds measured in Figure 9 (all except Bot, whose domains barely
#: overlap the others).
FIG9_FEEDS = ("Hyb", "Ac2", "Ac1", "mx3", "mx2", "mx1", "uribl", "dbl", "Hu")

#: The live-mail (honeypot) feeds used for Figures 10-12.
HONEYPOT_FEEDS = ("Ac2", "Ac1", "mx3", "mx2", "mx1")


@dataclasses.dataclass
class PipelineResult:
    """Everything a pipeline run produces."""

    world: World
    datasets: Dict[str, FeedDataset]
    comparison: FeedComparison


#: Per-worker render pipeline, installed by a pool broadcast after the
#: feeds are collected.  Worker-local by construction: the broadcast
#: runs inside each forked worker, so this global never changes in the
#: parent process.
_RENDER_PIPELINE: Optional["PaperPipeline"] = None


def _pool_install_render_state(
    payload: "Tuple[List[PackedColumns], int, List[str]]",
) -> bool:
    """Pool broadcast handler: build this worker's render pipeline.

    The world is inherited copy-on-write (it existed when the pool
    forked); only the collected columns -- which did not -- are shipped,
    as packed blobs.  Each worker assembles its own comparison and warms
    the shared crawl so the subsequent render tasks find everything
    cached.  Rendering is a pure function of ``(world, datasets, seed)``,
    so worker-built state yields byte-identical text.
    """
    global _RENDER_PIPELINE
    packed, seed, feed_order = payload
    world = pool_world()
    datasets: Dict[str, FeedDataset] = {
        p.name: ColumnarFeedDataset.from_packed(p) for p in packed
    }
    comparison = FeedComparison(world, datasets, seed=seed)
    pipeline = PaperPipeline(seed=seed, feed_order=feed_order)
    pipeline._result = PipelineResult(world, datasets, comparison)
    comparison.crawl_results()
    _RENDER_PIPELINE = pipeline  # reprolint: disable=REP009 -- post-fork, worker-local install
    return True


def _pool_render_task(name: str) -> str:
    """Pool task: run one named renderer on the installed pipeline."""
    if _RENDER_PIPELINE is None:
        raise RuntimeError(
            "render state was not installed in this pool worker"
        )
    render = getattr(_RENDER_PIPELINE, name)
    return str(render())


class PaperPipeline:
    """Builds the world once and serves every paper artifact from it."""

    def __init__(
        self,
        config: Optional[EcosystemConfig] = None,
        seed: int = 2012,
        collectors: Optional[Sequence[FeedCollector]] = None,
        feed_order: Sequence[str] = PAPER_FEED_ORDER,
        jobs: Optional[int] = None,
        cache: Optional[ArtifactCache] = None,
        store: Optional[SightingStore] = None,
        shards: Optional[int] = None,
    ):
        self.config = config or paper_config()
        self.seed = seed
        self._collectors = list(collectors) if collectors else None
        self.feed_order = list(feed_order)
        #: Worker count for collection and rendering fan-outs.  Pure
        #: execution width: every artifact is byte-identical at any
        #: value (None/1 = serial, 0 = all cores).
        self.jobs = jobs
        #: Shard count for the world build.  Like ``jobs``, pure
        #: execution width: ``shards=1`` (or None) builds serially and
        #: any other value produces a byte-identical world in parallel
        #: shard workers.  Not part of any cache key for that reason.
        self.shards = shards
        #: Optional content-addressed artifact cache.  Only runs with
        #: the standard feed suite are cached -- custom collector lists
        #: are not part of the cache key.
        self.cache = cache
        #: Optional sighting store.  Every collected record lands in it
        #: under a run key derived from (config fingerprint, seed) --
        #: like the cache key, a custom collector list is not part of
        #: the key.  The store is an output only: analyses never read
        #: it, so results are byte-identical with or without one.
        self.store = store
        self._result: Optional[PipelineResult] = None
        #: The persistent worker pool, forked once per run immediately
        #: after the world is built (cold runs with ``jobs`` > 1 only).
        #: It stays alive across collect and render so both stages
        #: share one fork bill; :meth:`close` releases it.
        self._pool: Optional[WorkerPool] = None
        self._render_installed = False

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _cache_key(self, kind: str) -> Optional[str]:
        """The content address for this run's *kind* artifact.

        None when caching does not apply: no cache configured, or a
        custom collector suite whose behavior the config fingerprint
        cannot capture.
        """
        if self.cache is None or self._collectors is not None:
            return None
        return artifact_key(kind, fingerprint(self.config), self.seed)

    def _load_cached_state(self) -> Optional[PipelineResult]:
        key = self._cache_key("pipeline-state")
        if key is None:
            return None
        payload = self.cache.load(key) if self.cache else None
        if not isinstance(payload, dict):
            return None
        world = payload.get("world")
        columns = payload.get("columns")
        if not isinstance(world, World) or not isinstance(columns, list):
            return None
        if not all(isinstance(c, PackedColumns) for c in columns):
            return None
        try:
            datasets: Dict[str, FeedDataset] = {
                packed.name: ColumnarFeedDataset.from_packed(packed)
                for packed in columns
            }
        except ValueError:
            return None  # blob does not round-trip: treat as a miss
        comparison = FeedComparison(world, datasets, seed=self.seed)
        return PipelineResult(world, datasets, comparison)

    def _store_state(self, result: PipelineResult) -> None:
        key = self._cache_key("pipeline-state")
        if key is None or self.cache is None:
            return
        self.cache.store(
            key,
            {
                "world": result.world,
                "columns": [
                    result.datasets[name].packed()
                    for name in result.datasets
                ],
            },
        )

    def run(self) -> PipelineResult:
        """Build world, collect feeds, assemble the comparison (cached).

        With an artifact cache attached, a warm run deserializes the
        world and the columnar datasets instead of rebuilding them; the
        resulting comparison is identical either way because both the
        world build and every collector are pure functions of
        ``(config, seed)``.
        """
        if self._result is not None:
            return self._result
        try:
            return self._run_cold()
        except BaseException:
            # An interrupt (or any crash) between the pool fork and the
            # end of collection must not orphan the workers: reap them
            # on the way out so Ctrl-C leaves no children behind.
            self.close()
            raise

    def _run_cold(self) -> PipelineResult:
        with obs.span("pipeline.run", seed=self.seed):
            writer = self._open_store_run()
            with obs.span("cache.load-state"):
                self._result = self._load_cached_state()
            if self._result is None:
                with obs.span("world.build", shards=self.shards or 1):
                    if self.shards is not None and self.shards > 1:
                        from repro.ecosystem.shard import build_world_sharded

                        world = build_world_sharded(
                            self.config,
                            seed=self.seed,
                            shards=self.shards,
                            jobs=self.jobs,
                        )
                    else:
                        world = build_world(self.config, seed=self.seed)
                collectors = (
                    self._collectors or standard_feed_suite(self.seed)
                )
                self._fork_pool(world, collectors)
                with obs.span("feeds.collect", feeds=len(collectors)):
                    datasets = collect_all(
                        world,
                        collectors,
                        jobs=self.jobs,
                        writer=writer,
                        pool=self._pool,
                    )
                with obs.span("comparison.assemble"):
                    comparison = FeedComparison(
                        world, datasets, seed=self.seed
                    )
                self._result = PipelineResult(world, datasets, comparison)
                with obs.span("cache.store-state"):
                    self._store_state(self._result)
            elif writer is not None:
                # Cache hit: the datasets never passed through
                # collect_all, so land them here.  Idempotent landing
                # makes this a no-op when a previous run of the same
                # (config, seed) already landed into this store.
                with obs.span("store.land"):
                    for name in self._result.datasets:
                        land_dataset(writer, self._result.datasets[name])
            if writer is not None:
                writer.finish()
        return self._result

    def _fork_pool(
        self, world: World, collectors: List[FeedCollector]
    ) -> None:
        """Fork the persistent worker pool (cold parallel runs only).

        Placement is the tentpole: the fork happens *after* the world
        is built -- and after its shared placement index is pre-warmed
        -- so every worker inherits all of it copy-on-write, and
        *before* collection, so collect and render both reuse the same
        workers.  Serial runs, platforms without fork, and cache hits
        (where only the render fan-out remains and the legacy per-stage
        pool is already optimal) skip the pool entirely.
        """
        width = resolve_jobs(self.jobs)
        if width < 2 or not fork_available():
            return
        with obs.span("pool.fork", width=width):
            world.placements_by_domain()
            set_pool_state(world, list(collectors))
            try:
                self._pool = WorkerPool(width)
            except WorkerCrashed:
                clear_pool_state()  # degrade to the per-stage fan-out

    @property
    def pool_width(self) -> int:
        """Live workers in the persistent pool (0 = serial or degraded)."""
        if self._pool is None or self._pool.closed:
            return 0
        return self._pool.width

    def close(self) -> None:
        """Release the worker pool and its pre-fork state.  Idempotent."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None
            self._render_installed = False
            clear_pool_state()

    def __enter__(self) -> "PaperPipeline":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        self.close()

    def _open_store_run(self) -> Optional[RunWriter]:
        if self.store is None:
            return None
        config_fingerprint = fingerprint(self.config)
        return self.store.open_run(
            run_key_for(config_fingerprint, self.seed),
            self.seed,
            config_fingerprint,
            "run",
        )

    @property
    def comparison(self) -> FeedComparison:
        """The (lazily built) analysis context."""
        return self.run().comparison

    def stream_engine(self, batch_size: Optional[int] = None):
        """A fresh :class:`~repro.stream.StreamEngine` over this run's data.

        The engine replays the already-collected records incrementally;
        draining it and snapshotting reproduces this pipeline's
        Table 1/2/3 byte-for-byte.
        """
        from repro.stream.engine import StreamEngine
        from repro.stream.merge import DEFAULT_BATCH_SIZE

        result = self.run()
        return StreamEngine(
            result.world,
            result.datasets,
            seed=self.seed,
            feed_order=self.feed_order,
            batch_size=batch_size or DEFAULT_BATCH_SIZE,
        )

    def _present_feeds(self, wanted: Sequence[str]) -> List[str]:
        present = set(self.run().datasets)
        return [name for name in wanted if name in present]

    # ------------------------------------------------------------------
    # Table 1
    # ------------------------------------------------------------------

    def table1(self) -> Dict[str, Dict[str, int]]:
        """Feed summary: total samples and unique registered domains."""
        result = self.run()
        return table1_data(
            result.datasets, self._present_feeds(self.feed_order)
        )

    def render_table1(self) -> str:
        """Table 1 in the paper's layout."""
        result = self.run()
        return render_table1(
            result.datasets, self._present_feeds(self.feed_order)
        )

    # ------------------------------------------------------------------
    # Table 2
    # ------------------------------------------------------------------

    def table2(self) -> List[PurityRow]:
        """Purity indicators per feed."""
        return purity_table(
            self.comparison, self._present_feeds(self.feed_order)
        )

    def render_table2(self) -> str:
        """Table 2 in the paper's layout."""
        return render_table2(self.table2())

    # ------------------------------------------------------------------
    # Table 3
    # ------------------------------------------------------------------

    def table3(self) -> List[CoverageRow]:
        """Total/exclusive domain counts per feed."""
        return coverage_table(
            self.comparison, self._present_feeds(self.feed_order)
        )

    def render_table3(self) -> str:
        """Table 3 in the paper's layout."""
        return render_table3(self.table3())

    # ------------------------------------------------------------------
    # Figures
    # ------------------------------------------------------------------

    def figure1(self, kind: str = "live") -> List[ScatterPoint]:
        """Distinct vs. exclusive scatter data."""
        return exclusive_scatter(
            self.comparison, kind, self._present_feeds(self.feed_order)
        )

    def render_figure1(self) -> str:
        """Both Figure 1 panels as scatter tables."""
        left = render_scatter(
            self.figure1("live"), title="Figure 1 (left): live domains"
        )
        right = render_scatter(
            self.figure1("tagged"), title="Figure 1 (right): tagged domains"
        )
        return f"{left}\n\n{right}"

    def figure2(self, kind: str = "live") -> OverlapMatrix:
        """Pairwise feed intersection matrix."""
        return pairwise_overlap(
            self.comparison, kind, self._present_feeds(self.feed_order)
        )

    def render_figure2(self) -> str:
        """Both Figure 2 matrices."""
        left = render_overlap_matrix(
            self.figure2("live"),
            title="Figure 2 (left): pairwise intersection, live domains",
        )
        right = render_overlap_matrix(
            self.figure2("tagged"),
            title="Figure 2 (right): pairwise intersection, tagged domains",
        )
        return f"{left}\n\n{right}"

    def figure3(self, kind: str = "live") -> List[VolumeCoverageRow]:
        """Volume coverage rows."""
        return volume_coverage(
            self.comparison, kind, self._present_feeds(self.feed_order)
        )

    def render_figure3(self) -> str:
        """Both Figure 3 panels as stacked bars."""
        parts = []
        for kind, label in (("live", "live"), ("tagged", "tagged")):
            rows = self.figure3(kind)
            parts.append(
                render_stacked_bars(
                    [
                        (r.feed, r.covered_fraction, r.benign_fraction)
                        for r in rows
                    ],
                    title=(
                        f"Figure 3 ({label}): spam volume coverage "
                        "(# covered, : Alexa/ODP)"
                    ),
                )
            )
        return "\n\n".join(parts)

    def figure4(self) -> OverlapMatrix:
        """Affiliate-program coverage matrix."""
        return program_coverage_matrix(
            self.comparison, self._present_feeds(self.feed_order)
        )

    def render_figure4(self) -> str:
        """Figure 4 matrix."""
        return render_overlap_matrix(
            self.figure4(),
            title="Figure 4: pairwise affiliate-program coverage",
        )

    def figure5(self) -> OverlapMatrix:
        """RX-Promotion affiliate-id coverage matrix."""
        return affiliate_coverage_matrix(
            self.comparison, self._present_feeds(self.feed_order)
        )

    def render_figure5(self) -> str:
        """Figure 5 matrix."""
        return render_overlap_matrix(
            self.figure5(),
            title="Figure 5: pairwise RX-Promotion affiliate coverage",
        )

    def figure6(self) -> List[RevenueCoverageRow]:
        """Revenue-weighted affiliate coverage."""
        return revenue_coverage(
            self.comparison, self._present_feeds(self.feed_order)
        )

    def render_figure6(self) -> str:
        """Figure 6 bars (millions of USD)."""
        rows = self.figure6()
        return render_bars(
            [(r.feed, r.covered_revenue / 1e6) for r in rows],
            unit="M USD",
            title=(
                "Figure 6: RX-Promotion affiliate coverage weighted by "
                "2010 revenue"
            ),
        )

    def _volume_feeds(self) -> List[str]:
        order = self._present_feeds(self.feed_order)
        volume = set(self.comparison.volume_feed_names)
        return [n for n in order if n in volume]

    def figure7(self) -> Dict[str, Dict[str, float]]:
        """Pairwise variation distance (volume feeds + Mail)."""
        return variation_distance_matrix(
            self.comparison, self._volume_feeds()
        )

    def render_figure7(self) -> str:
        """Figure 7 matrix."""
        matrix = self.figure7()
        return render_value_matrix(
            matrix,
            title=(
                "Figure 7: pairwise variational distance of tagged "
                "domain frequency"
            ),
        )

    def figure8(self) -> Dict[str, Dict[str, float]]:
        """Pairwise Kendall tau-b (volume feeds + Mail)."""
        return kendall_matrix(self.comparison, self._volume_feeds())

    def render_figure8(self) -> str:
        """Figure 8 matrix."""
        return render_value_matrix(
            self.figure8(),
            title=(
                "Figure 8: pairwise Kendall rank correlation of tagged "
                "domain frequency"
            ),
        )

    def figure9(self) -> Dict[str, BoxStats]:
        """Relative first-appearance times, all feeds except Bot."""
        feeds = self._present_feeds(FIG9_FEEDS)
        return first_appearance_latencies(
            self.comparison, feeds, reference_feeds=feeds
        )

    def render_figure9(self) -> str:
        """Figure 9 box summaries (days)."""
        return render_box_stats(
            self.figure9(),
            order=self._present_feeds(FIG9_FEEDS),
            divisor=MINUTES_PER_DAY,
            unit="days",
            title=(
                "Figure 9: relative first appearance time "
                "(campaign start from all feeds except Bot)"
            ),
        )

    def figure10(self) -> Dict[str, BoxStats]:
        """First-appearance times relative to honeypot feeds only."""
        feeds = self._present_feeds(HONEYPOT_FEEDS)
        return first_appearance_latencies(self.comparison, feeds)

    def render_figure10(self) -> str:
        """Figure 10 box summaries (hours)."""
        return render_box_stats(
            self.figure10(),
            order=self._present_feeds(HONEYPOT_FEEDS),
            divisor=MINUTES_PER_HOUR,
            unit="hours",
            title=(
                "Figure 10: relative first appearance time "
                "(campaign start from MX/honey-account feeds only)"
            ),
        )

    def figure11(self) -> Dict[str, BoxStats]:
        """Last-appearance gap vs. aggregate campaign end."""
        feeds = self._present_feeds(HONEYPOT_FEEDS)
        return last_appearance_gaps(self.comparison, feeds)

    def render_figure11(self) -> str:
        """Figure 11 box summaries (hours)."""
        return render_box_stats(
            self.figure11(),
            order=self._present_feeds(HONEYPOT_FEEDS),
            divisor=MINUTES_PER_HOUR,
            unit="hours",
            title="Figure 11: last appearance vs. campaign end",
        )

    def figure12(self) -> Dict[str, BoxStats]:
        """Duration-estimate error vs. aggregate campaign duration."""
        feeds = self._present_feeds(HONEYPOT_FEEDS)
        return duration_errors(self.comparison, feeds)

    def render_figure12(self) -> str:
        """Figure 12 box summaries (hours)."""
        return render_box_stats(
            self.figure12(),
            order=self._present_feeds(HONEYPOT_FEEDS),
            divisor=MINUTES_PER_HOUR,
            unit="hours",
            title="Figure 12: domain lifetime vs. campaign duration",
        )

    # ------------------------------------------------------------------
    # Everything at once
    # ------------------------------------------------------------------

    def render_all(self, jobs: Optional[int] = None) -> str:
        """Every table and figure, separated by blank lines.

        The fifteen renderers are independent given a warmed
        comparison, so with ``jobs`` > 1 they fan out across a worker
        pool and come back joined in the fixed paper order -- the text
        is byte-identical at any worker count.  When this run forked a
        persistent pool, the renderers reuse its workers (one broadcast
        installs the collected columns; the world was inherited at fork
        time) instead of paying a second fork.  A warm render cache
        short-circuits the whole computation.
        """
        with obs.span("render.all"):
            with obs.span("cache.load-render"):
                cache_key = self._cache_key("render-all")
                if cache_key is not None and self.cache is not None:
                    cached = self.cache.load(cache_key)
                    if isinstance(cached, str):
                        return cached

            renderers = [
                self.render_table1,
                self.render_table2,
                self.render_table3,
                self.render_figure1,
                self.render_figure2,
                self.render_figure3,
                self.render_figure4,
                self.render_figure5,
                self.render_figure6,
                self.render_figure7,
                self.render_figure8,
                self.render_figure9,
                self.render_figure10,
                self.render_figure11,
                self.render_figure12,
            ]
            labels = [
                "render." + fn.__name__[len("render_"):]
                for fn in renderers
            ]
            width = resolve_jobs(self.jobs if jobs is None else jobs)
            parts: Optional[List[str]] = None
            if width > 1 and self._pool is not None and not self._pool.closed:
                result = self.run()
                try:
                    if not self._render_installed:
                        # One broadcast ships the packed columns into
                        # every worker; the workers warm their own
                        # comparison there, so the parent never pays
                        # the crawl.
                        packed = [
                            result.datasets[name].packed()
                            for name in result.datasets
                        ]
                        self._pool.broadcast(
                            _pool_install_render_state,
                            (packed, self.seed, list(self.feed_order)),
                        )
                        self._render_installed = True
                    parts = self._pool.run_batch(
                        _pool_render_task,
                        [fn.__name__ for fn in renderers],
                        labels=labels,
                    )
                except (PoolClosed, WorkerCrashed):
                    # A reaped or crashed pool degrades to the serial /
                    # per-stage path below; renders are pure, so the
                    # text is identical either way.
                    self.close()
                    parts = None
            if parts is None:
                if width > 1:
                    # Warm the shared expensive analyses before the pool
                    # forks so every worker inherits them copy-on-write
                    # instead of recomputing the crawl per renderer.
                    with obs.span("comparison.warm"):
                        self.run()
                        self.comparison.crawl_results()
                parts = ordered_fanout(renderers, jobs=width, labels=labels)
            text = "\n\n".join(parts)
            with obs.span("cache.store-render"):
                if cache_key is not None and self.cache is not None:
                    self.cache.store(cache_key, text)
            return text
