"""End-to-end experiment pipeline.

:class:`PaperPipeline` wires the whole reproduction together: build the
world, collect the ten feeds, construct the oracles, and expose one
method per paper artifact (``table1()`` ... ``figure12()``), each
returning structured data plus a ``render_*`` companion producing the
paper-shaped text.
"""

from repro.pipeline.runner import PaperPipeline, PipelineResult

__all__ = ["PaperPipeline", "PipelineResult"]
