"""Module and call graphs composed from per-file summaries.

Phase 2 of the interprocedural engine: given every
:class:`~repro.devtools.summaries.FileSummary` of a lint run, build

* a **module graph** -- dotted module names, import-alias resolution,
  and re-export following (``from pkg.sub import f`` inside
  ``pkg/__init__.py`` makes ``pkg.f`` an alias of ``pkg.sub.f``), and
* a **call graph** -- a resolver from each recorded
  :class:`~repro.devtools.summaries.CallRef` to concrete function
  nodes, plus breadth-first reachability from fan-out task roots.

Resolution is deliberately best-effort (a linter, not an interpreter):

* plain names resolve through local defs, then imports (re-exports
  followed with a cycle guard);
* ``self.m(...)`` resolves within the enclosing class (no inheritance
  walk);
* ``a.b.f(...)`` resolves through the longest imported-module prefix;
* any other ``obj.m(...)`` falls back to *every* analyzed class method
  named ``m`` (dynamic dispatch over-approximated by name).

Unresolvable calls contribute no edges.  Cycles -- import cycles and
recursive call chains alike -- are handled by ordinary visited-set
traversal; they can never loop the analysis.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.devtools.summaries import (
    CallRef,
    FileSummary,
    FunctionSummary,
    TaskRef,
)

#: A function node: (module name, qualified name within the module).
FuncId = Tuple[str, str]


def module_name_for(path: str, relpkg: Optional[str]) -> str:
    """Dotted module name for a summarized file.

    Files inside the ``repro`` package get their real dotted name
    (``repro.feeds.suite``); outside files (fixtures, scripts) get
    their stem, so single-file lint targets still form a one-node
    graph.
    """
    if relpkg is not None:
        parts = relpkg.replace("\\", "/").split("/")
        if parts[-1] == "__init__.py":
            parts = parts[:-1]
        else:
            parts[-1] = parts[-1][: -len(".py")]
        return ".".join(["repro"] + parts)
    stem = os.path.basename(path)
    if stem.endswith(".py"):
        stem = stem[: -len(".py")]
    return stem


class ProjectGraph:
    """Joint module/call graph over one lint run's summaries."""

    def __init__(self, summaries: Sequence[FileSummary]) -> None:
        self.summaries = list(summaries)
        #: dotted module name -> file summary
        self.modules: Dict[str, FileSummary] = {}
        #: module -> path (for reporting)
        self.module_paths: Dict[str, str] = {}
        for summary in self.summaries:
            name = module_name_for(summary.path, summary.relpkg)
            self.modules[name] = summary
            self.module_paths[name] = summary.path

        #: (module, qualname) -> FunctionSummary
        self.functions: Dict[FuncId, FunctionSummary] = {}
        #: module -> {top-level function name -> qualname}
        self._top_level: Dict[str, Dict[str, str]] = {}
        #: module -> {class -> {method -> qualname}}
        self._methods: Dict[str, Dict[str, Dict[str, str]]] = {}
        #: method name -> every (module, qualname) defining it on a class
        self._method_index: Dict[str, List[FuncId]] = {}
        #: (module, class) -> union of self attrs assigned from derivations
        self._class_derived_attrs: Dict[Tuple[str, str], Set[str]] = {}

        for name, summary in self.modules.items():
            top: Dict[str, str] = {}
            methods: Dict[str, Dict[str, str]] = {}
            for fn in summary.functions:
                self.functions[(name, fn.qualname)] = fn
                if fn.qualname == fn.name and fn.name != "<module>":
                    top[fn.name] = fn.qualname
                if fn.cls and fn.qualname == f"{fn.cls}.{fn.name}":
                    methods.setdefault(fn.cls, {})[fn.name] = fn.qualname
                    self._method_index.setdefault(fn.name, []).append(
                        (name, fn.qualname)
                    )
                    if fn.derived_attrs:
                        self._class_derived_attrs.setdefault(
                            (name, fn.cls), set()
                        ).update(fn.derived_attrs)
            self._top_level[name] = top
            self._methods[name] = methods

        self._unordered_closure: Optional[Dict[FuncId, bool]] = None

    # -- basic lookups --------------------------------------------------

    def summary_of(self, func: FuncId) -> FunctionSummary:
        return self.functions[func]

    def path_of(self, func: FuncId) -> str:
        return self.module_paths[func[0]]

    def class_derived_attrs(self, module: str, cls: str) -> Set[str]:
        return self._class_derived_attrs.get((module, cls), set())

    def methods_named(self, name: str) -> List[FuncId]:
        """Every analyzed class method called *name* (dynamic fallback)."""
        return list(self._method_index.get(name, ()))

    # -- symbol resolution ----------------------------------------------

    def _import_map(self, module: str) -> Dict[str, Tuple[str, str]]:
        mapping: Dict[str, Tuple[str, str]] = {}
        summary = self.modules.get(module)
        if summary is None:
            return mapping
        for entry in summary.imports:
            mapping[entry.alias] = (entry.module, entry.symbol)
        return mapping

    def resolve_symbol(
        self, module: str, name: str, _seen: Optional[Set[Tuple[str, str]]] = None
    ) -> Optional[FuncId]:
        """Resolve *name* as used in *module* to a function node.

        Follows import chains (including re-exports through package
        ``__init__`` modules) with a visited set, so aliased import
        cycles terminate.  A class name resolves to its ``__init__``
        method when one is defined (calling a class runs it).
        """
        if _seen is None:
            _seen = set()
        if (module, name) in _seen:
            return None
        _seen.add((module, name))
        if module not in self.modules:
            return None
        top = self._top_level[module]
        if name in top:
            return (module, top[name])
        if name in self.modules[module].classes:
            init = self._methods[module].get(name, {}).get("__init__")
            if init is not None:
                return (module, init)
            return None
        imported = self._import_map(module).get(name)
        if imported is None:
            return None
        target_module, symbol = imported
        if symbol == "":
            return None  # a module alias, not a callable
        # ``from pkg import sub`` where pkg.sub is itself a module:
        # the alias names a module, not a symbol.
        if f"{target_module}.{symbol}" in self.modules:
            return None
        return self.resolve_symbol(target_module, symbol, _seen)

    # -- call resolution ------------------------------------------------

    def resolve_call(
        self,
        caller: FuncId,
        ref: CallRef,
        dynamic: bool = True,
    ) -> List[FuncId]:
        """Every function node *ref* may dispatch to from *caller*."""
        module, qualname = caller
        if ref.kind == "name":
            nested = (module, f"{qualname}.<locals>.{ref.name}")
            if nested in self.functions:
                return [nested]
            found = self.resolve_symbol(module, ref.name)
            return [found] if found is not None else []
        if ref.kind == "self":
            fn = self.functions.get(caller)
            if fn is not None and fn.cls:
                target = self._methods.get(module, {}).get(
                    fn.cls, {}
                ).get(ref.name)
                if target is not None:
                    return [(module, target)]
            return []
        if ref.kind == "attr":
            target_module = self._resolve_attr_module(module, ref.base)
            if target_module is not None:
                top = self._top_level.get(target_module, {})
                if ref.name in top:
                    return [(target_module, top[ref.name])]
                # Re-exported through the target package's __init__.
                found = self.resolve_symbol(target_module, ref.name)
                return [found] if found is not None else []
            if dynamic:
                return self.methods_named(ref.name)
            return []
        if ref.kind == "method" and dynamic:
            return self.methods_named(ref.name)
        return []

    def _resolve_attr_module(
        self, module: str, dotted: str
    ) -> Optional[str]:
        """The analyzed module named by a dotted call receiver."""
        parts = dotted.split(".")
        imported = self._import_map(module).get(parts[0])
        if imported is None:
            # Maybe the receiver already is a full module path.
            return dotted if dotted in self.modules else None
        target_module, symbol = imported
        if symbol == "":
            base_parts = [target_module] + parts[1:]
        else:
            base_parts = [target_module, symbol] + parts[1:]
        candidate = ".".join(base_parts)
        return candidate if candidate in self.modules else None

    # -- fan-out roots --------------------------------------------------

    def resolve_task(
        self, caller: FuncId, task: TaskRef
    ) -> Optional[FuncId]:
        """The function node one fan-out task expression names."""
        module, qualname = caller
        if task.kind == "lambda":
            node = (module, task.value)
            return node if node in self.functions else None
        if task.kind == "name":
            results = self.resolve_call(
                caller,
                CallRef(
                    kind="name", base="", name=task.value,
                    line=task.line, col=0,
                ),
                dynamic=False,
            )
            return results[0] if results else None
        if task.kind == "self-method":
            fn = self.functions.get(caller)
            if fn is not None and fn.cls:
                target = self._methods.get(module, {}).get(
                    fn.cls, {}
                ).get(task.value)
                if target is not None:
                    return (module, target)
            return None
        if task.kind == "attr":
            base, _, name = task.value.rpartition(".")
            results = self.resolve_call(
                caller,
                CallRef(
                    kind="attr", base=base, name=name,
                    line=task.line, col=0,
                ),
                dynamic=False,
            )
            return results[0] if results else None
        return None

    def fanout_boundaries(self) -> List[Tuple[FuncId, "FanoutBoundary"]]:
        """Every fan-out dispatch with its resolved task roots."""
        boundaries: List[Tuple[FuncId, FanoutBoundary]] = []
        for module in sorted(self.modules):
            summary = self.modules[module]
            for fn in summary.functions:
                caller = (module, fn.qualname)
                for site in fn.fanouts:
                    roots = []
                    for task in site.tasks:
                        resolved = self.resolve_task(caller, task)
                        if resolved is not None:
                            roots.append(resolved)
                    boundaries.append(
                        (
                            caller,
                            FanoutBoundary(
                                path=summary.path,
                                line=site.line,
                                caller=caller,
                                roots=tuple(dict.fromkeys(roots)),
                            ),
                        )
                    )
        return boundaries

    # -- reachability ---------------------------------------------------

    def reachable_from(
        self, roots: Iterable[FuncId], dynamic: bool = True
    ) -> Dict[FuncId, FuncId]:
        """BFS closure over call edges; maps each node to its root.

        The visited-set traversal makes recursive and mutually
        recursive call chains terminate; the returned mapping
        remembers which task root first reached each function (for
        finding messages).
        """
        queue: List[FuncId] = []
        origin: Dict[FuncId, FuncId] = {}
        for root in roots:
            if root in self.functions and root not in origin:
                origin[root] = root
                queue.append(root)
        while queue:
            node = queue.pop(0)
            fn = self.functions[node]
            refs = list(fn.calls) + list(fn.return_calls)
            for ref in refs:
                for target in self.resolve_call(node, ref, dynamic=dynamic):
                    if target not in origin and target in self.functions:
                        origin[target] = origin[node]
                        queue.append(target)
        return origin

    # -- returns-unordered fixpoint --------------------------------------

    def returns_unordered(self, func: FuncId) -> bool:
        """Does *func* (transitively) return an unordered collection?"""
        if self._unordered_closure is None:
            self._unordered_closure = self._compute_unordered_closure()
        return self._unordered_closure.get(func, False)

    def _compute_unordered_closure(self) -> Dict[FuncId, bool]:
        closure: Dict[FuncId, bool] = {
            func: fn.returns_unordered
            for func, fn in self.functions.items()
        }
        changed = True
        while changed:
            changed = False
            for func, fn in self.functions.items():
                if closure[func]:
                    continue
                for ref in fn.return_calls:
                    targets = self.resolve_call(func, ref, dynamic=False)
                    if any(closure.get(t, False) for t in targets):
                        closure[func] = True
                        changed = True
                        break
        return closure


class FanoutBoundary:
    """One ``ordered_fanout`` dispatch: where, and what it runs."""

    def __init__(
        self,
        path: str,
        line: int,
        caller: FuncId,
        roots: Tuple[FuncId, ...],
    ) -> None:
        self.path = path
        self.line = line
        self.caller = caller
        self.roots = roots

    @property
    def anchor(self) -> str:
        return f"{self.path}:{self.line}"

    def __repr__(self) -> str:
        return (
            f"FanoutBoundary({self.anchor}, caller={self.caller}, "
            f"roots={len(self.roots)})"
        )
