"""Rule metadata, per-rule configuration, and suppression pragmas.

Suppression uses source comments:

* ``# reprolint: disable=REP001`` on a line suppresses the named
  rule(s) for findings reported on that physical line.  Several rules
  may be listed, separated by commas.
* The same pragma on a comment-only line within the first five lines
  of a file suppresses the rule(s) for the whole file.
* ``# reprolint: disable`` (no rule list) suppresses every rule for
  the line (or file, in the header position).

Anything after ``--`` inside the pragma is a free-form justification
and is ignored by the parser:

    total = sum(counts.values())  # reprolint: disable=REP004 -- ints
"""

from __future__ import annotations

import dataclasses
import enum
import re
from typing import Dict, FrozenSet, Mapping, Optional, Set, Tuple


class Severity(enum.Enum):
    """How seriously a finding should be treated."""

    WARNING = "warning"
    ERROR = "error"


#: Packages (relative to ``src/repro``) whose code must never read the
#: wall clock: simulation components take time from the shared
#: simulation clock only.
SIMULATION_PACKAGES: Tuple[str, ...] = (
    "ecosystem",
    "feeds",
    "oracles",
    "analysis",
    "stream",
    "store",
)

#: Packages whose floating-point accumulations must be order-stable
#: (the batch and streaming paths must agree byte-for-byte).
ACCUMULATION_PACKAGES: Tuple[str, ...] = ("analysis", "stream")

#: The host-time quarantine (REP008): the only packages inside
#: ``src/repro`` allowed to read any host clock — wall or monotonic.
#: Everything else must route timing through ``repro.obs``.
OBS_PACKAGES: Tuple[str, ...] = ("obs",)


@dataclasses.dataclass(frozen=True)
class RuleInfo:
    """Static description of one reprolint rule."""

    code: str
    title: str
    rationale: str
    default_severity: Severity = Severity.ERROR


DEFAULT_RULES: Dict[str, RuleInfo] = {
    rule.code: rule
    for rule in (
        RuleInfo(
            "REP001",
            "no module-level random state",
            "Module-level random functions share one hidden global "
            "stream; any new draw anywhere perturbs every later draw. "
            "Derive a component stream with stats.rng.derive_rng "
            "instead.",
        ),
        RuleInfo(
            "REP002",
            "no builtin hash() for seeds or keys",
            "hash() is salted per process (PYTHONHASHSEED), so seeds "
            "and derived keys built from it differ between runs. Use "
            "stats.rng.derive_seed (SHA-256) instead.",
        ),
        RuleInfo(
            "REP003",
            "no wall clock in simulation code",
            "Simulation components must take time from the shared "
            "simulation clock (repro.simtime); reading the host clock "
            "makes results depend on when the run happened.",
        ),
        RuleInfo(
            "REP004",
            "sort before float accumulation",
            "Float addition is not associative; summing a set or dict "
            "view accumulates in container order, which differs "
            "between the batch and streaming paths. Wrap the iterable "
            "in sorted(...).",
        ),
        RuleInfo(
            "REP005",
            "no RNG draws while iterating an unordered collection",
            "Drawing from an RNG inside a loop over a set consumes the "
            "stream in container order, so equal-content sets built in "
            "different orders yield different results. Iterate "
            "sorted(...) instead.",
        ),
        RuleInfo(
            "REP006",
            "checkpoint schema changes need a version bump",
            "Checkpoint payload fields are pinned (version + "
            "fingerprint) in io/checkpoint.py; changing fields without "
            "bumping CHECKPOINT_VERSION lets old readers resume from "
            "incompatible files.",
        ),
        RuleInfo(
            "REP007",
            "parallel results must be reduced in task order",
            "Completion-order reduction (as_completed, imap_unordered) "
            "makes parallel results depend on OS scheduling, and "
            "host-derived worker counts (os.cpu_count) leak hardware "
            "into anything beyond execution width. Tag results with "
            "their task index and reduce in index order; a pragma "
            "records why a flagged site is width-only or "
            "index-ordered.",
        ),
        RuleInfo(
            "REP008",
            "no host-clock reads outside repro.obs",
            "Host-time reads (time.time, perf_counter, monotonic, "
            "datetime.now, ...) are quarantined in repro.obs so that "
            "every timing source feeding traces and run manifests is "
            "auditable in one place. Other repro packages must use "
            "obs.hosttime (Stopwatch, wall_now) instead of reading "
            "clocks directly.",
        ),
        RuleInfo(
            "REP009",
            "no shared-state writes reachable from a parallel task",
            "Functions dispatched through parallel.fanout.ordered_fanout "
            "run in forked workers: writes to globals, closed-over "
            "objects, or module-level caches land in a copy-on-write "
            "child and silently vanish -- or, under a future threaded "
            "executor, race. State must flow back through task return "
            "values; a pragma records why a flagged write is "
            "fork-safe (e.g. an idempotent process-local memo).",
        ),
        RuleInfo(
            "REP010",
            "no shared sequential RNG stream across a task boundary",
            "A draw inside fan-out work that consumes a module-level or "
            "closed-over RNG advances a stream whose position depends "
            "on task interleaving and worker count. Every task must "
            "draw from its own stats.rng.derive_rng keyed stream "
            "(the mail-oracle bug class).",
        ),
        RuleInfo(
            "REP011",
            "no float accumulation over unordered helper results",
            "sum() over the return value of a helper that (transitively) "
            "returns a set or dict view accumulates floats in container "
            "order even though the call site looks innocent. Sort the "
            "result before accumulating, or return a sorted sequence.",
        ),
        RuleInfo(
            "REP012",
            "store SQL must match the pinned schema",
            "SQL strings in repro.store must agree with the column "
            "tuples pinned by STORE_SCHEMA_PIN; unpinned drift lets a "
            "schema edit ship without a version bump, breaking stores "
            "written by earlier runs.",
        ),
    )
}

#: Pragma grammar: ``# reprolint: disable`` or
#: ``# reprolint: disable=REP001,REP002`` with an optional trailing
#: ``-- justification``.
_PRAGMA_RE = re.compile(
    r"#\s*reprolint:\s*disable"
    r"(?:\s*=\s*(?P<rules>REP\d{3}(?:\s*,\s*REP\d{3})*))?"
    r"(?:\s+--.*)?\s*$"
)

#: A file-level pragma must appear on a comment-only line within the
#: first this-many lines of the file.
FILE_PRAGMA_WINDOW = 5

#: Sentinel rule set meaning "every rule".
ALL_RULES: FrozenSet[str] = frozenset(DEFAULT_RULES)


def _parse_pragma(comment: str) -> Optional[FrozenSet[str]]:
    """Parse one pragma comment; None when it is not a pragma."""
    match = _PRAGMA_RE.search(comment)
    if match is None:
        return None
    rules = match.group("rules")
    if rules is None:
        return ALL_RULES
    return frozenset(part.strip() for part in rules.split(","))


@dataclasses.dataclass(frozen=True)
class SuppressionIndex:
    """Which rules are suppressed, per line and for the whole file."""

    by_line: Mapping[int, FrozenSet[str]]
    file_wide: FrozenSet[str]

    def is_suppressed(self, rule: str, line: int) -> bool:
        """True when *rule* is pragma-disabled at *line*."""
        if rule in self.file_wide:
            return True
        return rule in self.by_line.get(line, frozenset())


def scan_pragmas(source: str) -> SuppressionIndex:
    """Build the suppression index for one file's source text."""
    by_line: Dict[int, FrozenSet[str]] = {}
    file_wide: Set[str] = set()
    for lineno, text in enumerate(source.splitlines(), start=1):
        if "reprolint" not in text:
            continue
        rules = _parse_pragma(text)
        if rules is None:
            continue
        by_line[lineno] = rules
        comment_only = text.lstrip().startswith("#")
        if comment_only and lineno <= FILE_PRAGMA_WINDOW:
            file_wide |= rules
    return SuppressionIndex(by_line=by_line, file_wide=frozenset(file_wide))


@dataclasses.dataclass(frozen=True)
class LintConfig:
    """Per-rule enablement and severity overrides."""

    disabled: FrozenSet[str] = frozenset()
    severities: Mapping[str, Severity] = dataclasses.field(
        default_factory=dict
    )

    def enabled_rules(self) -> Tuple[str, ...]:
        """Codes of the rules this configuration runs, sorted."""
        return tuple(
            code for code in sorted(DEFAULT_RULES) if code not in self.disabled
        )

    def severity_of(self, rule: str) -> Severity:
        """Effective severity for *rule*."""
        override = self.severities.get(rule)
        if override is not None:
            return override
        return DEFAULT_RULES[rule].default_severity

    @classmethod
    def with_disabled(cls, codes: Tuple[str, ...]) -> "LintConfig":
        """A config with *codes* disabled (unknown codes rejected)."""
        unknown = sorted(set(codes) - set(DEFAULT_RULES))
        if unknown:
            raise ValueError(f"unknown rule codes: {', '.join(unknown)}")
        return cls(disabled=frozenset(codes))
