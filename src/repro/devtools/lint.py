"""The reprolint engine: walk files, run rules, collect findings.

Entry points:

* :func:`lint_source` -- one file's source text (REP001..REP005, REP007, REP008).
* :func:`lint_paths` -- files and/or directory trees, including the
  cross-file REP006 checkpoint-schema check.
"""

from __future__ import annotations

import ast
import dataclasses
import os
from typing import Dict, Iterator, List, Optional, Sequence

from repro.devtools.config import (
    DEFAULT_RULES,
    LintConfig,
    Severity,
    SuppressionIndex,
    scan_pragmas,
)
from repro.devtools.rules import (
    ModuleRuleVisitor,
    RawFinding,
    check_checkpoint_schema,
)


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to ``path:line``."""

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str

    @property
    def anchor(self) -> str:
        """The clickable ``path:line`` location string."""
        return f"{self.path}:{self.line}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly representation (stable field set)."""
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class LintError(ValueError):
    """Raised when an input file cannot be read or parsed."""


def _relative_package_path(path: str) -> Optional[str]:
    """Path of *path* below the ``repro`` package root, if any."""
    parts = os.path.abspath(path).replace("\\", "/").split("/")
    for index in range(len(parts) - 1, 0, -1):
        if parts[index - 1] == "repro":
            return "/".join(parts[index:])
    return None


def _finalize(
    raw: Sequence[RawFinding],
    path: str,
    suppressions: SuppressionIndex,
    config: LintConfig,
) -> List[Finding]:
    enabled = set(config.enabled_rules())
    findings = []
    for hit in raw:
        if hit.rule not in enabled:
            continue
        if suppressions.is_suppressed(hit.rule, hit.line):
            continue
        findings.append(
            Finding(
                rule=hit.rule,
                severity=config.severity_of(hit.rule),
                path=path,
                line=hit.line,
                col=hit.col,
                message=hit.message,
            )
        )
    return findings


def lint_source(
    path: str,
    source: str,
    config: Optional[LintConfig] = None,
) -> List[Finding]:
    """Run the single-file rules over *source* (reported as *path*)."""
    config = config or LintConfig()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise LintError(f"{path}: cannot parse: {exc}") from exc
    visitor = ModuleRuleVisitor(relpkg=_relative_package_path(path))
    visitor.visit(tree)
    return _finalize(visitor.findings, path, scan_pragmas(source), config)


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Yield every ``.py`` file under *paths*, sorted and deduplicated."""
    seen = set()
    collected: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                dirnames[:] = [
                    d for d in dirnames if d != "__pycache__"
                ]
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        collected.append(os.path.join(dirpath, filename))
        else:
            collected.append(path)
    for path in sorted(collected):
        if path not in seen:
            seen.add(path)
            yield path


def lint_paths(
    paths: Sequence[str],
    config: Optional[LintConfig] = None,
) -> List[Finding]:
    """Lint files and directory trees; includes the cross-file REP006.

    Findings come back sorted by ``(path, line, rule)``.
    """
    config = config or LintConfig()
    findings: List[Finding] = []
    trees: Dict[str, ast.Module] = {}
    sources: Dict[str, str] = {}
    for path in iter_python_files(paths):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            raise LintError(f"{path}: cannot read: {exc}") from exc
        sources[path] = source
        try:
            trees[path] = ast.parse(source, filename=path)
        except SyntaxError as exc:
            raise LintError(f"{path}: cannot parse: {exc}") from exc
        visitor = ModuleRuleVisitor(relpkg=_relative_package_path(path))
        visitor.visit(trees[path])
        findings.extend(
            _finalize(
                visitor.findings, path, scan_pragmas(source), config
            )
        )
    for path, raw in check_checkpoint_schema(trees).items():
        findings.extend(
            _finalize(raw, path, scan_pragmas(sources[path]), config)
        )
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def has_errors(findings: Sequence[Finding]) -> bool:
    """True when any finding carries ERROR severity."""
    return any(f.severity is Severity.ERROR for f in findings)


def rule_codes() -> List[str]:
    """All known rule codes, sorted."""
    return sorted(DEFAULT_RULES)
