"""The reprolint engine: walk files, run rules, collect findings.

v2 runs in three phases:

1. **Summarize** -- every file gets a single-file rule pass plus a
   :class:`~repro.devtools.summaries.FileSummary` (calls, writes, RNG
   draws, fan-out sites).  Summaries are pure functions of the file's
   bytes and the engine's own source, so they are cached
   content-addressed through :mod:`repro.io.artifacts` and only
   re-computed for files that changed.  Cache misses can be
   summarized in parallel through ``repro.parallel`` itself -- the
   linter self-hosts the fork machinery it audits.
2. **Graph** -- the summaries compose into a module/call graph
   (:mod:`repro.devtools.graph`).
3. **Interprocedural rules** -- REP009-REP012 run over the graph
   (:mod:`repro.devtools.rules_interproc`), REP006 over the parsed
   checkpoint-relevant modules.

Findings are merged, pragma-suppressed, and sorted by
``(path, line, rule)``, so output is byte-stable at any ``--jobs``
and identical between cold and warm runs.

Entry points:

* :func:`lint_source` -- one file's source text.
* :func:`lint_paths` -- files and/or directory trees, including every
  cross-file rule.
"""

from __future__ import annotations

import ast
import dataclasses
import hashlib
import os
from typing import Dict, Iterator, List, Optional, Sequence

from repro.devtools.config import (
    DEFAULT_RULES,
    LintConfig,
    Severity,
    SuppressionIndex,
    scan_pragmas,
)
from repro.devtools.rules import (
    KIND_CONST_NAME,
    PAYLOAD_FUNC_NAME,
    RawFinding,
    SCHEMA_PIN_NAME,
    SCHEMA_TABLE_NAME,
    SCHEMA_VERSION_NAME,
    check_checkpoint_schema,
)
from repro.devtools.rules_interproc import run_interproc_rules
from repro.devtools.summaries import (
    SUMMARY_VERSION,
    FileSummary,
    content_hash,
    summarize_source,
)
from repro.io.artifacts import ArtifactCache, artifact_key
from repro.parallel.fanout import ordered_fanout, resolve_jobs


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to ``path:line``."""

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str

    @property
    def anchor(self) -> str:
        """The clickable ``path:line`` location string."""
        return f"{self.path}:{self.line}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly representation (stable field set)."""
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class LintError(ValueError):
    """Raised when an input file cannot be read or parsed."""


def _relative_package_path(path: str) -> Optional[str]:
    """Path of *path* below the ``repro`` package root, if any."""
    parts = os.path.abspath(path).replace("\\", "/").split("/")
    for index in range(len(parts) - 1, 0, -1):
        if parts[index - 1] == "repro":
            return "/".join(parts[index:])
    return None


def _finalize(
    raw: Sequence[RawFinding],
    path: str,
    suppressions: SuppressionIndex,
    config: LintConfig,
) -> List[Finding]:
    enabled = set(config.enabled_rules())
    findings = []
    for hit in raw:
        if hit.rule not in enabled:
            continue
        if suppressions.is_suppressed(hit.rule, hit.line):
            continue
        findings.append(
            Finding(
                rule=hit.rule,
                severity=config.severity_of(hit.rule),
                path=path,
                line=hit.line,
                col=hit.col,
                message=hit.message,
            )
        )
    return findings


# ----------------------------------------------------------------------
# Phase 1: per-file summaries (cached, optionally parallel)
# ----------------------------------------------------------------------

#: Artifact kind for cached per-file summaries.
SUMMARY_KIND = "reprolint-file-summary"

#: Process-cached result of :func:`engine_fingerprint`.
_ENGINE_PIN: Optional[str] = None


def engine_fingerprint() -> str:
    """SHA-256 over the devtools package's own sources.

    A cached summary is a pure function of ``(file bytes, engine
    code)``: editing any analyzer module must invalidate every stored
    summary, while editing an analyzed file only invalidates that
    file's entry (keys embed the file's content hash).  Hashed once
    per process; always computed in the lint parent, before any
    fan-out.
    """
    global _ENGINE_PIN
    if _ENGINE_PIN is None:
        package_root = os.path.dirname(os.path.abspath(__file__))
        digest = hashlib.sha256()
        for name in sorted(os.listdir(package_root)):
            if not name.endswith(".py"):
                continue
            with open(
                os.path.join(package_root, name), "rb"
            ) as handle:
                digest.update(name.encode("utf-8"))
                digest.update(b"\x00")
                digest.update(handle.read())
                digest.update(b"\x00")
        _ENGINE_PIN = digest.hexdigest()
    return _ENGINE_PIN


def summarize_path(path: str, source: str) -> FileSummary:
    """One file's summary; parse failures become :class:`LintError`."""
    try:
        return summarize_source(
            path, source, _relative_package_path(path)
        )
    except SyntaxError as exc:
        raise LintError(f"{path}: cannot parse: {exc}") from exc


def _summary_key(source: str, path: str, pin: str) -> str:
    return artifact_key(
        kind=SUMMARY_KIND,
        config_fingerprint=content_hash(source),
        seed=SUMMARY_VERSION,
        schema_pin="-",
        extra=path,
        code_pin=pin,
    )


def _gather_summaries(
    files: Sequence[str],
    sources: Dict[str, str],
    jobs: Optional[int],
    cache: Optional[ArtifactCache],
) -> List[FileSummary]:
    """Phase 1 over *files*: cache hits load, misses compute (+store).

    Misses fan out through ``ordered_fanout`` when more than one job
    is requested; the parent stores results, so no two processes ever
    write the cache concurrently.  Output order is ``files`` order
    regardless of jobs or hit pattern.
    """
    summaries: Dict[str, FileSummary] = {}
    keys: Dict[str, str] = {}
    if cache is not None:
        pin = engine_fingerprint()
        for path in files:
            key = _summary_key(sources[path], path, pin)
            keys[path] = key
            payload = cache.load(key)
            if (
                isinstance(payload, FileSummary)
                and payload.path == path
            ):
                summaries[path] = payload
    missing = [path for path in files if path not in summaries]
    if missing:
        width = min(resolve_jobs(jobs), len(missing))
        produced = ordered_fanout(
            [
                (lambda p=path: summarize_path(p, sources[p]))
                for path in missing
            ],
            jobs=width,
            labels=[f"lint-summary:{path}" for path in missing],
        )
        for path, summary in zip(missing, produced):
            summaries[path] = summary
            if cache is not None:
                cache.store(keys[path], summary)
    return [summaries[path] for path in files]


# ----------------------------------------------------------------------
# Cross-file rules over summaries
# ----------------------------------------------------------------------

#: Module-level names whose presence makes a file REP006-relevant.
_CHECKPOINT_NAMES = frozenset(
    {
        SCHEMA_PIN_NAME,
        SCHEMA_VERSION_NAME,
        SCHEMA_TABLE_NAME,
        KIND_CONST_NAME,
        PAYLOAD_FUNC_NAME,
    }
)


def _checkpoint_trees(
    summaries: Sequence[FileSummary], sources: Dict[str, str]
) -> Dict[str, ast.Module]:
    """Re-parse only the files REP006 can say anything about.

    The checkpoint-schema check works on raw ASTs (it inspects
    non-literal constant expressions); re-parsing the two or three
    relevant modules keeps the warm path free of a full-tree parse.
    """
    trees: Dict[str, ast.Module] = {}
    for summary in summaries:
        names = set(summary.module_bindings) | set(summary.constants)
        if summary.payload is None and not (names & _CHECKPOINT_NAMES):
            continue
        trees[summary.path] = ast.parse(
            sources[summary.path], filename=summary.path
        )
    return trees


def lint_source(
    path: str,
    source: str,
    config: Optional[LintConfig] = None,
) -> List[Finding]:
    """Run the full engine over one file's *source* (as *path*).

    Single-file rules always apply; the cross-file rules see a
    one-node graph, so fixtures exercising REP009-REP012 within one
    file work here too.
    """
    config = config or LintConfig()
    summary = summarize_path(path, source)
    suppressions = summary.pragmas
    findings = _finalize(
        summary.module_findings, path, suppressions, config
    )
    for raw_path, raw in run_interproc_rules([summary]).items():
        findings.extend(_finalize(raw, raw_path, suppressions, config))
    for raw_path, raw in check_checkpoint_schema(
        _checkpoint_trees([summary], {path: source})
    ).items():
        findings.extend(_finalize(raw, raw_path, suppressions, config))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Yield every ``.py`` file under *paths*, sorted and deduplicated."""
    seen = set()
    collected: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                dirnames[:] = [
                    d for d in dirnames if d != "__pycache__"
                ]
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        collected.append(os.path.join(dirpath, filename))
        else:
            collected.append(path)
    for path in sorted(collected):
        if path not in seen:
            seen.add(path)
            yield path


def lint_paths(
    paths: Sequence[str],
    config: Optional[LintConfig] = None,
    jobs: Optional[int] = None,
    cache: Optional[ArtifactCache] = None,
) -> List[Finding]:
    """Lint files and directory trees with every rule.

    *jobs* parallelizes the per-file summary phase (None/1 = serial);
    *cache* enables incremental re-linting.  Findings come back
    sorted by ``(path, line, rule)`` -- byte-identical for any
    ``jobs`` value and any cache hit pattern.
    """
    config = config or LintConfig()
    files: List[str] = []
    sources: Dict[str, str] = {}
    for path in iter_python_files(paths):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                sources[path] = handle.read()
        except OSError as exc:
            raise LintError(f"{path}: cannot read: {exc}") from exc
        files.append(path)
    summaries = _gather_summaries(files, sources, jobs, cache)
    by_path = {summary.path: summary for summary in summaries}

    findings: List[Finding] = []
    for summary in summaries:
        findings.extend(
            _finalize(
                summary.module_findings,
                summary.path,
                summary.pragmas,
                config,
            )
        )
    for path, raw in run_interproc_rules(summaries).items():
        findings.extend(
            _finalize(raw, path, by_path[path].pragmas, config)
        )
    for path, raw in check_checkpoint_schema(
        _checkpoint_trees(summaries, sources)
    ).items():
        findings.extend(
            _finalize(raw, path, by_path[path].pragmas, config)
        )
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def has_errors(findings: Sequence[Finding]) -> bool:
    """True when any finding carries ERROR severity."""
    return any(f.severity is Severity.ERROR for f in findings)


def rule_codes() -> List[str]:
    """All known rule codes, sorted."""
    return sorted(DEFAULT_RULES)
