"""SARIF 2.1.0 emitter for reprolint findings.

SARIF (Static Analysis Results Interchange Format) is what CI
platforms ingest to annotate pull requests with inline findings.  The
emitter is deliberately minimal -- one run, one tool driver, every
rule in the registry (stable ``ruleIndex`` regardless of which rules
fired), one result per finding -- and fully deterministic: keys are
sorted and locations use forward-slash relative URIs, so two runs
over the same tree produce byte-identical documents.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence

from repro.devtools.config import DEFAULT_RULES, Severity
from repro.devtools.lint import Finding

#: The SARIF spec version this emitter targets.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

#: Reported tool version: (engine major).(rule count).
TOOL_VERSION = f"2.{len(DEFAULT_RULES)}"


def _level(severity: Severity) -> str:
    return "error" if severity is Severity.ERROR else "warning"


def _artifact_uri(path: str, base_dir: Optional[str]) -> str:
    """Forward-slash URI for *path*, relative to *base_dir* if inside."""
    if base_dir is not None:
        try:
            relative = os.path.relpath(path, base_dir)
        except ValueError:  # different drive (Windows)
            relative = path
        if not relative.startswith(".."):
            return relative.replace(os.sep, "/")
    return path.replace(os.sep, "/")


def _rule_descriptors() -> List[Dict[str, object]]:
    descriptors: List[Dict[str, object]] = []
    for code in sorted(DEFAULT_RULES):
        info = DEFAULT_RULES[code]
        descriptors.append(
            {
                "id": code,
                "name": info.title,
                "shortDescription": {"text": info.title},
                "fullDescription": {"text": info.rationale},
                "defaultConfiguration": {
                    "level": _level(info.default_severity)
                },
            }
        )
    return descriptors


def render_sarif(
    findings: Sequence[Finding],
    base_dir: Optional[str] = None,
) -> str:
    """One SARIF document for *findings*; deterministic bytes.

    *base_dir* (usually the repo root) relativizes artifact URIs so
    CI can map them onto the checked-out tree.
    """
    rule_index = {
        code: index for index, code in enumerate(sorted(DEFAULT_RULES))
    }
    results: List[Dict[str, object]] = []
    for finding in findings:
        results.append(
            {
                "ruleId": finding.rule,
                "ruleIndex": rule_index[finding.rule],
                "level": _level(finding.severity),
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": _artifact_uri(
                                    finding.path, base_dir
                                ),
                            },
                            "region": {
                                "startLine": finding.line,
                                "startColumn": finding.col + 1,
                            },
                        }
                    }
                ],
            }
        )
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "informationUri": (
                            "https://example.invalid/reprolint"
                        ),
                        "version": TOOL_VERSION,
                        "rules": _rule_descriptors(),
                    }
                },
                "columnKind": "unicodeCodePoints",
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def write_sarif(
    path: str,
    findings: Sequence[Finding],
    base_dir: Optional[str] = None,
) -> None:
    """Write the SARIF document for *findings* to *path*."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_sarif(findings, base_dir=base_dir))
        handle.write("\n")
