"""Per-file analysis summaries: what each function mutates, draws, calls.

This is the first phase of the interprocedural reprolint engine.  Each
file is reduced -- independently, so the pass parallelizes and caches
per file -- to a :class:`FileSummary`: the module's imports and
top-level bindings, plus one :class:`FunctionSummary` per function,
method and lambda recording

* every call site (with enough shape to resolve it against the module
  graph later),
* writes to names the function does not bind itself (``global``
  declarations, mutations of module-level or closed-over objects),
* every RNG draw and where its receiver came from (freshly derived,
  parameter, closed-over, module-level, ``self`` attribute),
* whether the function returns an unordered collection,
* ``sum()`` calls whose iterable is another function's return value,
* and every parallel dispatch with its task expressions: both
  ``ordered_fanout(tasks)`` (a list of thunks) and worker-pool
  submissions (``pool.run_batch(fn, ...)`` / ``pool.broadcast(fn, ...)``,
  where the single callable fans out to forked workers).

The summaries are plain frozen dataclasses of strings and ints: they
pickle cleanly into the artifact cache and compare structurally, which
is what makes warm (incremental) lint runs byte-identical to cold ones.
Composition into interprocedural findings happens later, in
:mod:`repro.devtools.graph` and :mod:`repro.devtools.rules_interproc`.
"""

from __future__ import annotations

import ast
import dataclasses
import hashlib
import re
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.devtools.config import SuppressionIndex, scan_pragmas
from repro.devtools.rules import (
    RNG_DRAW_METHODS,
    ModuleRuleVisitor,
    RawFinding,
    _is_order_free_value,
    _is_sorted_call,
    _is_unordered_iterable,
    _rng_receiver,
)

#: Version of the summary layout; bump to invalidate cached summaries
#: when the fields or their semantics change.
SUMMARY_VERSION = 2

#: Function names whose call result is an independent, freshly derived
#: RNG stream (or a factory handing one out).
RNG_DERIVATIONS = frozenset({"derive_rng", "Random", "rng", "child"})

#: Method names that mutate their receiver in place.
MUTATING_METHODS = frozenset(
    {
        "append",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "clear",
        "extend",
        "insert",
        "remove",
        "discard",
        "sort",
        "reverse",
    }
)

#: The parallel fan-out boundary: any call to this name (resolved or
#: literal) dispatches its first argument's callables onto workers.
FANOUT_NAME = "ordered_fanout"

#: Worker-pool dispatch methods: ``pool.run_batch(fn, payloads)``,
#: ``pool.run_stream(fn, payloads)`` and ``pool.broadcast(fn, payload)``
#: run their first argument in forked workers, so the submitted callable
#: is a fan-out root exactly like an ``ordered_fanout`` task.  The
#: sharded world build dispatches through ``run_stream``.
POOL_DISPATCH_METHODS = frozenset({"run_batch", "run_stream", "broadcast"})

#: SQL statements worth summarizing for the store-schema rule.
_SQL_RE = re.compile(
    r"\b(CREATE\s+TABLE|INSERT\s+INTO|SELECT\s)", re.IGNORECASE
)


@dataclasses.dataclass(frozen=True)
class ImportEntry:
    """One imported binding: ``alias`` names ``module`` (dot ``symbol``)."""

    alias: str
    module: str
    symbol: str  # "" when the alias names the module itself
    line: int


@dataclasses.dataclass(frozen=True)
class CallRef:
    """One call site, shaped for later cross-module resolution.

    ``kind`` is how the callee was spelled:

    * ``"name"`` -- ``f(...)``; ``name`` is ``f``.
    * ``"self"`` -- ``self.m(...)``; ``name`` is ``m``.
    * ``"attr"`` -- ``a.b.f(...)`` where ``a`` is a plain name;
      ``base`` is the dotted prefix (``"a.b"``), ``name`` is ``f``.
    * ``"method"`` -- a call on any other receiver expression;
      ``base`` is the receiver's root name when it is one.

    ``base_kind`` classifies the receiver's root binding in the calling
    scope: ``local``, ``param``, ``free`` (closed over), ``module``
    (module-level binding of this file), or ``unknown``.
    """

    kind: str
    base: str
    name: str
    line: int
    col: int
    base_kind: str = "unknown"
    rng_args: Tuple[Tuple[int, str, str], ...] = ()


@dataclasses.dataclass(frozen=True)
class FreeWrite:
    """A write to a name the function does not bind itself."""

    name: str
    line: int
    col: int
    how: str  # "global-assign" | "nonlocal-assign" | "mutate"


@dataclasses.dataclass(frozen=True)
class RngDraw:
    """One RNG draw and the provenance of its receiver."""

    receiver: str
    origin: str  # "derived" | "local" | "param" | "free" | "self" | "attr"
    method: str
    line: int
    col: int


@dataclasses.dataclass(frozen=True)
class SumOverCall:
    """A ``sum()`` whose iterable is another function's return value."""

    callee: CallRef
    line: int
    col: int


@dataclasses.dataclass(frozen=True)
class TaskRef:
    """One task expression handed to ``ordered_fanout``."""

    kind: str  # "name" | "self-method" | "attr" | "lambda" | "unknown"
    value: str
    line: int


@dataclasses.dataclass(frozen=True)
class FanoutSite:
    """One ``ordered_fanout(tasks, ...)`` dispatch site."""

    line: int
    col: int
    tasks: Tuple[TaskRef, ...]
    resolved: bool


@dataclasses.dataclass(frozen=True)
class FunctionSummary:
    """Everything the interprocedural rules need to know per function."""

    qualname: str
    name: str
    cls: str
    lineno: int
    params: Tuple[str, ...]
    local_names: Tuple[str, ...]
    calls: Tuple[CallRef, ...]
    free_writes: Tuple[FreeWrite, ...]
    rng_draws: Tuple[RngDraw, ...]
    derived_attrs: Tuple[str, ...]
    returns_unordered: bool
    return_calls: Tuple[CallRef, ...]
    sums_over_calls: Tuple[SumOverCall, ...]
    fanouts: Tuple[FanoutSite, ...]


@dataclasses.dataclass(frozen=True)
class SqlLiteral:
    """One SQL string constant (for the store-schema rule)."""

    line: int
    text: str


@dataclasses.dataclass(frozen=True)
class FileSummary:
    """One file's complete phase-1 analysis product."""

    path: str
    relpkg: Optional[str]
    content_hash: str
    module_findings: Tuple[RawFinding, ...]
    pragmas: SuppressionIndex
    imports: Tuple[ImportEntry, ...]
    module_bindings: Tuple[str, ...]
    module_rng_bindings: Tuple[str, ...]
    constants: Mapping[str, object]
    constant_lines: Mapping[str, int]
    payload: Optional[Tuple[int, Tuple[str, ...]]]
    sql_literals: Tuple[SqlLiteral, ...]
    functions: Tuple[FunctionSummary, ...]
    classes: Tuple[str, ...]

    def function_map(self) -> Dict[str, FunctionSummary]:
        """Summaries keyed by qualified name."""
        return {fn.qualname: fn for fn in self.functions}


def content_hash(source: str) -> str:
    """The cache address component for one file's source text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# AST helpers
# ----------------------------------------------------------------------


def _dotted_root(node: ast.AST) -> Optional[str]:
    """The root ``Name`` of an attribute chain, or None."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _dotted_path(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a pure Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _is_rng_derivation(node: ast.AST) -> bool:
    """Is this expression a freshly derived, independent RNG stream?"""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in RNG_DERIVATIONS
    if isinstance(func, ast.Attribute):
        return func.attr in RNG_DERIVATIONS
    return False


def _assigned_names(target: ast.AST) -> List[str]:
    """Every plain name bound by an assignment target."""
    names: List[str] = []
    for node in ast.walk(target):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            names.append(node.id)
    return names


class _BindingCollector(ast.NodeVisitor):
    """Names bound directly in one scope (never descending into
    nested function/class scopes)."""

    def __init__(self) -> None:
        self.bound: List[str] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.bound.append(node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.bound.append(node.name)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.bound.append(node.name)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass  # its params are its own scope

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            self.bound.append(node.id)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.bound.append(
                alias.asname or alias.name.split(".", 1)[0]
            )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            if alias.name != "*":
                self.bound.append(alias.asname or alias.name)

    def visit_Global(self, node: ast.Global) -> None:
        pass

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        pass


def _scope_bindings(body: Sequence[ast.stmt]) -> List[str]:
    collector = _BindingCollector()
    for stmt in body:
        collector.visit(stmt)
    return collector.bound


# ----------------------------------------------------------------------
# Per-scope analysis
# ----------------------------------------------------------------------


class _ScopeAnalyzer(ast.NodeVisitor):
    """Analyze one function scope; recurse into nested scopes.

    Produces one :class:`FunctionSummary` per visited scope via the
    shared ``sink`` list.  Lambdas become scopes of their own with
    qualified names like ``outer.<lambda:LINE:COL>`` so fan-out task
    lambdas are first-class call-graph nodes.
    """

    def __init__(
        self,
        qualname: str,
        name: str,
        cls: str,
        node: Optional[ast.AST],
        params: Sequence[str],
        body: Sequence[ast.stmt],
        enclosing_bound: Sequence[frozenset],
        sink: List[FunctionSummary],
    ) -> None:
        self.qualname = qualname
        self.name = name
        self.cls = cls
        self.lineno = getattr(node, "lineno", 0) if node is not None else 0
        self.params = tuple(params)
        self.body = body
        self.enclosing_bound = list(enclosing_bound)
        self.sink = sink

        self.global_decls: set = set()
        self.nonlocal_decls: set = set()
        self.local = frozenset(_scope_bindings(body)) | frozenset(params)
        #: local name -> "derived" | "other" (rng-ish assignments only)
        self.rng_locals: Dict[str, str] = {}
        #: local name -> list-literal elements (for fan-out task lists)
        self.list_locals: Dict[str, ast.expr] = {}
        self._lambda_memo: Dict[str, FunctionSummary] = {}

        self.calls: List[CallRef] = []
        self.free_writes: List[FreeWrite] = []
        self.rng_draws: List[RngDraw] = []
        self.derived_attrs: List[str] = []
        self.returns_unordered = False
        self.return_calls: List[CallRef] = []
        self.sums_over_calls: List[SumOverCall] = []
        self.fanouts: List[FanoutSite] = []

    # -- entry ---------------------------------------------------------

    def analyze(self) -> FunctionSummary:
        for stmt in self.body:
            self.visit(stmt)
        summary = FunctionSummary(
            qualname=self.qualname,
            name=self.name,
            cls=self.cls,
            lineno=self.lineno,
            params=self.params,
            local_names=tuple(sorted(self.local)),
            calls=tuple(self.calls),
            free_writes=tuple(self.free_writes),
            rng_draws=tuple(self.rng_draws),
            derived_attrs=tuple(sorted(set(self.derived_attrs))),
            returns_unordered=self.returns_unordered,
            return_calls=tuple(self.return_calls),
            sums_over_calls=tuple(self.sums_over_calls),
            fanouts=tuple(self.fanouts),
        )
        self.sink.append(summary)
        return summary

    # -- name classification -------------------------------------------

    def _kind_of(self, name: str) -> str:
        """How *name* is bound as seen from this scope."""
        if name in self.global_decls:
            return "module"
        if name in self.params:
            return "param"
        if name in self.local:
            return "local"
        for bound in reversed(self.enclosing_bound[1:]):
            if name in bound:
                return "free"
        if self.enclosing_bound and name in self.enclosing_bound[0]:
            return "module"
        return "unknown"

    def _receiver_kind(self, node: ast.AST) -> Tuple[str, str]:
        """(base_kind, root name) of a receiver expression."""
        root = _dotted_root(node)
        if root is None:
            return "unknown", ""
        if root == "self":
            return "self", root
        return self._kind_of(root), root

    # -- nested scopes --------------------------------------------------

    def _child_scopes(self) -> List[frozenset]:
        return self.enclosing_bound + [self.local]

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._analyze_def(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._analyze_def(node)

    def _analyze_def(self, node) -> None:
        params = [a.arg for a in _all_args(node.args)]
        _ScopeAnalyzer(
            qualname=f"{self.qualname}.<locals>.{node.name}",
            name=node.name,
            cls="",
            node=node,
            params=params,
            body=node.body,
            enclosing_bound=self._child_scopes(),
            sink=self.sink,
        ).analyze()
        for decorator in node.decorator_list:
            self.visit(decorator)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        _analyze_class(
            node,
            prefix=f"{self.qualname}.<locals>",
            enclosing_bound=self._child_scopes(),
            sink=self.sink,
        )

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._lambda_summary(node)

    def _lambda_summary(self, node: ast.Lambda) -> FunctionSummary:
        params = [a.arg for a in _all_args(node.args)]
        qualname = (
            f"{self.qualname}.<lambda:{node.lineno}:{node.col_offset}>"
        )
        # A lambda can be revisited as a fan-out task expression after
        # the traversal already summarized it; one sink entry each.
        if qualname in self._lambda_memo:
            return self._lambda_memo[qualname]
        self._lambda_memo[qualname] = summary = _ScopeAnalyzer(
            qualname=qualname,
            name="<lambda>",
            cls="",
            node=node,
            params=params,
            body=[ast.Expr(value=node.body)],
            enclosing_bound=self._child_scopes(),
            sink=self.sink,
        ).analyze()
        return summary

    # -- declarations and assignments ----------------------------------

    def visit_Global(self, node: ast.Global) -> None:
        self.global_decls.update(node.names)

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        self.nonlocal_decls.update(node.names)

    def visit_Assign(self, node: ast.Assign) -> None:
        self._record_assignment(node.targets, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_assignment([node.target], node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_store_target(node.target)
        self.generic_visit(node)

    def _record_assignment(
        self, targets: Sequence[ast.expr], value: ast.expr
    ) -> None:
        derived = _is_rng_derivation(value)
        for target in targets:
            if isinstance(target, ast.Name):
                if derived:
                    self.rng_locals[target.id] = "derived"
                elif isinstance(value, ast.Call) and _rng_receiver(target):
                    self.rng_locals.setdefault(target.id, "other")
                if isinstance(
                    value,
                    (ast.List, ast.Tuple, ast.ListComp, ast.GeneratorExp),
                ):
                    self.list_locals[target.id] = value
                if target.id in self.global_decls:
                    self.free_writes.append(
                        FreeWrite(
                            name=target.id,
                            line=target.lineno,
                            col=target.col_offset,
                            how="global-assign",
                        )
                    )
                elif target.id in self.nonlocal_decls:
                    self.free_writes.append(
                        FreeWrite(
                            name=target.id,
                            line=target.lineno,
                            col=target.col_offset,
                            how="nonlocal-assign",
                        )
                    )
            else:
                self._record_store_target(target)
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and derived
            ):
                self.derived_attrs.append(target.attr)

    def _record_store_target(self, target: ast.expr) -> None:
        """Subscript/attribute stores mutate their receiver object."""
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            kind, root = self._receiver_kind(target.value)
            if kind in ("free", "module"):
                self.free_writes.append(
                    FreeWrite(
                        name=root,
                        line=target.lineno,
                        col=target.col_offset,
                        how="mutate",
                    )
                )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_store_target(element)
        elif isinstance(target, ast.Name):
            if target.id in self.global_decls:
                self.free_writes.append(
                    FreeWrite(
                        name=target.id,
                        line=target.lineno,
                        col=target.col_offset,
                        how="global-assign",
                    )
                )
            elif target.id in self.nonlocal_decls:
                self.free_writes.append(
                    FreeWrite(
                        name=target.id,
                        line=target.lineno,
                        col=target.col_offset,
                        how="nonlocal-assign",
                    )
                )

    # -- returns -------------------------------------------------------

    def visit_Return(self, node: ast.Return) -> None:
        value = node.value
        if value is not None:
            if _is_unordered_iterable(value) or isinstance(
                value, (ast.Set, ast.SetComp, ast.DictComp, ast.Dict)
            ):
                self.returns_unordered = True
            elif isinstance(value, ast.Call):
                ref = self._call_ref(value)
                if ref is not None and ref.kind in ("name", "attr", "self"):
                    self.return_calls.append(ref)
        self.generic_visit(node)

    # -- calls ---------------------------------------------------------

    def _rng_arg_info(
        self, node: ast.Call
    ) -> Tuple[Tuple[int, str, str], ...]:
        """Provenance of every rng-looking positional argument."""
        info: List[Tuple[int, str, str]] = []
        for position, arg in enumerate(node.args):
            if isinstance(arg, ast.Name) and (
                _rng_receiver(arg) or arg.id in self.rng_locals
            ):
                info.append((position, self._arg_origin(arg.id), arg.id))
            elif _is_rng_derivation(arg):
                info.append((position, "derived", ""))
        return tuple(info)

    def _arg_origin(self, name: str) -> str:
        if self.rng_locals.get(name) == "derived":
            return "derived"
        kind = self._kind_of(name)
        if kind == "local":
            return "local"
        return kind  # param | free | module | unknown

    def _call_ref(self, node: ast.Call) -> Optional[CallRef]:
        func = node.func
        rng_args = self._rng_arg_info(node)
        if isinstance(func, ast.Name):
            return CallRef(
                kind="name",
                base="",
                name=func.id,
                line=node.lineno,
                col=node.col_offset,
                base_kind=self._kind_of(func.id),
                rng_args=rng_args,
            )
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                return CallRef(
                    kind="self",
                    base="self",
                    name=func.attr,
                    line=node.lineno,
                    col=node.col_offset,
                    base_kind="self",
                    rng_args=rng_args,
                )
            path = _dotted_path(func.value)
            kind, root = self._receiver_kind(func.value)
            if path is not None and kind in ("module", "unknown"):
                # Could be a module attribute chain (obs.add) -- keep
                # the dotted path for import resolution.
                return CallRef(
                    kind="attr",
                    base=path,
                    name=func.attr,
                    line=node.lineno,
                    col=node.col_offset,
                    base_kind=kind,
                    rng_args=rng_args,
                )
            return CallRef(
                kind="method",
                base=root,
                name=func.attr,
                line=node.lineno,
                col=node.col_offset,
                base_kind=kind,
                rng_args=rng_args,
            )
        return None

    def visit_Call(self, node: ast.Call) -> None:
        ref = self._call_ref(node)
        if ref is not None:
            self.calls.append(ref)
            if ref.name == FANOUT_NAME:
                self._record_fanout(node)
            elif (
                ref.name in POOL_DISPATCH_METHODS
                and ref.kind in ("method", "self", "attr")
            ):
                self._record_pool_dispatch(node)
            if (
                ref.kind == "method"
                and ref.name in MUTATING_METHODS
                and ref.base_kind == "free"
            ):
                # shared.append(x) on a closed-over object.  Receivers
                # classified "module" take the attr-call path instead;
                # REP009 separates them from namespace calls once the
                # module's imports are known.
                self.free_writes.append(
                    FreeWrite(
                        name=ref.base,
                        line=node.lineno,
                        col=node.col_offset,
                        how="mutate",
                    )
                )
        self._check_rng_draw(node)
        self._check_sum_over_call(node)
        self.generic_visit(node)

    # -- RNG draws ------------------------------------------------------

    def _check_rng_draw(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in RNG_DRAW_METHODS:
            return
        value = func.value
        if isinstance(value, ast.Name):
            name = value.id
            known = self.rng_locals.get(name)
            if known is None and not _rng_receiver(value):
                return
            kind = self._kind_of(name)
            if kind in ("local", "param") and known == "derived":
                origin = "derived"
            elif kind == "param":
                origin = "param"
            elif kind == "free":
                origin = "free"
            elif kind == "module":
                origin = "module"
            elif kind == "local":
                origin = "local"
            else:
                origin = "unknown"
            self.rng_draws.append(
                RngDraw(
                    receiver=name,
                    origin=origin,
                    method=func.attr,
                    line=node.lineno,
                    col=node.col_offset,
                )
            )
        elif isinstance(value, ast.Attribute) and _rng_receiver(value):
            kind, root = self._receiver_kind(value)
            path = _dotted_path(value) or value.attr
            if kind == "self":
                origin = "self"
            elif kind in ("free", "module"):
                origin = kind
            else:
                origin = "attr"
            self.rng_draws.append(
                RngDraw(
                    receiver=path,
                    origin=origin,
                    method=func.attr,
                    line=node.lineno,
                    col=node.col_offset,
                )
            )

    # -- sum() over another function's return value ---------------------

    def _check_sum_over_call(self, node: ast.Call) -> None:
        func = node.func
        if not (isinstance(func, ast.Name) and func.id == "sum"):
            return
        if not node.args:
            return
        arg = node.args[0]
        callee: Optional[ast.Call] = None
        if isinstance(arg, ast.Call) and not _is_sorted_call(arg):
            callee = arg
        elif isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
            if _is_order_free_value(arg.elt):
                return
            first = arg.generators[0].iter
            if isinstance(first, ast.Call) and not _is_sorted_call(first):
                callee = first
        if callee is None:
            return
        if _is_unordered_iterable(callee):
            return  # already REP004's finding
        ref = self._call_ref(callee)
        if ref is None or ref.kind == "method":
            return
        self.sums_over_calls.append(
            SumOverCall(callee=ref, line=node.lineno, col=node.col_offset)
        )

    # -- fan-out task extraction ----------------------------------------

    def _record_fanout(self, node: ast.Call) -> None:
        tasks_expr: Optional[ast.expr] = None
        if node.args:
            tasks_expr = node.args[0]
        else:
            for keyword in node.keywords:
                if keyword.arg == "tasks":
                    tasks_expr = keyword.value
        refs, resolved = self._task_refs(tasks_expr)
        self.fanouts.append(
            FanoutSite(
                line=node.lineno,
                col=node.col_offset,
                tasks=tuple(refs),
                resolved=resolved,
            )
        )

    def _record_pool_dispatch(self, node: ast.Call) -> None:
        """``pool.run_batch/run_stream/broadcast(fn, ...)``.

        The submitted callable runs in forked workers, so it gets the
        same :class:`FanoutSite` treatment as an ``ordered_fanout``
        task list; REP009/REP010 then walk its reachable set.
        """
        fn_expr: Optional[ast.expr] = node.args[0] if node.args else None
        if fn_expr is None:
            for keyword in node.keywords:
                if keyword.arg == "fn":
                    fn_expr = keyword.value
        if fn_expr is None:
            self.fanouts.append(
                FanoutSite(
                    line=node.lineno,
                    col=node.col_offset,
                    tasks=(),
                    resolved=False,
                )
            )
            return
        ref = self._task_ref(fn_expr)
        self.fanouts.append(
            FanoutSite(
                line=node.lineno,
                col=node.col_offset,
                tasks=(ref,),
                resolved=ref.kind != "unknown",
            )
        )

    def _task_refs(
        self, expr: Optional[ast.expr], depth: int = 0
    ) -> Tuple[List[TaskRef], bool]:
        if expr is None or depth > 3:
            return [], False
        if isinstance(expr, (ast.List, ast.Tuple)):
            refs: List[TaskRef] = []
            resolved = True
            for element in expr.elts:
                ref = self._task_ref(element)
                refs.append(ref)
                if ref.kind == "unknown":
                    resolved = False
            return refs, resolved
        if isinstance(expr, (ast.ListComp, ast.GeneratorExp)):
            ref = self._task_ref(expr.elt)
            return [ref], ref.kind != "unknown"
        if isinstance(expr, ast.Name) and expr.id in self.list_locals:
            return self._task_refs(self.list_locals[expr.id], depth + 1)
        return [], False

    def _task_ref(self, expr: ast.expr) -> TaskRef:
        line = getattr(expr, "lineno", self.lineno)
        if isinstance(expr, ast.Name):
            return TaskRef(kind="name", value=expr.id, line=line)
        if isinstance(expr, ast.Attribute):
            if (
                isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
            ):
                return TaskRef(
                    kind="self-method", value=expr.attr, line=line
                )
            path = _dotted_path(expr)
            if path is not None:
                return TaskRef(kind="attr", value=path, line=line)
        if isinstance(expr, ast.Lambda):
            summary = self._lambda_summary(expr)
            return TaskRef(
                kind="lambda", value=summary.qualname, line=line
            )
        if isinstance(expr, ast.Call):
            # functools.partial(f, ...) and friends: first argument.
            if expr.args:
                return self._task_ref(expr.args[0])
        return TaskRef(kind="unknown", value="", line=line)


def _all_args(args: ast.arguments) -> List[ast.arg]:
    every = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    if args.vararg is not None:
        every.append(args.vararg)
    if args.kwarg is not None:
        every.append(args.kwarg)
    return every


def _analyze_class(
    node: ast.ClassDef,
    prefix: str,
    enclosing_bound: List[frozenset],
    sink: List[FunctionSummary],
) -> None:
    qual = f"{prefix}.{node.name}" if prefix else node.name
    class_scope = enclosing_bound  # class body names are not closures
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            params = [a.arg for a in _all_args(stmt.args)]
            _ScopeAnalyzer(
                qualname=f"{qual}.{stmt.name}",
                name=stmt.name,
                cls=node.name,
                node=stmt,
                params=params,
                body=stmt.body,
                enclosing_bound=class_scope,
                sink=sink,
            ).analyze()
        elif isinstance(stmt, ast.ClassDef):
            _analyze_class(stmt, qual, class_scope, sink)


# ----------------------------------------------------------------------
# Module-level extraction
# ----------------------------------------------------------------------


def _module_imports(tree: ast.Module) -> List[ImportEntry]:
    entries: List[ImportEntry] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    entries.append(
                        ImportEntry(
                            alias=alias.asname,
                            module=alias.name,
                            symbol="",
                            line=node.lineno,
                        )
                    )
                else:
                    entries.append(
                        ImportEntry(
                            alias=alias.name.split(".", 1)[0],
                            module=alias.name.split(".", 1)[0],
                            symbol="",
                            line=node.lineno,
                        )
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                entries.append(
                    ImportEntry(
                        alias=alias.asname or alias.name,
                        module=node.module,
                        symbol=alias.name,
                        line=node.lineno,
                    )
                )
    return entries


def _module_constants_and_lines(
    tree: ast.Module,
) -> Tuple[Dict[str, object], Dict[str, int]]:
    constants: Dict[str, object] = {}
    lines: Dict[str, int] = {}
    for stmt in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        try:
            literal = ast.literal_eval(value)
        except (ValueError, SyntaxError):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                constants[target.id] = literal
                lines[target.id] = value.lineno
    return constants, lines


def _module_rng_bindings(tree: ast.Module) -> List[str]:
    names: List[str] = []
    for stmt in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None or not _is_rng_derivation(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.append(target.id)
    return names


def _payload_keys(tree: ast.Module) -> Optional[Tuple[int, Tuple[str, ...]]]:
    from repro.devtools.rules import _payload_dict_keys

    found = _payload_dict_keys(tree)
    if found is None:
        return None
    line, keys = found
    return line, tuple(keys)


def _sql_literals(tree: ast.Module) -> List[SqlLiteral]:
    literals: List[SqlLiteral] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            if _SQL_RE.search(node.value):
                literals.append(
                    SqlLiteral(line=node.lineno, text=node.value)
                )
    literals.sort(key=lambda lit: lit.line)
    return literals


def summarize_source(
    path: str,
    source: str,
    relpkg: Optional[str],
) -> FileSummary:
    """Phase 1 for one file: single-file rules plus the summary pass.

    Raises ``SyntaxError`` for unparseable input; the caller wraps it.
    """
    tree = ast.parse(source, filename=path)

    visitor = ModuleRuleVisitor(relpkg=relpkg)
    visitor.visit(tree)

    module_bound = frozenset(_scope_bindings(tree.body))
    sink: List[FunctionSummary] = []
    # Module scope is a function-like scope named "<module>" so that
    # module-level fan-out dispatches (fixtures, scripts) are analyzed.
    module_scope = _ScopeAnalyzer(
        qualname="<module>",
        name="<module>",
        cls="",
        node=None,
        params=(),
        body=[
            stmt
            for stmt in tree.body
            if not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
        ],
        enclosing_bound=[module_bound],
        sink=sink,
    )
    # Pretend every module-level binding is local to the module scope
    # (it is), so writes there are not misread as free writes.
    module_scope.local = module_bound
    module_scope.analyze()

    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            params = [a.arg for a in _all_args(stmt.args)]
            _ScopeAnalyzer(
                qualname=stmt.name,
                name=stmt.name,
                cls="",
                node=stmt,
                params=params,
                body=stmt.body,
                enclosing_bound=[module_bound],
                sink=sink,
            ).analyze()
        elif isinstance(stmt, ast.ClassDef):
            _analyze_class(stmt, "", [module_bound], sink)

    constants, constant_lines = _module_constants_and_lines(tree)
    classes = tuple(
        stmt.name for stmt in tree.body if isinstance(stmt, ast.ClassDef)
    )
    return FileSummary(
        path=path,
        relpkg=relpkg,
        content_hash=content_hash(source),
        module_findings=tuple(visitor.findings),
        pragmas=scan_pragmas(source),
        imports=tuple(_module_imports(tree)),
        module_bindings=tuple(sorted(module_bound)),
        module_rng_bindings=tuple(sorted(set(_module_rng_bindings(tree)))),
        constants=constants,
        constant_lines=constant_lines,
        payload=_payload_keys(tree),
        sql_literals=tuple(_sql_literals(tree)),
        functions=tuple(sink),
        classes=classes,
    )
