"""Development tooling: the ``reprolint`` static analyzer.

The paper's comparison methodology is reproducible only because every
stochastic draw and every floating-point accumulation in this codebase
is deterministic.  ``reprolint`` enforces those invariants statically,
as named, suppressible rules (REP001..REP008), so order-sensitivity
bugs are caught at lint time instead of being rediscovered whenever a
new execution path (streaming, sharding, ...) must match batch output
byte-for-byte.

Public surface:

* :func:`repro.devtools.lint.lint_paths` -- run every rule over files
  or directory trees and collect :class:`~repro.devtools.lint.Finding`s.
* :class:`repro.devtools.config.LintConfig` -- per-rule severity and
  enablement, plus ``# reprolint: disable=REPxxx`` pragma handling.
* :mod:`repro.devtools.report` -- text and JSON renderings with
  ``file:line`` anchors.
"""

from repro.devtools.config import (
    DEFAULT_RULES,
    LintConfig,
    RuleInfo,
    Severity,
)
from repro.devtools.lint import Finding, lint_paths, lint_source
from repro.devtools.report import render_json, render_text

__all__ = [
    "DEFAULT_RULES",
    "Finding",
    "LintConfig",
    "RuleInfo",
    "Severity",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
]
