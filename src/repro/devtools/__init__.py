"""Development tooling: the ``reprolint`` static analyzer.

The paper's comparison methodology is reproducible only because every
stochastic draw and every floating-point accumulation in this codebase
is deterministic.  ``reprolint`` enforces those invariants statically,
as named, suppressible rules (REP001..REP012), so order-sensitivity
bugs are caught at lint time instead of being rediscovered whenever a
new execution path (streaming, sharding, ...) must match batch output
byte-for-byte.

v2 is interprocedural: per-file summaries (:mod:`.summaries`) compose
into a module/call graph (:mod:`.graph`) that powers the cross-function
rules (:mod:`.rules_interproc`) -- fork-safety, RNG stream discipline,
cross-boundary float accumulation, and store-schema pinning.
Summaries are content-hash cached through :mod:`repro.io.artifacts`
and can be computed in parallel through :mod:`repro.parallel` -- the
linter self-hosts the machinery it audits.

Public surface:

* :func:`repro.devtools.lint.lint_paths` -- run every rule over files
  or directory trees and collect :class:`~repro.devtools.lint.Finding`s.
* :class:`repro.devtools.config.LintConfig` -- per-rule severity and
  enablement, plus ``# reprolint: disable=REPxxx`` pragma handling.
* :mod:`repro.devtools.report` -- text and JSON renderings with
  ``file:line`` anchors; :mod:`repro.devtools.sarif` -- SARIF 2.1.0
  for CI annotation.
"""

from repro.devtools.config import (
    DEFAULT_RULES,
    LintConfig,
    RuleInfo,
    Severity,
)
from repro.devtools.graph import ProjectGraph
from repro.devtools.lint import Finding, lint_paths, lint_source
from repro.devtools.report import render_json, render_text
from repro.devtools.sarif import render_sarif, write_sarif
from repro.devtools.summaries import FileSummary, summarize_source

__all__ = [
    "DEFAULT_RULES",
    "FileSummary",
    "Finding",
    "LintConfig",
    "ProjectGraph",
    "RuleInfo",
    "Severity",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_sarif",
    "render_text",
    "summarize_source",
    "write_sarif",
]
