"""Rendering lint findings as text or JSON.

The JSON shape is versioned and stable so CI and editor integrations
can depend on it:

    {"format": "reprolint", "version": 1,
     "findings": [{"rule": ..., "severity": ..., "path": ...,
                   "line": ..., "col": ..., "message": ...}, ...],
     "summary": {"total": N, "errors": N, "warnings": N,
                 "by_rule": {"REP001": N, ...}}}
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.devtools.config import DEFAULT_RULES, Severity
from repro.devtools.lint import Finding

#: Version of the JSON output shape.
JSON_FORMAT_VERSION = 1


def summarize(findings: Sequence[Finding]) -> Dict[str, object]:
    """Counts by severity and rule."""
    by_rule: Dict[str, int] = {}
    errors = 0
    warnings = 0
    for finding in findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
        if finding.severity is Severity.ERROR:
            errors += 1
        else:
            warnings += 1
    return {
        "total": len(findings),
        "errors": errors,
        "warnings": warnings,
        "by_rule": {code: by_rule[code] for code in sorted(by_rule)},
    }


def render_text(findings: Sequence[Finding]) -> str:
    """Human-oriented report: one ``path:line: RULE message`` per hit."""
    if not findings:
        return "reprolint: no findings"
    lines: List[str] = []
    for finding in findings:
        title = DEFAULT_RULES[finding.rule].title
        lines.append(
            f"{finding.anchor}:{finding.col}: "
            f"{finding.severity.value} {finding.rule} [{title}] "
            f"{finding.message}"
        )
    summary = summarize(findings)
    lines.append(
        f"reprolint: {summary['total']} finding(s) "
        f"({summary['errors']} error(s), "
        f"{summary['warnings']} warning(s))"
    )
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-oriented report; round-trips through ``json.loads``."""
    document = {
        "format": "reprolint",
        "version": JSON_FORMAT_VERSION,
        "findings": [finding.to_dict() for finding in findings],
        "summary": summarize(findings),
    }
    return json.dumps(document, indent=2, sort_keys=True)
