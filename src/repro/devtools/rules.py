"""AST visitors implementing the REP001..REP008 rules.

The single-file rules (REP001..REP005, REP007, REP008) run in one pass
per module via :class:`ModuleRuleVisitor`.  REP006 is cross-file (the checkpoint
schema pin lives in ``io/checkpoint.py`` while payload producers live
elsewhere) and is implemented by :func:`check_checkpoint_schema` over
every module parsed in the lint run.

All rules are heuristic in the way any useful linter is: they match
the syntactic shapes this codebase actually uses, and every finding
can be silenced with a ``# reprolint: disable=REPxxx`` pragma where
the human knows better (e.g. an integer-valued accumulation, where
order genuinely cannot matter).
"""

from __future__ import annotations

import ast
import dataclasses
import hashlib
import json
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.devtools.config import (
    ACCUMULATION_PACKAGES,
    OBS_PACKAGES,
    SIMULATION_PACKAGES,
)

#: Stateful module-level functions of the :mod:`random` module (draw
#: from or reset the hidden global stream).  ``random.Random`` is fine:
#: it constructs an explicitly seeded, independent generator.
RANDOM_MODULE_STATE = frozenset(
    {
        "random",
        "seed",
        "getstate",
        "setstate",
        "randint",
        "randrange",
        "randbytes",
        "getrandbits",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "betavariate",
        "binomialvariate",
        "expovariate",
        "gammavariate",
        "gauss",
        "lognormvariate",
        "normalvariate",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
    }
)

#: Wall-clock reads: ``time.<attr>`` calls that return host time.
#: ``time.perf_counter`` is deliberately absent -- durations for
#: progress reporting are harmless.
TIME_MODULE_WALLCLOCK = frozenset(
    {"time", "time_ns", "localtime", "gmtime", "ctime", "strftime"}
)

#: Wall-clock constructors on ``datetime``/``date`` objects.
DATETIME_WALLCLOCK = frozenset({"now", "today", "utcnow"})

#: Every host-clock read on the ``time`` module, monotonic sources
#: included.  REP008 quarantines all of them inside ``repro.obs`` --
#: even duration-only clocks, so the timing feeding traces and run
#: manifests has exactly one auditable home.
TIME_MODULE_HOSTTIME = TIME_MODULE_WALLCLOCK | frozenset(
    {
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "thread_time",
        "thread_time_ns",
    }
)

#: Methods of ``random.Random`` that consume the stream.
RNG_DRAW_METHODS = RANDOM_MODULE_STATE - {"seed", "getstate", "setstate"}

#: Method names whose return value is an unordered (or
#: insertion-ordered, hence path-dependent) collection view.
UNORDERED_VIEW_METHODS = frozenset({"values", "items", "unique_domains"})

#: Pool/executor methods that yield results in *completion* order --
#: never acceptable in reproducible code without an explicit pragma.
COMPLETION_ORDER_METHODS = frozenset({"imap_unordered", "as_completed"})

#: Pool/executor fan-out methods whose reduction order callers must
#: make explicit (flagged only on pool/executor-named receivers).
POOL_MAP_METHODS = frozenset(
    {"map", "imap", "starmap", "map_async", "starmap_async"}
)

#: Modules whose ``cpu_count`` reads host hardware into the run.
CPU_COUNT_MODULES = frozenset({"os", "multiprocessing"})

#: Binary set operators (``&``, ``|``, ``^``); ``-`` is excluded
#: because numeric subtraction is far more common.
_SET_BINOPS = (ast.BitAnd, ast.BitOr, ast.BitXor)


def _is_sorted_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "sorted"
    )


def _is_unordered_iterable(node: ast.AST) -> bool:
    """Heuristic: does this expression iterate in container order that
    may differ between equal-content collections?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if (
            isinstance(func, ast.Attribute)
            and func.attr in UNORDERED_VIEW_METHODS
        ):
            return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
        return True
    return False


def _is_order_free_value(node: ast.AST) -> bool:
    """True for expressions whose sum is order-independent (integers)."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, int)  # bool is an int subtype
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("int", "len", "ord", "bool")
    if isinstance(node, ast.IfExp):
        return _is_order_free_value(node.body) and _is_order_free_value(
            node.orelse
        )
    return False


def _rng_receiver(node: ast.AST) -> bool:
    """Does this expression look like a ``random.Random`` instance?"""
    if isinstance(node, ast.Name):
        return "rng" in node.id.lower()
    if isinstance(node, ast.Attribute):
        return "rng" in node.attr.lower()
    return False


def _pool_receiver(node: ast.AST) -> bool:
    """Does this expression look like a worker pool or executor?"""
    if isinstance(node, ast.Name):
        name = node.id.lower()
    elif isinstance(node, ast.Attribute):
        name = node.attr.lower()
    else:
        return False
    return "pool" in name or "executor" in name


@dataclasses.dataclass(frozen=True)
class RawFinding:
    """A rule hit before severity assignment and pragma filtering."""

    rule: str
    line: int
    col: int
    message: str


def _first_package(relpkg: Optional[str]) -> Optional[str]:
    if relpkg is None:
        return None
    return relpkg.replace("\\", "/").split("/", 1)[0]


class ModuleRuleVisitor(ast.NodeVisitor):
    """One-pass visitor for the single-file rules (REP001..REP005,
    REP007, REP008).

    Parameters
    ----------
    relpkg:
        Path of the module relative to the ``repro`` package root
        (e.g. ``"analysis/volume.py"``), or None for files outside the
        package.  Scoped rules (REP003, REP004) apply inside their
        scope packages and -- so fixtures exercise them -- to files
        outside the package entirely.  REP008 is the inverse shape: it
        applies to every file *inside* the package except the
        ``repro.obs`` quarantine, and never to outside files (whose
        host-clock reads are not this project's timing sources).
    """

    def __init__(self, relpkg: Optional[str] = None):
        first = _first_package(relpkg)
        outside = relpkg is None
        self.check_wallclock = outside or first in SIMULATION_PACKAGES
        self.check_accumulation = outside or first in ACCUMULATION_PACKAGES
        self.check_hosttime = not outside and first not in OBS_PACKAGES
        self.findings: List[RawFinding] = []
        #: Stack of loop/comprehension iterables that are unordered.
        self._unordered_loops: List[ast.AST] = []

    # -- helpers -------------------------------------------------------

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            RawFinding(
                rule=rule,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        )

    # -- REP001 / REP003: imports --------------------------------------

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            bad = sorted(
                alias.name
                for alias in node.names
                if alias.name in RANDOM_MODULE_STATE
            )
            if bad:
                self._emit(
                    "REP001",
                    node,
                    "importing module-level random state "
                    f"({', '.join(bad)}) from 'random'; derive a "
                    "per-component stream with stats.rng.derive_rng",
                )
        if node.module in CPU_COUNT_MODULES and any(
            alias.name == "cpu_count" for alias in node.names
        ):
            self._emit(
                "REP007",
                node,
                f"importing cpu_count from '{node.module}' reads host "
                "hardware into the run; core count may only set "
                "execution width (reduce results by task index)",
            )
        if node.module == "concurrent.futures" and any(
            alias.name == "as_completed" for alias in node.names
        ):
            self._emit(
                "REP007",
                node,
                "importing as_completed: iterating futures in "
                "completion order is scheduler-dependent; collect "
                "results by task index instead",
            )
        if self.check_wallclock and node.module == "time":
            bad = sorted(
                alias.name
                for alias in node.names
                if alias.name in TIME_MODULE_WALLCLOCK
            )
            if bad:
                self._emit(
                    "REP003",
                    node,
                    f"importing wall-clock function ({', '.join(bad)}) "
                    "from 'time' in simulation code; use the simulation "
                    "clock (repro.simtime)",
                )
        if self.check_hosttime and node.module == "time":
            bad = sorted(
                alias.name
                for alias in node.names
                if alias.name in TIME_MODULE_HOSTTIME
            )
            if bad:
                self._emit(
                    "REP008",
                    node,
                    f"importing host-clock function ({', '.join(bad)}) "
                    "from 'time' outside repro.obs; route timing "
                    "through repro.obs.hosttime",
                )
        self.generic_visit(node)

    # -- Calls: REP001, REP002, REP003, REP004, REP005 -----------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            self._check_attribute_call(node, func)
        elif isinstance(func, ast.Name):
            if func.id == "hash":
                self._emit(
                    "REP002",
                    node,
                    "builtin hash() is salted per process "
                    "(PYTHONHASHSEED) and must not feed seeds or "
                    "derived keys; use stats.rng.derive_seed",
                )
            elif func.id == "sum" and self.check_accumulation:
                self._check_sum(node)
            elif func.id == "as_completed":
                self._emit(
                    "REP007",
                    node,
                    "as_completed() yields futures in completion "
                    "order, which depends on OS scheduling; collect "
                    "results by task index instead",
                )
        self.generic_visit(node)

    def _check_attribute_call(
        self, node: ast.Call, func: ast.Attribute
    ) -> None:
        value = func.value
        if (
            isinstance(value, ast.Name)
            and value.id == "random"
            and func.attr in RANDOM_MODULE_STATE
        ):
            self._emit(
                "REP001",
                node,
                f"random.{func.attr}() uses the hidden module-level "
                "stream; derive a per-component stream with "
                "stats.rng.derive_rng",
            )
        if self.check_wallclock:
            if (
                isinstance(value, ast.Name)
                and value.id == "time"
                and func.attr in TIME_MODULE_WALLCLOCK
            ):
                self._emit(
                    "REP003",
                    node,
                    f"time.{func.attr}() reads the wall clock in "
                    "simulation code; use the simulation clock "
                    "(repro.simtime)",
                )
            if func.attr in DATETIME_WALLCLOCK and self._is_datetime_ref(
                value
            ):
                self._emit(
                    "REP003",
                    node,
                    f"datetime wall-clock call .{func.attr}() in "
                    "simulation code; use the simulation clock "
                    "(repro.simtime)",
                )
        if self.check_hosttime:
            if (
                isinstance(value, ast.Name)
                and value.id == "time"
                and func.attr in TIME_MODULE_HOSTTIME
            ):
                self._emit(
                    "REP008",
                    node,
                    f"time.{func.attr}() reads a host clock outside "
                    "repro.obs; route timing through "
                    "repro.obs.hosttime",
                )
            if func.attr in DATETIME_WALLCLOCK and self._is_datetime_ref(
                value
            ):
                self._emit(
                    "REP008",
                    node,
                    f"datetime host-clock call .{func.attr}() outside "
                    "repro.obs; route timing through "
                    "repro.obs.hosttime",
                )
        if (
            func.attr in RNG_DRAW_METHODS
            and _rng_receiver(value)
            and self._unordered_loops
        ):
            self._emit(
                "REP005",
                node,
                f"RNG draw .{func.attr}() while iterating an unordered "
                "collection consumes the stream in container order; "
                "iterate sorted(...) instead",
            )
        if func.attr == "cpu_count" and (
            isinstance(value, ast.Name) and value.id in CPU_COUNT_MODULES
        ):
            self._emit(
                "REP007",
                node,
                f"{value.id}.cpu_count() reads host hardware into the "
                "run; core count may only set execution width (reduce "
                "results by task index)",
            )
        if func.attr in COMPLETION_ORDER_METHODS:
            self._emit(
                "REP007",
                node,
                f".{func.attr}() yields results in completion order, "
                "which depends on OS scheduling; collect results by "
                "task index instead",
            )
        elif func.attr in POOL_MAP_METHODS and _pool_receiver(value):
            self._emit(
                "REP007",
                node,
                f".{func.attr}() on a worker pool: make the reduction "
                "order explicit (index-tagged results reassembled by "
                "task index) and record it with a pragma",
            )

    @staticmethod
    def _is_datetime_ref(node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id in ("datetime", "date")
        if isinstance(node, ast.Attribute):
            return node.attr in ("datetime", "date")
        return False

    # -- REP004: unsorted float accumulation ---------------------------

    def _check_sum(self, node: ast.Call) -> None:
        if not node.args:
            return
        arg = node.args[0]
        if _is_sorted_call(arg):
            return
        if _is_unordered_iterable(arg):
            self._emit(
                "REP004",
                node,
                "sum() over an unordered iterable accumulates floats "
                "in container order; wrap the iterable in sorted(...)",
            )
            return
        if isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
            if _is_order_free_value(arg.elt):
                return
            first = arg.generators[0]
            if _is_sorted_call(first.iter):
                return
            if _is_unordered_iterable(first.iter):
                self._emit(
                    "REP004",
                    node,
                    "sum() over a comprehension of an unordered "
                    "iterable accumulates floats in container order; "
                    "iterate sorted(...) instead",
                )

    # -- Loop tracking for REP004 (AugAssign) and REP005 ---------------

    def _loop_is_unordered(self, iter_node: ast.AST) -> bool:
        return not _is_sorted_call(iter_node) and _is_unordered_iterable(
            iter_node
        )

    def visit_For(self, node: ast.For) -> None:
        unordered = self._loop_is_unordered(node.iter)
        if unordered:
            self._unordered_loops.append(node.iter)
        self.generic_visit(node)
        if unordered:
            self._unordered_loops.pop()

    def _visit_comprehension(self, node: ast.AST) -> None:
        pushed = 0
        for comp in node.generators:  # type: ignore[attr-defined]
            if self._loop_is_unordered(comp.iter):
                self._unordered_loops.append(comp.iter)
                pushed += 1
        self.generic_visit(node)
        for _ in range(pushed):
            self._unordered_loops.pop()

    visit_GeneratorExp = _visit_comprehension
    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if (
            self.check_accumulation
            and isinstance(node.op, ast.Add)
            and self._unordered_loops
            and not _is_order_free_value(node.value)
        ):
            self._emit(
                "REP004",
                node,
                "augmented accumulation inside a loop over an "
                "unordered collection adds floats in container order; "
                "iterate sorted(...) instead",
            )
        self.generic_visit(node)


# ----------------------------------------------------------------------
# REP006: checkpoint schema pinning (cross-file)
# ----------------------------------------------------------------------

#: Constant names the schema module must declare.
SCHEMA_VERSION_NAME = "CHECKPOINT_VERSION"
SCHEMA_TABLE_NAME = "CHECKPOINT_SCHEMAS"
SCHEMA_PIN_NAME = "CHECKPOINT_SCHEMA_PIN"
#: Constant naming a payload producer's checkpoint kind.
KIND_CONST_NAME = "CHECKPOINT_KIND"
#: Function whose returned dict literal is the checkpoint payload.
PAYLOAD_FUNC_NAME = "checkpoint_payload"


def compute_schema_pin(
    version: int, schemas: Mapping[str, Sequence[str]]
) -> str:
    """The expected ``CHECKPOINT_SCHEMA_PIN`` for *version*/*schemas*.

    The pin embeds the version, so any field change forces an edit to
    the pin and makes the absent version bump visible in review.
    """
    canonical = json.dumps(
        {kind: list(fields) for kind, fields in schemas.items()},
        sort_keys=True,
        separators=(",", ":"),
    )
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]
    return f"v{version}:{digest}"


def _module_constants(tree: ast.Module) -> Dict[str, ast.AST]:
    constants: Dict[str, ast.AST] = {}
    for stmt in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if isinstance(target, ast.Name) and value is not None:
                constants[target.id] = value
    return constants


def _literal(node: ast.AST) -> object:
    try:
        return ast.literal_eval(node)
    except (ValueError, SyntaxError):
        return None


def _payload_dict_keys(tree: ast.Module) -> Optional[Tuple[int, List[str]]]:
    """(line, keys) of the dict literal returned by checkpoint_payload."""
    for node in ast.walk(tree):
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name == PAYLOAD_FUNC_NAME
        ):
            for stmt in ast.walk(node):
                if isinstance(stmt, ast.Return) and isinstance(
                    stmt.value, ast.Dict
                ):
                    keys = [
                        key.value
                        for key in stmt.value.keys
                        if isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                    ]
                    return stmt.value.lineno, keys
    return None


def check_checkpoint_schema(
    modules: Mapping[str, ast.Module],
) -> Dict[str, List[RawFinding]]:
    """Run REP006 over every parsed module of the lint run.

    Returns findings keyed by file path.  The *schema module* is any
    module declaring ``CHECKPOINT_SCHEMA_PIN``; *payload producers*
    are modules declaring both ``CHECKPOINT_KIND`` and a
    ``checkpoint_payload`` function returning a dict literal.
    """
    findings: Dict[str, List[RawFinding]] = {}

    def emit(path: str, line: int, message: str) -> None:
        findings.setdefault(path, []).append(
            RawFinding(rule="REP006", line=line, col=0, message=message)
        )

    schema_path: Optional[str] = None
    schemas: Mapping[str, Sequence[str]] = {}
    for path in sorted(modules):
        tree = modules[path]
        constants = _module_constants(tree)
        pin_node = constants.get(SCHEMA_PIN_NAME)
        if pin_node is None:
            continue
        schema_path = path
        version_node = constants.get(SCHEMA_VERSION_NAME)
        table_node = constants.get(SCHEMA_TABLE_NAME)
        pin = _literal(pin_node)
        version = _literal(version_node) if version_node else None
        table = _literal(table_node) if table_node else None
        if not isinstance(version, int):
            emit(
                path,
                pin_node.lineno,
                f"{SCHEMA_PIN_NAME} declared without an integer "
                f"{SCHEMA_VERSION_NAME}",
            )
            continue
        if not isinstance(table, dict) or not all(
            isinstance(kind, str)
            and isinstance(fields, (list, tuple))
            and all(isinstance(f, str) for f in fields)
            for kind, fields in table.items()
        ):
            emit(
                path,
                pin_node.lineno,
                f"{SCHEMA_PIN_NAME} declared without a literal "
                f"{SCHEMA_TABLE_NAME} mapping kind -> field names",
            )
            continue
        schemas = table
        expected = compute_schema_pin(version, table)
        if pin != expected:
            emit(
                path,
                pin_node.lineno,
                "checkpoint schema fields changed without a version "
                f"bump: {SCHEMA_PIN_NAME} is {pin!r} but the declared "
                f"schemas pin to {expected!r}; bump "
                f"{SCHEMA_VERSION_NAME} and re-pin (see "
                "'python -m repro lint --schema-pin')",
            )
        break

    for path in sorted(modules):
        tree = modules[path]
        constants = _module_constants(tree)
        kind_node = constants.get(KIND_CONST_NAME)
        payload = _payload_dict_keys(tree)
        if kind_node is None or payload is None:
            continue
        kind = _literal(kind_node)
        if not isinstance(kind, str):
            continue
        line, keys = payload
        if schema_path is None:
            continue  # no schema module in this lint run; nothing to pin against
        declared = schemas.get(kind)
        if declared is None:
            emit(
                path,
                kind_node.lineno,
                f"checkpoint kind {kind!r} has no entry in "
                f"{SCHEMA_TABLE_NAME} ({schema_path})",
            )
            continue
        if sorted(keys) != sorted(declared):
            emit(
                path,
                line,
                f"checkpoint payload fields {sorted(keys)} do not match "
                f"the pinned schema {sorted(declared)} for kind "
                f"{kind!r}; update {SCHEMA_TABLE_NAME} in "
                f"{schema_path}, bump {SCHEMA_VERSION_NAME}, and re-pin",
            )
    return findings
