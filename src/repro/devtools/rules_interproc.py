"""Interprocedural rules REP009-REP012, run over the project graph.

Phase 3 of the v2 engine: given every file summary of a run, build a
:class:`~repro.devtools.graph.ProjectGraph` and check the properties
no single-file pass can see:

* **REP009 fork-safety** -- from every ``ordered_fanout`` dispatch,
  walk the call graph of its task roots and flag writes to globals,
  closed-over objects, and module-level mutables: in forked workers
  those writes land in a copy-on-write child and vanish.
* **REP010 RNG stream discipline** -- in the same reachable set, flag
  draws whose receiver is a module-level or closed-over RNG, call
  sites that pass such a stream into a drawing callee, and method
  calls on shared objects whose methods draw from a sequential
  ``self``-attribute stream (the mail-oracle bug class).
* **REP011 cross-boundary float accumulation** -- ``sum()`` over the
  result of a helper that (transitively) returns an unordered
  collection, the interprocedural extension of REP004.
* **REP012 store-schema discipline** -- SQL strings checked against
  the column tuples pinned by ``STORE_SCHEMA_PIN``.

Findings are keyed by file path, in the same ``RawFinding`` currency
as the single-file rules; the engine merges, suppresses, and sorts.
"""

from __future__ import annotations

import re
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.devtools.config import ACCUMULATION_PACKAGES
from repro.devtools.graph import FanoutBoundary, FuncId, ProjectGraph
from repro.devtools.rules import RawFinding, compute_schema_pin
from repro.devtools.summaries import (
    MUTATING_METHODS,
    FileSummary,
    FunctionSummary,
)

# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


def run_interproc_rules(
    summaries: Sequence[FileSummary],
) -> Dict[str, List[RawFinding]]:
    """All interprocedural findings for one lint run, keyed by path."""
    graph = ProjectGraph(summaries)
    findings: Dict[str, List[RawFinding]] = {}

    def emit(path: str, rule: str, line: int, col: int, message: str) -> None:
        findings.setdefault(path, []).append(
            RawFinding(rule=rule, line=line, col=col, message=message)
        )

    _check_fanout_reachable(graph, emit)
    _check_sum_over_helpers(graph, emit)
    _check_store_schema(summaries, emit)
    return findings


# ----------------------------------------------------------------------
# REP009 + REP010: properties of the fan-out reachable set
# ----------------------------------------------------------------------


def _check_fanout_reachable(graph: ProjectGraph, emit) -> None:
    """Walk each fan-out boundary once; REP009 and REP010 share it."""
    seen: Set[Tuple[str, str, int, str]] = set()

    def emit_once(
        path: str, rule: str, line: int, col: int, key: str, message: str
    ) -> None:
        dedup = (path, rule, line, key)
        if dedup in seen:
            return
        seen.add(dedup)
        emit(path, rule, line, col, message)

    for _caller, boundary in graph.fanout_boundaries():
        origin = graph.reachable_from(boundary.roots)
        for func in sorted(origin):
            summary = graph.summary_of(func)
            path = graph.path_of(func)
            _rep009_function(
                graph, boundary, origin, func, summary, path, emit_once
            )
            _rep010_function(
                graph, boundary, origin, func, summary, path, emit_once
            )


def _via(boundary: FanoutBoundary, func: FuncId, root: FuncId) -> str:
    """Human trail: which fan-out made this function parallel."""
    suffix = "" if func == root else f" via task '{root[1]}'"
    return (
        f"reachable from the parallel fan-out at "
        f"{boundary.anchor}{suffix}"
    )


def _rep009_function(
    graph: ProjectGraph,
    boundary: FanoutBoundary,
    origin: Dict[FuncId, FuncId],
    func: FuncId,
    summary: FunctionSummary,
    path: str,
    emit_once,
) -> None:
    root = origin[func]
    for write in summary.free_writes:
        if write.how == "global-assign":
            what = f"assigns the module global '{write.name}'"
        elif write.how == "nonlocal-assign":
            what = f"rebinds the enclosing-scope name '{write.name}'"
        else:
            what = f"mutates the shared object '{write.name}'"
        emit_once(
            path,
            "REP009",
            write.line,
            write.col,
            f"write:{write.name}",
            f"'{summary.qualname}' {what} but is "
            f"{_via(boundary, func, root)}; forked workers write to a "
            f"copy -- return the state from the task instead",
        )
    # Mutating method calls on module-level objects arrive as attr
    # calls; separate them from namespace calls (obs.add) by checking
    # the receiver root against the module's imports.
    module_summary = graph.modules[func[0]]
    aliases = {entry.alias for entry in module_summary.imports}
    for ref in summary.calls:
        if (
            ref.kind == "attr"
            and ref.base_kind == "module"
            and ref.name in MUTATING_METHODS
        ):
            receiver_root = ref.base.split(".")[0]
            if receiver_root in aliases or receiver_root in graph.modules:
                continue
            emit_once(
                path,
                "REP009",
                ref.line,
                ref.col,
                f"write:{ref.base}",
                f"'{summary.qualname}' calls {ref.base}.{ref.name}() on a "
                f"module-level object but is {_via(boundary, func, root)}; "
                f"forked workers mutate a copy -- return the state from "
                f"the task instead",
            )


def _rep010_function(
    graph: ProjectGraph,
    boundary: FanoutBoundary,
    origin: Dict[FuncId, FuncId],
    func: FuncId,
    summary: FunctionSummary,
    path: str,
    emit_once,
) -> None:
    root = origin[func]
    # (a) Direct draws on module-level or closed-over streams.
    for draw in summary.rng_draws:
        if draw.origin in ("module", "free"):
            where = (
                "module-level"
                if draw.origin == "module"
                else "closed-over"
            )
            emit_once(
                path,
                "REP010",
                draw.line,
                draw.col,
                f"draw:{draw.receiver}",
                f"'{summary.qualname}' draws {draw.receiver}."
                f"{draw.method}() from a {where} RNG stream but is "
                f"{_via(boundary, func, root)}; the stream position "
                f"depends on task interleaving -- derive a per-task "
                f"stream with derive_rng instead",
            )
    # (b) Call sites that feed a shared stream into a drawing callee.
    for ref in summary.calls:
        if not ref.rng_args:
            continue
        for target in graph.resolve_call(func, ref, dynamic=False):
            if target not in origin:
                continue
            callee = graph.summary_of(target)
            offset = 1 if callee.cls and ref.kind != "name" else 0
            param_draws = {
                draw.receiver
                for draw in callee.rng_draws
                if draw.origin == "param"
            }
            if not param_draws:
                continue
            for position, arg_origin, arg_name in ref.rng_args:
                index = position + offset
                if index >= len(callee.params):
                    continue
                if callee.params[index] not in param_draws:
                    continue
                if arg_origin in ("module", "free"):
                    where = (
                        "module-level"
                        if arg_origin == "module"
                        else "closed-over"
                    )
                    emit_once(
                        path,
                        "REP010",
                        ref.line,
                        ref.col,
                        f"pass:{arg_name}:{target[1]}",
                        f"'{summary.qualname}' passes the {where} RNG "
                        f"'{arg_name}' into '{target[1]}', which draws "
                        f"from it, and is {_via(boundary, func, root)}; "
                        f"derive a per-task stream with derive_rng "
                        f"instead",
                    )
    # (c) Method calls on shared objects whose methods draw from a
    # sequential self-attribute stream (oracle.observe(...) where the
    # oracle keeps self.rng from construction time).  Closed-over
    # receivers arrive as method calls; module-level receivers as attr
    # calls, which must first be separated from namespace calls.
    module_summary = graph.modules[func[0]]
    aliases = {entry.alias for entry in module_summary.imports}
    for ref in summary.calls:
        if ref.kind == "method" and ref.base_kind in ("free", "module"):
            pass
        elif ref.kind == "attr" and ref.base_kind == "module":
            receiver_root = ref.base.split(".")[0]
            if receiver_root in aliases or receiver_root in graph.modules:
                continue
        else:
            continue
        for target in graph.methods_named(ref.name):
            callee = graph.summary_of(target)
            if any(d.origin == "self" for d in callee.rng_draws):
                emit_once(
                    path,
                    "REP010",
                    ref.line,
                    ref.col,
                    f"shared:{ref.base}.{ref.name}",
                    f"'{summary.qualname}' calls {ref.base}.{ref.name}() "
                    f"on a shared object and '{target[1]}' draws from a "
                    f"sequential self-attribute stream; the call is "
                    f"{_via(boundary, func, root)}, so draws depend on "
                    f"task order -- derive a per-call stream keyed by "
                    f"the task instead",
                )
                break


# ----------------------------------------------------------------------
# REP011: sum() over unordered helper results
# ----------------------------------------------------------------------


def _accumulation_scope(relpkg: Optional[str]) -> bool:
    """Same scope gate as REP004: accumulation packages + outside files."""
    if relpkg is None:
        return True
    top = relpkg.replace("\\", "/").split("/")[0]
    return top in ACCUMULATION_PACKAGES


def _check_sum_over_helpers(graph: ProjectGraph, emit) -> None:
    for module in sorted(graph.modules):
        summary = graph.modules[module]
        if not _accumulation_scope(summary.relpkg):
            continue
        for fn in summary.functions:
            caller = (module, fn.qualname)
            for site in fn.sums_over_calls:
                targets = graph.resolve_call(
                    caller, site.callee, dynamic=False
                )
                for target in targets:
                    if graph.returns_unordered(target):
                        emit(
                            summary.path,
                            "REP011",
                            site.line,
                            site.col,
                            f"sum() accumulates floats over the result "
                            f"of '{target[1]}', which returns an "
                            f"unordered collection; wrap the call in "
                            f"sorted(...) or return a sorted sequence",
                        )
                        break


# ----------------------------------------------------------------------
# REP012: store SQL vs the pinned schema
# ----------------------------------------------------------------------

#: Constant names the store schema module must declare.
STORE_VERSION_NAME = "STORE_VERSION"
STORE_TABLE_NAME = "STORE_SCHEMA_COLUMNS"
STORE_PIN_NAME = "STORE_SCHEMA_PIN"

_CREATE_TABLE_RE = re.compile(
    r"CREATE\s+TABLE(?:\s+IF\s+NOT\s+EXISTS)?\s+(\w+)\s*\(",
    re.IGNORECASE,
)
_CREATE_INDEX_RE = re.compile(
    r"CREATE\s+(?:UNIQUE\s+)?INDEX(?:\s+IF\s+NOT\s+EXISTS)?\s+\w+\s+"
    r"ON\s+(\w+)\s*\(([^)]*)\)",
    re.IGNORECASE,
)
_INSERT_RE = re.compile(
    r"INSERT(?:\s+OR\s+\w+)?\s+INTO\s+(\w+)\s*\(([^)]*)\)",
    re.IGNORECASE,
)
_SELECT_RE = re.compile(
    r"SELECT\s+(.*?)\s+FROM\s+(\w+)",
    re.IGNORECASE | re.DOTALL,
)

#: Leading keywords of table-level constraint clauses inside a CREATE
#: TABLE body (not column definitions).
_CONSTRAINT_STARTERS = frozenset(
    {"PRIMARY", "FOREIGN", "UNIQUE", "CHECK", "CONSTRAINT"}
)

_IDENT_RE = re.compile(r"[A-Za-z_]\w*\Z")


def _split_top_level(text: str) -> List[str]:
    """Split on commas not nested inside parentheses."""
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for char in text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    parts.append("".join(current))
    return [part.strip() for part in parts if part.strip()]


def _create_table_columns(text: str, start: int) -> Tuple[str, ...]:
    """Column names of a CREATE TABLE body starting at *start* ('(')."""
    depth = 0
    for index in range(start, len(text)):
        if text[index] == "(":
            depth += 1
        elif text[index] == ")":
            depth -= 1
            if depth == 0:
                body = text[start + 1 : index]
                break
    else:
        return ()
    columns: List[str] = []
    for segment in _split_top_level(body):
        first = segment.split()[0]
        if first.upper() in _CONSTRAINT_STARTERS:
            continue
        columns.append(first)
    return tuple(columns)


def _check_store_schema(
    summaries: Sequence[FileSummary], emit
) -> None:
    for summary in summaries:
        constants = summary.constants
        if STORE_PIN_NAME not in constants:
            continue
        pin = constants[STORE_PIN_NAME]
        pin_line = summary.constant_lines.get(STORE_PIN_NAME, 1)
        version = constants.get(STORE_VERSION_NAME)
        table = constants.get(STORE_TABLE_NAME)
        if not isinstance(version, int) or isinstance(version, bool):
            emit(
                summary.path,
                "REP012",
                pin_line,
                0,
                f"{STORE_PIN_NAME} declared without an integer "
                f"{STORE_VERSION_NAME}",
            )
            continue
        declared = _declared_columns(table)
        if declared is None:
            emit(
                summary.path,
                "REP012",
                pin_line,
                0,
                f"{STORE_PIN_NAME} declared without a literal "
                f"{STORE_TABLE_NAME} mapping table -> column names",
            )
            continue
        expected = compute_schema_pin(version, declared)
        if pin != expected:
            emit(
                summary.path,
                "REP012",
                pin_line,
                0,
                f"store schema drifted without a pin bump: "
                f"{STORE_PIN_NAME} is {pin!r} but the declared tables "
                f"pin to {expected!r}; bump {STORE_VERSION_NAME} and "
                f"re-pin",
            )
        _check_sql_literals(summary, declared, emit)


def _declared_columns(
    table: object,
) -> Optional[Dict[str, Tuple[str, ...]]]:
    if not isinstance(table, Mapping):
        return None
    declared: Dict[str, Tuple[str, ...]] = {}
    for name, columns in table.items():
        if not isinstance(name, str):
            return None
        if not isinstance(columns, (tuple, list)) or not all(
            isinstance(column, str) for column in columns
        ):
            return None
        declared[name] = tuple(columns)
    return declared


def _check_sql_literals(
    summary: FileSummary,
    declared: Dict[str, Tuple[str, ...]],
    emit,
) -> None:
    for literal in summary.sql_literals:
        text = literal.text
        for match in _CREATE_TABLE_RE.finditer(text):
            name = match.group(1)
            if name not in declared:
                emit(
                    summary.path,
                    "REP012",
                    literal.line,
                    0,
                    f"CREATE TABLE {name} is not declared in "
                    f"{STORE_TABLE_NAME}; add it and re-pin",
                )
                continue
            columns = _create_table_columns(text, match.end() - 1)
            if columns != declared[name]:
                emit(
                    summary.path,
                    "REP012",
                    literal.line,
                    0,
                    f"CREATE TABLE {name} columns {list(columns)} do "
                    f"not match the pinned "
                    f"{STORE_TABLE_NAME}[{name!r}] = "
                    f"{list(declared[name])}; bump "
                    f"{STORE_VERSION_NAME} and re-pin",
                )
        for match in _CREATE_INDEX_RE.finditer(text):
            name = match.group(1)
            if name not in declared:
                emit(
                    summary.path,
                    "REP012",
                    literal.line,
                    0,
                    f"CREATE INDEX on undeclared table {name}; add it "
                    f"to {STORE_TABLE_NAME} and re-pin",
                )
                continue
            for column in _split_top_level(match.group(2)):
                if _IDENT_RE.match(column) and column not in declared[name]:
                    emit(
                        summary.path,
                        "REP012",
                        literal.line,
                        0,
                        f"index column '{column}' is not a pinned "
                        f"column of {name}",
                    )
        for match in _INSERT_RE.finditer(text):
            name = match.group(1)
            if name not in declared:
                emit(
                    summary.path,
                    "REP012",
                    literal.line,
                    0,
                    f"INSERT INTO undeclared table {name}; add it to "
                    f"{STORE_TABLE_NAME} and re-pin",
                )
                continue
            for column in _split_top_level(match.group(2)):
                if _IDENT_RE.match(column) and column not in declared[name]:
                    emit(
                        summary.path,
                        "REP012",
                        literal.line,
                        0,
                        f"INSERT column '{column}' is not a pinned "
                        f"column of {name}",
                    )
        for match in _SELECT_RE.finditer(text):
            items, name = match.group(1), match.group(2)
            if name not in declared:
                emit(
                    summary.path,
                    "REP012",
                    literal.line,
                    0,
                    f"SELECT from undeclared table {name}; add it to "
                    f"{STORE_TABLE_NAME} and re-pin",
                )
                continue
            for item in _split_top_level(items):
                if _IDENT_RE.match(item) and item not in declared[name]:
                    emit(
                        summary.path,
                        "REP012",
                        literal.line,
                        0,
                        f"SELECT column '{item}' is not a pinned "
                        f"column of {name}",
                    )
