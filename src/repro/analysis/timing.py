"""Timing analysis (Section 4.4, Figures 9-12).

Lacking ground truth about when campaigns really start and end, the
paper defines *campaign start* as a domain's earliest appearance across
a chosen set of feeds and *campaign end* as its latest appearance across
the live-mail feeds, then measures each feed's latency and estimation
error against those aggregates.  All analyses run over tagged domains
(highest-confidence provenance) unless told otherwise.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set

from repro.analysis.context import FeedComparison
from repro.simtime import SimTime


@dataclasses.dataclass(frozen=True)
class BoxStats:
    """Box-plot summary of a latency/error distribution (in minutes)."""

    n: int
    p5: float
    p25: float
    median: float
    p75: float
    p95: float
    mean: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "BoxStats":
        """Summarize *values*; raises on an empty sample."""
        if not values:
            raise ValueError("cannot summarize an empty sample")
        ordered = sorted(values)
        return cls(
            n=len(ordered),
            p5=_percentile(ordered, 0.05),
            p25=_percentile(ordered, 0.25),
            median=_percentile(ordered, 0.50),
            p75=_percentile(ordered, 0.75),
            p95=_percentile(ordered, 0.95),
            mean=sum(ordered) / len(ordered),
        )

    def scaled(self, divisor: float) -> "BoxStats":
        """The same stats in different units (e.g. minutes -> days)."""
        return BoxStats(
            n=self.n,
            p5=self.p5 / divisor,
            p25=self.p25 / divisor,
            median=self.median / divisor,
            p75=self.p75 / divisor,
            p95=self.p95 / divisor,
            mean=self.mean / divisor,
        )


def _resolve_reference_feeds(
    measured_feeds: Sequence[str],
    reference_feeds: Optional[Sequence[str]],
) -> List[str]:
    """The reference aggregate for a timing figure.

    ``None`` means "default to the measured feeds themselves"
    (Figure 10's honeypot-relative variant).  An explicitly passed
    *empty* reference set is a caller bug -- treating it as the default
    would silently change what the figure measures -- so it raises
    instead of being coerced.
    """
    if reference_feeds is None:
        return list(measured_feeds)
    refs = list(reference_feeds)
    if not refs:
        raise ValueError(
            "reference_feeds must be non-empty; pass None to default "
            "to the measured feeds"
        )
    return refs


def _percentile(ordered: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of an already-sorted sample."""
    if not ordered:
        raise ValueError("empty sample")
    if len(ordered) == 1:
        return float(ordered[0])
    position = q * (len(ordered) - 1)
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return float(ordered[low])
    weight = position - low
    low_val = float(ordered[low])
    high_val = float(ordered[high])
    # a + (b - a) * w is exact on ties and monotone in w; the clamp
    # keeps one-ulp rounding inside the segment so percentiles never
    # escape the sample range.
    interpolated = low_val + (high_val - low_val) * weight
    return min(max(interpolated, low_val), high_val)


# ----------------------------------------------------------------------
# Aggregate reference times
# ----------------------------------------------------------------------


def feed_first_seen(
    comparison: FeedComparison, feed: str, domains: Set[str]
) -> Dict[str, SimTime]:
    """First sighting per domain within one feed, restricted to *domains*."""
    first = comparison.datasets[feed].first_seen()
    return {d: t for d, t in first.items() if d in domains}


def feed_last_seen(
    comparison: FeedComparison, feed: str, domains: Set[str]
) -> Dict[str, SimTime]:
    """Last sighting per domain within one feed, restricted to *domains*."""
    last = comparison.datasets[feed].last_seen()
    return {d: t for d, t in last.items() if d in domains}


def campaign_start_times(
    comparison: FeedComparison,
    reference_feeds: Sequence[str],
    domains: Iterable[str],
) -> Dict[str, SimTime]:
    """Campaign start: earliest appearance across *reference_feeds*."""
    keyset = set(domains)
    starts: Dict[str, SimTime] = {}
    for feed in reference_feeds:
        for domain, t in comparison.datasets[feed].first_seen().items():
            if domain not in keyset:
                continue
            prev = starts.get(domain)
            if prev is None or t < prev:
                starts[domain] = t
    return starts


def campaign_end_times(
    comparison: FeedComparison,
    reference_feeds: Sequence[str],
    domains: Iterable[str],
) -> Dict[str, SimTime]:
    """Campaign end: latest appearance across *reference_feeds*."""
    keyset = set(domains)
    ends: Dict[str, SimTime] = {}
    for feed in reference_feeds:
        for domain, t in comparison.datasets[feed].last_seen().items():
            if domain not in keyset:
                continue
            prev = ends.get(domain)
            if prev is None or t > prev:
                ends[domain] = t
    return ends


# ----------------------------------------------------------------------
# Figures 9-12
# ----------------------------------------------------------------------


def first_appearance_latencies(
    comparison: FeedComparison,
    measured_feeds: Sequence[str],
    reference_feeds: Optional[Sequence[str]] = None,
    kind: str = "tagged",
) -> Dict[str, BoxStats]:
    """Figures 9/10: relative first-appearance time per feed.

    For each feed, over the domains it shares with the reference
    aggregate, measures ``first_seen_in_feed - campaign_start``.
    *reference_feeds* defaults to the measured feeds themselves
    (Figure 10's honeypot-relative variant); Figure 9 passes all feeds
    except Bot as the reference.
    """
    refs = _resolve_reference_feeds(measured_feeds, reference_feeds)
    union: Set[str] = set()
    for feed in measured_feeds:
        union |= _kind_domains(comparison, feed, kind)
    starts = campaign_start_times(comparison, refs, union)

    stats: Dict[str, BoxStats] = {}
    for feed in measured_feeds:
        domains = _kind_domains(comparison, feed, kind)
        firsts = feed_first_seen(comparison, feed, domains)
        latencies = [
            float(firsts[d] - starts[d])
            for d in firsts
            if d in starts
        ]
        if latencies:
            stats[feed] = BoxStats.from_values(latencies)
    return stats


def last_appearance_gaps(
    comparison: FeedComparison,
    measured_feeds: Sequence[str],
    reference_feeds: Optional[Sequence[str]] = None,
    kind: str = "tagged",
) -> Dict[str, BoxStats]:
    """Figure 11: gap between a feed's last sighting and campaign end."""
    refs = _resolve_reference_feeds(measured_feeds, reference_feeds)
    union: Set[str] = set()
    for feed in measured_feeds:
        union |= _kind_domains(comparison, feed, kind)
    ends = campaign_end_times(comparison, refs, union)

    stats: Dict[str, BoxStats] = {}
    for feed in measured_feeds:
        domains = _kind_domains(comparison, feed, kind)
        lasts = feed_last_seen(comparison, feed, domains)
        gaps = [
            float(ends[d] - lasts[d])
            for d in lasts
            if d in ends
        ]
        if gaps:
            stats[feed] = BoxStats.from_values(gaps)
    return stats


def duration_errors(
    comparison: FeedComparison,
    measured_feeds: Sequence[str],
    reference_feeds: Optional[Sequence[str]] = None,
    kind: str = "tagged",
) -> Dict[str, BoxStats]:
    """Figure 12: campaign-duration underestimation per feed.

    Campaign duration (end minus start, both from the reference
    aggregate) is always at least a feed's in-feed domain lifetime; the
    statistic is the difference.
    """
    refs = _resolve_reference_feeds(measured_feeds, reference_feeds)
    union: Set[str] = set()
    for feed in measured_feeds:
        union |= _kind_domains(comparison, feed, kind)
    starts = campaign_start_times(comparison, refs, union)
    ends = campaign_end_times(comparison, refs, union)

    stats: Dict[str, BoxStats] = {}
    for feed in measured_feeds:
        domains = _kind_domains(comparison, feed, kind)
        firsts = feed_first_seen(comparison, feed, domains)
        lasts = feed_last_seen(comparison, feed, domains)
        errors: List[float] = []
        for domain in firsts:
            if domain not in starts or domain not in ends:
                continue
            duration = ends[domain] - starts[domain]
            lifetime = lasts[domain] - firsts[domain]
            errors.append(float(duration - lifetime))
        if errors:
            stats[feed] = BoxStats.from_values(errors)
    return stats


def _kind_domains(
    comparison: FeedComparison, feed: str, kind: str
) -> Set[str]:
    if kind == "tagged":
        return comparison.tagged_domains(feed)
    if kind == "live":
        return comparison.live_domains(feed)
    if kind == "all":
        return comparison.unique_domains(feed)
    raise ValueError(f"unknown domain kind {kind!r}")
