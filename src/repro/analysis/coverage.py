"""Coverage analysis (Section 4.2, Table 3, Figures 1 and 2).

Coverage asks how many spam domains a feed contains; the interesting
refinements are *exclusive* contribution (domains no other feed has) and
*pairwise* overlap (how much of feed B is already inside feed A).
"""

from __future__ import annotations

import dataclasses
import math
from collections import Counter
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.context import FeedComparison

#: The three domain universes coverage is computed over.
DOMAIN_KINDS = ("all", "live", "tagged")


def domain_sets(
    comparison: FeedComparison,
    kind: str,
    feeds: Optional[Sequence[str]] = None,
) -> Dict[str, Set[str]]:
    """Per-feed domain sets of the requested *kind*."""
    names = list(feeds) if feeds is not None else comparison.feed_names
    if kind == "all":
        return {n: comparison.unique_domains(n) for n in names}
    if kind == "live":
        return {n: comparison.live_domains(n) for n in names}
    if kind == "tagged":
        return {n: comparison.tagged_domains(n) for n in names}
    raise ValueError(f"unknown domain kind {kind!r}")


def exclusive_counts(sets: Mapping[str, Set[str]]) -> Dict[str, int]:
    """Number of domains exclusive to each feed.

    A domain is exclusive when it occurs in exactly one feed
    (Section 4.2.1).
    """
    occurrences: Counter[str] = Counter()
    for members in sets.values():
        occurrences.update(members)
    singles = {d for d, count in occurrences.items() if count == 1}
    return {
        name: len(members & singles) for name, members in sets.items()
    }


@dataclasses.dataclass(frozen=True)
class CoverageRow:
    """One feed's Table 3 row."""

    feed: str
    total_all: int
    exclusive_all: int
    total_live: int
    exclusive_live: int
    total_tagged: int
    exclusive_tagged: int


def coverage_table(
    comparison: FeedComparison,
    feeds: Optional[Sequence[str]] = None,
) -> List[CoverageRow]:
    """Table 3: total and exclusive domain counts per feed."""
    names = list(feeds) if feeds is not None else comparison.feed_names
    rows: List[CoverageRow] = []
    by_kind = {
        kind: domain_sets(comparison, kind, names) for kind in DOMAIN_KINDS
    }
    exclusives = {
        kind: exclusive_counts(by_kind[kind]) for kind in DOMAIN_KINDS
    }
    for name in names:
        rows.append(
            CoverageRow(
                feed=name,
                total_all=len(by_kind["all"][name]),
                exclusive_all=exclusives["all"][name],
                total_live=len(by_kind["live"][name]),
                exclusive_live=exclusives["live"][name],
                total_tagged=len(by_kind["tagged"][name]),
                exclusive_tagged=exclusives["tagged"][name],
            )
        )
    return rows


def exclusivity_summary(
    comparison: FeedComparison, kind: str = "live"
) -> Dict[str, float]:
    """Overall exclusivity: what fraction of the union is single-feed?

    The paper reports 60% of live and 19% of tagged domains exclusive.
    """
    sets = domain_sets(comparison, kind)
    occurrences: Counter[str] = Counter()
    for members in sets.values():
        occurrences.update(members)
    total = len(occurrences)
    exclusive = sum(1 for c in occurrences.values() if c == 1)
    return {
        "total": total,
        "exclusive": exclusive,
        "fraction": exclusive / total if total else 0.0,
    }


@dataclasses.dataclass(frozen=True)
class ScatterPoint:
    """One feed's position in Figure 1 (log10 scales)."""

    feed: str
    distinct: int
    exclusive: int

    @property
    def log_distinct(self) -> float:
        """log10 of the distinct-domain count (x axis)."""
        return math.log10(self.distinct) if self.distinct > 0 else 0.0

    @property
    def log_exclusive(self) -> float:
        """log10 of the exclusive-domain count (y axis)."""
        return math.log10(self.exclusive) if self.exclusive > 0 else 0.0

    @property
    def exclusive_fraction(self) -> float:
        """Share of the feed's distinct domains that are exclusive."""
        return self.exclusive / self.distinct if self.distinct else 0.0


def exclusive_scatter(
    comparison: FeedComparison,
    kind: str,
    feeds: Optional[Sequence[str]] = None,
) -> List[ScatterPoint]:
    """Figure 1 data: distinct vs. exclusive domains per feed."""
    sets = domain_sets(comparison, kind, feeds)
    exclusives = exclusive_counts(sets)
    return [
        ScatterPoint(
            feed=name, distinct=len(members), exclusive=exclusives[name]
        )
        for name, members in sets.items()
    ]


class OverlapMatrix:
    """Pairwise feed intersection (Figure 2).

    For row A and column B the cell holds ``|A ∩ B|`` and the fraction
    ``|A ∩ B| / |B|`` -- how much of feed B is covered by feed A.  The
    extra ``All`` column compares each feed against the union.
    """

    ALL = "All"

    def __init__(self, sets: Mapping[str, Set[str]]):
        self.feeds: List[str] = list(sets)
        self._sets: Dict[str, Set[str]] = {k: set(v) for k, v in sets.items()}
        union: Set[str] = set()
        for members in self._sets.values():
            union |= members
        self._union = union

    @property
    def union_size(self) -> int:
        """Size of the all-feed union."""
        return len(self._union)

    def column_domains(self, column: str) -> Set[str]:
        """The domain set a column denotes (a feed or the union)."""
        if column == self.ALL:
            return self._union
        return self._sets[column]

    def intersection(self, row: str, column: str) -> int:
        """``|row ∩ column|``."""
        return len(self._sets[row] & self.column_domains(column))

    def fraction(self, row: str, column: str) -> float:
        """``|row ∩ column| / |column|`` (0 when the column is empty)."""
        denominator = len(self.column_domains(column))
        if denominator == 0:
            return 0.0
        return self.intersection(row, column) / denominator

    def cell(self, row: str, column: str) -> Tuple[float, int]:
        """(fraction-of-column, absolute-intersection) for one cell."""
        return self.fraction(row, column), self.intersection(row, column)

    def columns(self) -> List[str]:
        """Column labels: every feed plus the All column."""
        return self.feeds + [self.ALL]

    def union_coverage(self, feed: str) -> float:
        """Fraction of the union this feed covers (its All-column cell)."""
        return self.fraction(feed, self.ALL)

    def combined_coverage(self, feeds: Iterable[str]) -> float:
        """Union coverage of several feeds together.

        E.g. the paper notes Hu and Hyb jointly cover 98% of live
        domains.
        """
        combined: Set[str] = set()
        for feed in feeds:
            combined |= self._sets[feed]
        if not self._union:
            return 0.0
        return len(combined & self._union) / len(self._union)


def pairwise_overlap(
    comparison: FeedComparison,
    kind: str,
    feeds: Optional[Sequence[str]] = None,
) -> OverlapMatrix:
    """Figure 2: the pairwise intersection matrix for *kind* domains."""
    return OverlapMatrix(domain_sets(comparison, kind, feeds))
