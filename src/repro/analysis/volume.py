"""Volume coverage via the incoming mail oracle (Section 4.2.2, Figure 3).

Domain counts ignore how often each domain is actually mailed; volume
coverage weighs each feed's live/tagged domains by the message volume a
large webmail provider observed.  The Alexa/ODP domains excluded by the
impurity-removal step are reported as a separate stacked component --
before exclusion they dominate the live-domain volume of most feeds.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Set

from repro.analysis.context import FeedComparison


@dataclasses.dataclass(frozen=True)
class VolumeCoverageRow:
    """One feed's Figure 3 bar (fractions of the total oracle volume)."""

    feed: str
    covered_fraction: float
    benign_fraction: float

    @property
    def stacked_total(self) -> float:
        """Height of the full stacked bar."""
        return self.covered_fraction + self.benign_fraction


def _oracle_volumes(
    comparison: FeedComparison, domains: Set[str]
) -> Dict[str, float]:
    return comparison.mail.query(domains)


def volume_coverage(
    comparison: FeedComparison,
    kind: str = "live",
    feeds: Optional[Sequence[str]] = None,
) -> List[VolumeCoverageRow]:
    """Figure 3: per-feed volume coverage for live or tagged domains.

    The denominator is the oracle volume over the union of every feed's
    *kind* domains plus the union of the benign (Alexa/ODP) domains that
    the removal step excluded from that universe -- i.e. the total
    volume of everything that would have counted before exclusion.
    """
    if kind not in ("live", "tagged"):
        raise ValueError(f"volume coverage is defined for live/tagged, not {kind!r}")
    names = list(feeds) if feeds is not None else comparison.feed_names

    if kind == "live":
        feed_sets = {n: comparison.live_domains(n) for n in names}
        benign_sets = {n: comparison.excluded_benign(n) for n in names}
    else:
        feed_sets = {n: comparison.tagged_domains(n) for n in names}
        benign_sets = {
            n: comparison.excluded_benign(n, tagged_only=True) for n in names
        }

    universe: Set[str] = set()
    for members in feed_sets.values():
        universe |= members
    for members in benign_sets.values():
        universe |= members

    volumes = _oracle_volumes(comparison, universe)
    total = sum(sorted(volumes.values()))
    rows: List[VolumeCoverageRow] = []
    # Summation in sorted-domain order: float addition is not
    # associative, and the per-feed sets may be assembled in different
    # orders by the batch and streaming paths, which must agree exactly.
    # Restricting each sum to the set-intersection with the volume map
    # only drops +0.0 terms, which are IEEE no-ops on a non-negative
    # running sum, so the result is bit-identical to summing
    # ``volumes.get(d, 0.0)`` over the whole sorted set -- while the
    # intersection and the lookup loop both run in C.
    for name in names:
        covered = sum(
            map(
                volumes.__getitem__,
                sorted(feed_sets[name] & volumes.keys()),
            )
        )
        benign = sum(
            map(
                volumes.__getitem__,
                sorted(benign_sets[name] & volumes.keys()),
            )
        )
        if total > 0:
            rows.append(
                VolumeCoverageRow(name, covered / total, benign / total)
            )
        else:
            rows.append(VolumeCoverageRow(name, 0.0, 0.0))
    return rows


def volume_coverage_by_feed(
    comparison: FeedComparison,
    kind: str = "live",
    feeds: Optional[Sequence[str]] = None,
) -> Dict[str, VolumeCoverageRow]:
    """Same as :func:`volume_coverage`, keyed by feed name."""
    return {row.feed: row for row in volume_coverage(comparison, kind, feeds)}
