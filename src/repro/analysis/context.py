"""The shared analysis context: feeds + oracles + impurity removal."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Set

from repro.ecosystem.world import World
from repro.feeds.base import FeedStats, FeedType
from repro.oracles.crawler import CrawlOracle, CrawlResult
from repro.oracles.dns_zone import ZoneOracle
from repro.oracles.mail_oracle import IncomingMailOracle
from repro.oracles.weblists import AlexaList, OdpDirectory
from repro.simtime import SimTime


class FeedComparison:
    """Couples feed datasets with oracles and derived domain sets.

    Accepts any mapping of :class:`~repro.feeds.base.FeedStats`
    providers -- record-backed :class:`~repro.feeds.base.FeedDataset`
    objects from a batch run or counter-backed accumulators from a
    drained :mod:`repro.stream` engine -- and produces identical
    results for identical statistics.

    Mirrors the paper's data handling:

    * Blacklist feeds are restricted to domains that also occur in at
      least one of the eight base feeds (the original study could not
      crawl blacklist-only domains; Section 3.4).
    * Every domain is crawled at its earliest sighting across all feeds.
    * ``live``  = crawl reached a live site, minus Alexa/ODP listings.
    * ``tagged`` = crawl reached a known storefront, minus Alexa/ODP.
      (Section 4.1.4's conservative false-positive removal.)
    """

    def __init__(
        self,
        world: World,
        datasets: Mapping[str, FeedStats],
        seed: int = 0,
        restrict_blacklists: bool = True,
    ):
        self.world = world
        self.datasets: Dict[str, FeedStats] = dict(datasets)
        if not self.datasets:
            raise ValueError("need at least one feed dataset")
        self.zone = ZoneOracle.from_world(world)
        self.alexa = AlexaList.from_world(world)
        self.odp = OdpDirectory.from_world(world)
        self.crawler = CrawlOracle(world, seed)
        self.mail = IncomingMailOracle(world, seed=seed)
        self.restrict_blacklists = restrict_blacklists

        self._unique_cache: Optional[Dict[str, Set[str]]] = None
        self._first_seen_cache: Optional[Dict[str, SimTime]] = None
        self._crawl_cache: Optional[Dict[str, CrawlResult]] = None
        self._blacklist_excluded: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Feed partitions
    # ------------------------------------------------------------------

    @property
    def feed_names(self) -> List[str]:
        """All feed mnemonics, in insertion order."""
        return list(self.datasets)

    @property
    def base_feed_names(self) -> List[str]:
        """The non-blacklist ("base") feeds."""
        return [
            name
            for name, ds in self.datasets.items()
            if ds.feed_type is not FeedType.BLACKLIST
        ]

    @property
    def blacklist_names(self) -> List[str]:
        """The blacklist feeds."""
        return [
            name
            for name, ds in self.datasets.items()
            if ds.feed_type is FeedType.BLACKLIST
        ]

    @property
    def volume_feed_names(self) -> List[str]:
        """Feeds whose records carry per-message volume (Section 4.3)."""
        return [name for name, ds in self.datasets.items() if ds.has_volume]

    # ------------------------------------------------------------------
    # Domain sets
    # ------------------------------------------------------------------

    def unique_domains(self, feed: str) -> Set[str]:
        """A feed's distinct domains, after blacklist restriction."""
        return self._unique_domains()[feed]

    def _unique_domains(self) -> Dict[str, Set[str]]:
        if self._unique_cache is not None:
            return self._unique_cache
        base_union: Set[str] = set()
        for name in self.base_feed_names:
            base_union |= self.datasets[name].unique_domains()
        unique: Dict[str, Set[str]] = {}
        for name, ds in self.datasets.items():
            domains = set(ds.unique_domains())
            if (
                self.restrict_blacklists
                and ds.feed_type is FeedType.BLACKLIST
            ):
                restricted = domains & base_union
                self._blacklist_excluded[name] = len(domains) - len(
                    restricted
                )
                domains = restricted
            unique[name] = domains
        self._unique_cache = unique
        return unique

    def blacklist_excluded_count(self, feed: str) -> int:
        """How many blacklist-only domains the restriction dropped."""
        self._unique_domains()
        return self._blacklist_excluded.get(feed, 0)

    def union_domains(self, feeds: Optional[Iterable[str]] = None) -> Set[str]:
        """Union of unique domains over *feeds* (default: all)."""
        names = list(feeds) if feeds is not None else self.feed_names
        union: Set[str] = set()
        for name in names:
            union |= self.unique_domains(name)
        return union

    # ------------------------------------------------------------------
    # Crawling
    # ------------------------------------------------------------------

    def union_first_seen(self) -> Dict[str, SimTime]:
        """Earliest sighting of each domain across all feeds."""
        if self._first_seen_cache is not None:
            return self._first_seen_cache
        first: Dict[str, SimTime] = {}
        for name, ds in self.datasets.items():
            keep = self.unique_domains(name)
            for domain, t in ds.first_seen().items():
                if domain not in keep:
                    continue
                prev = first.get(domain)
                if prev is None or t < prev:
                    first[domain] = t
        self._first_seen_cache = first
        return first

    def crawl_results(self) -> Dict[str, CrawlResult]:
        """One crawl verdict per domain, at union first-seen time."""
        if self._crawl_cache is None:
            self._crawl_cache = self.crawler.crawl_at_first_seen(
                self.union_first_seen()
            )
        return self._crawl_cache

    # ------------------------------------------------------------------
    # Impurity removal (Section 4.1.4)
    # ------------------------------------------------------------------

    def benign_listed(self, domains: Iterable[str]) -> Set[str]:
        """The Alexa/ODP-listed subset of *domains*."""
        return {
            d for d in domains if d in self.alexa or d in self.odp
        }

    def live_domains(self, feed: str) -> Set[str]:
        """Live domains of *feed*: crawl-alive minus Alexa/ODP."""
        results = self.crawl_results()
        return {
            d
            for d in self.unique_domains(feed)
            if results[d].http_ok
            and d not in self.alexa
            and d not in self.odp
        }

    def tagged_domains(self, feed: str) -> Set[str]:
        """Tagged domains of *feed*: storefront-tagged minus Alexa/ODP."""
        results = self.crawl_results()
        return {
            d
            for d in self.unique_domains(feed)
            if results[d].tagged
            and d not in self.alexa
            and d not in self.odp
        }

    def excluded_benign(self, feed: str, tagged_only: bool = False) -> Set[str]:
        """Alexa/ODP domains the removal step dropped from *feed*.

        With ``tagged_only`` the set is limited to benign domains whose
        crawl was nonetheless tagged (abused redirectors) -- the stack
        of the right-hand plot in Figure 3.
        """
        results = self.crawl_results()
        dropped: Set[str] = set()
        for d in self.unique_domains(feed):
            if d not in self.alexa and d not in self.odp:
                continue
            verdict = results[d]
            if tagged_only:
                if verdict.tagged:
                    dropped.add(d)
            elif verdict.http_ok:
                dropped.add(d)
        return dropped

    def all_live(self) -> Set[str]:
        """Union of live domains over all feeds (Figure 2's All column)."""
        union: Set[str] = set()
        for name in self.feed_names:
            union |= self.live_domains(name)
        return union

    def all_tagged(self) -> Set[str]:
        """Union of tagged domains over all feeds."""
        union: Set[str] = set()
        for name in self.feed_names:
            union |= self.tagged_domains(name)
        return union

    # ------------------------------------------------------------------
    # Affiliate structure (Section 4.2.3-4.2.4)
    # ------------------------------------------------------------------

    def programs_of(self, feed: str) -> Set[int]:
        """Affiliate programs represented by a feed's tagged domains."""
        results = self.crawl_results()
        return {
            results[d].program_id
            for d in self.tagged_domains(feed)
            if results[d].program_id is not None
        }

    def rx_affiliates_of(self, feed: str) -> Set[int]:
        """RX-Promotion affiliate ids visible in a feed's tagged domains."""
        results = self.crawl_results()
        rx = self.world.rx_program_id()
        return {
            results[d].affiliate_id
            for d in self.tagged_domains(feed)
            if results[d].program_id == rx
            and results[d].affiliate_id is not None
        }
