"""Feed recommendation: Section 5's guidance as code.

The paper closes with guidelines — "there is no perfect feed... the
choice should be closely related to the questions we are trying to
answer" — and enumerates which feed families suit which study types.
This module turns the measured qualities into a ranking engine: given a
:class:`FeedComparison` and a research question, score every feed and
explain the ranking.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional, Sequence

from repro.analysis.context import FeedComparison
from repro.analysis.coverage import pairwise_overlap
from repro.analysis.proportionality import (
    MAIL,
    variation_distance_matrix,
)
from repro.analysis.purity import purity_row
from repro.analysis.timing import first_appearance_latencies
from repro.simtime import MINUTES_PER_DAY


class Question(enum.Enum):
    """The study types Section 5 distinguishes."""

    #: What is advertised via spam?  (breadth of distinct domains)
    COVERAGE = "coverage"
    #: Direct mail filtering: false positives are costly.
    FILTERING = "filtering"
    #: When do campaigns start?  (early-warning latency)
    ONSET = "onset"
    #: When do campaigns end / how long do they run?
    DURATION = "duration"
    #: Relative prevalence of campaigns ("25% of all spam is X").
    PROPORTIONALITY = "proportionality"


@dataclasses.dataclass(frozen=True)
class FeedScore:
    """One feed's score for one question, with the evidence behind it."""

    feed: str
    question: Question
    score: float
    rationale: str

    def __str__(self) -> str:
        return f"{self.feed}: {self.score:.3f} ({self.rationale})"


def _coverage_scores(
    comparison: FeedComparison, feeds: Sequence[str]
) -> List[FeedScore]:
    matrix = pairwise_overlap(comparison, "tagged", feeds)
    scores = []
    for feed in feeds:
        fraction = matrix.union_coverage(feed)
        scores.append(
            FeedScore(
                feed,
                Question.COVERAGE,
                fraction,
                f"covers {100 * fraction:.0f}% of the tagged-domain union",
            )
        )
    return scores


def _filtering_scores(
    comparison: FeedComparison, feeds: Sequence[str]
) -> List[FeedScore]:
    matrix = pairwise_overlap(comparison, "tagged", feeds)
    scores = []
    for feed in feeds:
        row = purity_row(comparison, feed)
        # Non-existent domains are "merely a nuisance" operationally
        # (Section 4.1); what poisons a filter is benign domains among
        # the *registered* ones, so normalize the benign rate by the
        # feed's DNS purity (a DGA-flooded feed gets no dilution
        # credit).
        benign = (row.alexa + row.odp) / max(row.dns, 0.01)
        purity_factor = max(0.0, 1.0 - 10.0 * benign)
        coverage = matrix.union_coverage(feed)
        score = purity_factor * (0.25 + 0.75 * coverage)
        scores.append(
            FeedScore(
                feed,
                Question.FILTERING,
                score,
                f"{100 * benign:.1f}% benign rate among registered "
                f"domains, {100 * coverage:.0f}% tagged coverage",
            )
        )
    return scores


def _onset_scores(
    comparison: FeedComparison, feeds: Sequence[str]
) -> List[FeedScore]:
    stats = first_appearance_latencies(
        comparison, feeds, reference_feeds=feeds
    )
    scores = []
    for feed in feeds:
        if feed not in stats:
            continue
        median_days = stats[feed].median / MINUTES_PER_DAY
        score = 1.0 / (1.0 + median_days)
        scores.append(
            FeedScore(
                feed,
                Question.ONSET,
                score,
                f"median first-appearance lag {median_days:.2f} days",
            )
        )
    return scores


def _duration_scores(
    comparison: FeedComparison, feeds: Sequence[str]
) -> List[FeedScore]:
    # Feeds driven by live mail capture last-appearance faithfully; user
    # -reported feeds (human, hybrid, blacklists) distort campaign ends
    # (Section 4.4.2), so they are structurally penalized.
    from repro.feeds.base import FeedType

    live_mail_types = {FeedType.MX_HONEYPOT, FeedType.HONEY_ACCOUNT,
                       FeedType.BOTNET}
    matrix = pairwise_overlap(comparison, "tagged", feeds)
    scores = []
    for feed in feeds:
        dataset = comparison.datasets[feed]
        structural = 1.0 if dataset.feed_type in live_mail_types else 0.2
        coverage = matrix.union_coverage(feed)
        scores.append(
            FeedScore(
                feed,
                Question.DURATION,
                structural * (0.5 + 0.5 * coverage),
                (
                    "live-mail feed"
                    if structural == 1.0
                    else "user-reported timing (distorted ends)"
                )
                + f", {100 * coverage:.0f}% tagged coverage",
            )
        )
    return scores


def _proportionality_scores(
    comparison: FeedComparison, feeds: Sequence[str]
) -> List[FeedScore]:
    volume_feeds = [
        f for f in feeds if comparison.datasets[f].has_volume
    ]
    scores: List[FeedScore] = []
    for feed in feeds:
        if feed not in volume_feeds:
            scores.append(
                FeedScore(
                    feed, Question.PROPORTIONALITY, 0.0,
                    "no per-message volume information",
                )
            )
    if volume_feeds:
        matrix = variation_distance_matrix(comparison, volume_feeds)
        for feed in volume_feeds:
            distance = matrix[feed][MAIL]
            scores.append(
                FeedScore(
                    feed,
                    Question.PROPORTIONALITY,
                    1.0 - distance,
                    f"variation distance {distance:.2f} to incoming mail",
                )
            )
    return scores


_SCORERS = {
    Question.COVERAGE: _coverage_scores,
    Question.FILTERING: _filtering_scores,
    Question.ONSET: _onset_scores,
    Question.DURATION: _duration_scores,
    Question.PROPORTIONALITY: _proportionality_scores,
}


def rank_feeds(
    comparison: FeedComparison,
    question: Question,
    feeds: Optional[Sequence[str]] = None,
) -> List[FeedScore]:
    """Rank feeds for *question*, best first."""
    names = list(feeds) if feeds is not None else comparison.feed_names
    scores = _SCORERS[question](comparison, names)
    return sorted(scores, key=lambda s: (-s.score, s.feed))


def recommend(
    comparison: FeedComparison,
    question: Question,
    feeds: Optional[Sequence[str]] = None,
) -> FeedScore:
    """The single best feed for *question*."""
    ranking = rank_feeds(comparison, question, feeds)
    if not ranking:
        raise ValueError(f"no feed could be scored for {question}")
    return ranking[0]


def diverse_portfolio(
    comparison: FeedComparison,
    size: int,
    kind: str = "tagged",
    feeds: Optional[Sequence[str]] = None,
) -> List[str]:
    """Greedy max-coverage feed portfolio (Section 5: "the priority
    should be to obtain a set that is as diverse as possible").

    Picks the feed with the largest *marginal* domain contribution at
    each step — additional feeds of the same type naturally add little
    and are skipped in favor of methodological diversity.
    """
    if size < 1:
        raise ValueError("portfolio size must be positive")
    names = list(feeds) if feeds is not None else comparison.feed_names
    from repro.analysis.coverage import domain_sets

    sets = domain_sets(comparison, kind, names)
    chosen: List[str] = []
    covered: set = set()
    remaining = dict(sets)
    while remaining and len(chosen) < size:
        best, gain = None, -1
        for feed in sorted(remaining):
            marginal = len(remaining[feed] - covered)
            if marginal > gain:
                best, gain = feed, marginal
        if best is None or gain <= 0:
            break
        chosen.append(best)
        covered |= remaining.pop(best)
    return chosen


def portfolio_coverage(
    comparison: FeedComparison,
    portfolio: Sequence[str],
    kind: str = "tagged",
) -> float:
    """Fraction of the all-feed union covered by *portfolio*."""
    matrix = pairwise_overlap(comparison, kind)
    return matrix.combined_coverage(portfolio)
