"""Feed fusion: combining the complementary strengths of feeds.

Section 5 observes that blacklists and human-identified feeds provide
highly accurate *onset* information while live-mail (honeypot) feeds
provide faithful *last-appearance* information, and suggests that
"combining the features of different feeds may be appropriate".  This
module implements that suggestion: a fused per-domain timeline taking
campaign starts from designated onset feeds and campaign ends from
designated end feeds, and an evaluator comparing fused estimates against
the all-feed aggregate.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Set

from repro.analysis.context import FeedComparison
from repro.analysis.timing import (
    BoxStats,
    campaign_end_times,
    campaign_start_times,
)
from repro.simtime import SimTime

#: Default feed roles, per the paper's conclusions.
DEFAULT_ONSET_FEEDS = ("Hu", "dbl", "uribl")
DEFAULT_END_FEEDS = ("mx1", "mx2", "mx3", "Ac1", "Ac2")


@dataclasses.dataclass(frozen=True)
class FusedInterval:
    """A fused per-domain campaign estimate."""

    domain: str
    start: SimTime
    end: SimTime

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"inverted interval for {self.domain!r}")

    @property
    def duration(self) -> SimTime:
        """Estimated campaign duration in minutes."""
        return self.end - self.start


def fuse_timelines(
    comparison: FeedComparison,
    onset_feeds: Sequence[str] = DEFAULT_ONSET_FEEDS,
    end_feeds: Sequence[str] = DEFAULT_END_FEEDS,
    kind: str = "tagged",
) -> Dict[str, FusedInterval]:
    """Fuse per-domain campaign intervals from role-assigned feeds.

    Only domains visible to both an onset feed and an end feed can be
    fused.  When a fused end precedes the fused start (an end feed saw
    the domain only before the onset feeds did), the interval collapses
    to the start point rather than inverting.
    """
    onset_present = [f for f in onset_feeds if f in comparison.datasets]
    end_present = [f for f in end_feeds if f in comparison.datasets]
    if not onset_present or not end_present:
        raise ValueError("need at least one onset feed and one end feed")

    domains: Set[str] = set()
    for feed in set(onset_present) | set(end_present):
        domains |= _kind_domains(comparison, feed, kind)

    starts = campaign_start_times(comparison, onset_present, domains)
    ends = campaign_end_times(comparison, end_present, domains)

    fused: Dict[str, FusedInterval] = {}
    for domain in sorted(starts.keys() & ends.keys()):
        start = starts[domain]
        end = max(ends[domain], start)
        fused[domain] = FusedInterval(domain, start, end)
    return fused


@dataclasses.dataclass(frozen=True)
class FusionEvaluation:
    """Fused-vs-aggregate timing errors plus per-feed baselines."""

    onset_error: BoxStats
    end_error: BoxStats
    duration_error: BoxStats
    n_domains: int
    #: Median onset error of the best *single* feed, for comparison.
    best_single_onset_median: float
    best_single_onset_feed: str


def evaluate_fusion(
    comparison: FeedComparison,
    onset_feeds: Sequence[str] = DEFAULT_ONSET_FEEDS,
    end_feeds: Sequence[str] = DEFAULT_END_FEEDS,
    kind: str = "tagged",
    reference_feeds: Optional[Sequence[str]] = None,
) -> FusionEvaluation:
    """Compare fused estimates against the all-feed aggregate.

    The reference "truth" is the aggregate over *reference_feeds*
    (default: every feed), mirroring the paper's treatment of the
    earliest/latest appearance across feeds as campaign start/end.
    """
    refs = (
        list(reference_feeds)
        if reference_feeds is not None
        else comparison.feed_names
    )
    fused = fuse_timelines(comparison, onset_feeds, end_feeds, kind)
    if not fused:
        raise ValueError("no domains could be fused")

    domains = set(fused)
    ref_starts = campaign_start_times(comparison, refs, domains)
    ref_ends = campaign_end_times(comparison, refs, domains)

    onset_errors: List[float] = []
    end_errors: List[float] = []
    duration_errors: List[float] = []
    for domain, interval in fused.items():
        if domain not in ref_starts or domain not in ref_ends:
            continue
        onset_errors.append(float(interval.start - ref_starts[domain]))
        end_errors.append(float(ref_ends[domain] - interval.end))
        true_duration = ref_ends[domain] - ref_starts[domain]
        duration_errors.append(float(true_duration - interval.duration))

    # Baseline: the best single feed's onset latency over its own
    # domains (how much the fusion buys over just picking one feed).
    from repro.analysis.timing import first_appearance_latencies

    candidates = [
        f for f in (list(onset_feeds) + list(end_feeds))
        if f in comparison.datasets
    ]
    singles = first_appearance_latencies(
        comparison, candidates, reference_feeds=refs, kind=kind
    )
    best_feed = min(singles, key=lambda f: singles[f].median)

    return FusionEvaluation(
        onset_error=BoxStats.from_values(onset_errors),
        end_error=BoxStats.from_values(end_errors),
        duration_error=BoxStats.from_values(duration_errors),
        n_domains=len(onset_errors),
        best_single_onset_median=singles[best_feed].median,
        best_single_onset_feed=best_feed,
    )


def _kind_domains(
    comparison: FeedComparison, feed: str, kind: str
) -> Set[str]:
    if kind == "tagged":
        return comparison.tagged_domains(feed)
    if kind == "live":
        return comparison.live_domains(feed)
    if kind == "all":
        return comparison.unique_domains(feed)
    raise ValueError(f"unknown domain kind {kind!r}")
