"""Affiliate-program and affiliate coverage (Section 4.2.3-4.2.4).

Beyond domains lies the structure the domains monetize: affiliate
programs, and within the RX-Promotion analog, individual affiliates with
known annual revenue.  A feed's business-level value is how much of that
structure -- and its revenue -- it makes visible.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional, Sequence, Set

from repro.analysis.context import FeedComparison
from repro.analysis.coverage import OverlapMatrix


def program_sets(
    comparison: FeedComparison,
    feeds: Optional[Sequence[str]] = None,
) -> Dict[str, Set[int]]:
    """Per-feed sets of covered affiliate programs."""
    names = list(feeds) if feeds is not None else comparison.feed_names
    return {n: comparison.programs_of(n) for n in names}


def rx_affiliate_sets(
    comparison: FeedComparison,
    feeds: Optional[Sequence[str]] = None,
) -> Dict[str, Set[int]]:
    """Per-feed sets of covered RX-Promotion affiliate identifiers."""
    names = list(feeds) if feeds is not None else comparison.feed_names
    return {n: comparison.rx_affiliates_of(n) for n in names}


def program_coverage_matrix(
    comparison: FeedComparison,
    feeds: Optional[Sequence[str]] = None,
) -> OverlapMatrix:
    """Figure 4: pairwise feed similarity over affiliate programs."""
    return OverlapMatrix(program_sets(comparison, feeds))


def affiliate_coverage_matrix(
    comparison: FeedComparison,
    feeds: Optional[Sequence[str]] = None,
) -> OverlapMatrix:
    """Figure 5: pairwise feed similarity over RX affiliate ids."""
    return OverlapMatrix(rx_affiliate_sets(comparison, feeds))


@dataclasses.dataclass(frozen=True)
class RevenueCoverageRow:
    """One feed's Figure 6 bar."""

    feed: str
    n_affiliates: int
    covered_revenue: float
    total_revenue: float

    @property
    def revenue_fraction(self) -> float:
        """Covered revenue as a share of all RX affiliate revenue."""
        if self.total_revenue <= 0:
            return 0.0
        return self.covered_revenue / self.total_revenue


def revenue_coverage(
    comparison: FeedComparison,
    feeds: Optional[Sequence[str]] = None,
) -> List[RevenueCoverageRow]:
    """Figure 6: RX affiliate coverage weighted by annual revenue.

    Revenue comes from the (simulated) leaked program ledger: the
    world's ground-truth per-affiliate annual revenue.
    """
    names = list(feeds) if feeds is not None else comparison.feed_names
    world = comparison.world
    rx = world.rx_program_id()
    # Sorted-value summation: float addition is not associative, and
    # results must not depend on affiliate-registry insertion order.
    total_revenue = sum(
        sorted(
            a.annual_revenue
            for a in world.affiliates.values()
            if a.program_id == rx
        )
    )
    rows: List[RevenueCoverageRow] = []
    for name in names:
        covered_ids = comparison.rx_affiliates_of(name)
        covered = sum(
            world.affiliates[aid].annual_revenue
            for aid in sorted(covered_ids)
            if aid in world.affiliates
        )
        rows.append(
            RevenueCoverageRow(
                feed=name,
                n_affiliates=len(covered_ids),
                covered_revenue=covered,
                total_revenue=total_revenue,
            )
        )
    return rows


def exclusive_affiliates(
    sets: Mapping[str, Set[int]],
) -> Dict[str, Set[int]]:
    """Affiliates (or programs) seen by exactly one feed.

    The paper highlights that over 40% of RX affiliates were found
    exclusively in the Hu feed.
    """
    occurrences: Dict[int, int] = {}
    for members in sets.values():
        for item in members:
            occurrences[item] = occurrences.get(item, 0) + 1
    return {
        name: {item for item in members if occurrences[item] == 1}
        for name, members in sets.items()
    }
