"""Proportionality analysis (Section 4.3, Figures 7 and 8).

Does a feed report domains in proportion to their real volume?  Only
feeds with per-message volume information participate (the Hu, Hyb and
blacklist feeds are excluded).  Distributions are compared over tagged
domains with total variation distance and the tie-aware Kendall rank
correlation, plus a ``Mail`` pseudo-feed derived from the incoming mail
oracle.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.analysis.context import FeedComparison
from repro.stats.distributions import EmpiricalDistribution
from repro.stats.kendall import kendall_tau_distributions
from repro.stats.metrics import variation_distance

#: Label of the incoming-mail-oracle column in Figures 7 and 8.
MAIL = "Mail"


def tagged_distribution(
    comparison: FeedComparison, feed: str
) -> EmpiricalDistribution:
    """A feed's empirical volume distribution over its tagged domains."""
    dataset = comparison.datasets[feed]
    if not dataset.has_volume:
        raise ValueError(
            f"feed {feed!r} carries no volume information (Section 4.3)"
        )
    tagged = comparison.tagged_domains(feed)
    return dataset.domain_counts().restrict(tagged)


def mail_distribution(
    comparison: FeedComparison,
    feeds: Sequence[str],
) -> EmpiricalDistribution:
    """The oracle's distribution over the union of feeds' tagged domains.

    As in the paper, domains not appearing in any feed get probability
    zero (the oracle is only queried about feed domains).
    """
    union: Set[str] = set()
    for name in feeds:
        union |= comparison.tagged_domains(name)
    return comparison.mail.distribution(union)


def _participants(
    comparison: FeedComparison, feeds: Optional[Sequence[str]]
) -> List[str]:
    if feeds is not None:
        return list(feeds)
    return comparison.volume_feed_names


def distributions_with_mail(
    comparison: FeedComparison,
    feeds: Optional[Sequence[str]] = None,
) -> Dict[str, EmpiricalDistribution]:
    """Tagged distributions for all volume feeds plus the Mail column."""
    names = _participants(comparison, feeds)
    result = {name: tagged_distribution(comparison, name) for name in names}
    result[MAIL] = mail_distribution(comparison, names)
    return result


def variation_distance_matrix(
    comparison: FeedComparison,
    feeds: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, float]]:
    """Figure 7: pairwise variation distance of tagged-domain frequency."""
    dists = distributions_with_mail(comparison, feeds)
    labels = list(dists)
    return {
        a: {b: variation_distance(dists[a], dists[b]) for b in labels}
        for a in labels
    }


def kendall_matrix(
    comparison: FeedComparison,
    feeds: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, float]]:
    """Figure 8: pairwise Kendall tau-b of tagged-domain frequency."""
    dists = distributions_with_mail(comparison, feeds)
    labels = list(dists)
    return {
        a: {
            b: kendall_tau_distributions(dists[a], dists[b])
            for b in labels
        }
        for a in labels
    }


def closest_to_mail(
    matrix: Dict[str, Dict[str, float]],
    smaller_is_closer: bool = True,
) -> List[str]:
    """Rank feeds by similarity to the Mail column.

    For variation distance pass ``smaller_is_closer=True``; for Kendall
    correlation pass False.  The paper finds mx2 closest, Ac1 next.
    """
    entries = [
        (name, row[MAIL])
        for name, row in matrix.items()
        if name != MAIL and MAIL in row
    ]
    entries.sort(key=lambda kv: kv[1], reverse=not smaller_is_closer)
    return [name for name, _ in entries]
