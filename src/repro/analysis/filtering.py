"""Operational filter evaluation: using a feed as a blocking oracle.

Section 4.1 observes that when a feed directly drives mail filtering,
purity is paramount — a single benign domain on the list poisons every
message carrying it — while for measurement studies impurity merely
taxes the apparatus.  This module quantifies that trade-off: treat a
feed's domain list as a filter and measure, against ground truth,

* **precision** — listed domains that really are spam-advertised,
* **recall** (domain and volume weighted) — how much spam it blocks,
* **benign collateral** — mail volume of wrongly-listed benign domains,

plus a simple time-aware variant where a domain only blocks messages
after its first appearance in the feed.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Set

from repro.analysis.context import FeedComparison
from repro.ecosystem.world import World
from repro.feeds.base import FeedDataset


@dataclasses.dataclass(frozen=True)
class FilterReport:
    """Outcome of evaluating one feed as a blocking oracle."""

    feed: str
    listed: int
    true_positives: int
    benign_positives: int
    unknown_positives: int
    #: Fraction of ground-truth spam domains listed.
    domain_recall: float
    #: Fraction of ground-truth spam volume emitted by listed domains.
    volume_recall: float
    #: Volume-weighted recall counting only post-listing emissions.
    timely_volume_recall: float
    #: Legitimate-mail volume of wrongly listed benign domains,
    #: relative to the total legitimate volume of all benign domains.
    collateral_fraction: float

    @property
    def precision(self) -> float:
        """Listed domains that are genuinely spam-advertised."""
        if self.listed == 0:
            return 0.0
        return self.true_positives / self.listed


def _benign_mail_volume(comparison: FeedComparison, domain: str) -> float:
    return comparison.mail.benign_volume(domain)


def evaluate_filter(
    comparison: FeedComparison,
    feed: str,
    world: Optional[World] = None,
) -> FilterReport:
    """Score *feed* as a domain-blocking filter against ground truth."""
    world = world or comparison.world
    dataset: FeedDataset = comparison.datasets[feed]
    listed = comparison.unique_domains(feed)
    first_listed = {
        d: t for d, t in dataset.first_seen().items() if d in listed
    }

    spam_domains = world.advertised_domains() - world.benign.all_benign
    benign = world.benign.all_benign

    true_positives = len(listed & spam_domains)
    benign_positives = len(listed & benign)
    unknown = len(listed) - true_positives - benign_positives

    volumes = world.emitted_volume_by_domain()
    # Sorted-domain summation everywhere below: float addition is not
    # associative, and these sets/maps may be assembled in different
    # orders by the batch and streaming paths, which must agree exactly.
    total_spam_volume = sum(
        v for d, v in sorted(volumes.items()) if d in spam_domains
    )

    blocked_volume = 0.0
    timely_volume = 0.0
    for campaign in world.campaigns:
        for placement in campaign.placements:
            domain = placement.domain
            if domain not in spam_domains or domain not in first_listed:
                continue
            blocked_volume += placement.volume
            t = first_listed[domain]
            if t <= placement.start:
                timely_volume += placement.volume
            elif t < placement.end:
                remaining = (placement.end - t) / placement.duration
                timely_volume += placement.volume * remaining

    total_benign_volume = sum(
        _benign_mail_volume(comparison, d) for d in sorted(benign)
    )
    collateral = sum(
        _benign_mail_volume(comparison, d) for d in sorted(listed & benign)
    )

    return FilterReport(
        feed=feed,
        listed=len(listed),
        true_positives=true_positives,
        benign_positives=benign_positives,
        unknown_positives=unknown,
        domain_recall=(
            true_positives / len(spam_domains) if spam_domains else 0.0
        ),
        volume_recall=(
            blocked_volume / total_spam_volume if total_spam_volume else 0.0
        ),
        timely_volume_recall=(
            timely_volume / total_spam_volume if total_spam_volume else 0.0
        ),
        collateral_fraction=(
            collateral / total_benign_volume if total_benign_volume else 0.0
        ),
    )


def evaluate_all_filters(
    comparison: FeedComparison,
) -> Dict[str, FilterReport]:
    """Filter reports for every feed, keyed by name."""
    return {
        feed: evaluate_filter(comparison, feed)
        for feed in comparison.feed_names
    }


def registered_domain_hazard(
    comparison: FeedComparison, feed: str
) -> Set[str]:
    """Benign domains a blacklist operator must hand-review.

    These are the feed's domains that are Alexa/ODP-listed yet crawl to
    a *tagged* storefront (abused redirectors): blocking them at the
    registered-domain granularity would take down the whole service
    (Section 4.1.4's warning).
    """
    return comparison.excluded_benign(feed, tagged_only=True)
