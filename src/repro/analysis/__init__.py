"""The paper's Section 4 analysis methodology.

Everything is computed from a :class:`FeedComparison` context, which
couples the ten collected feed datasets with the measurement oracles and
performs the impurity-removal step of Section 4.1.4 (live = at least one
successful crawl, minus Alexa/ODP; tagged = known storefront, minus
Alexa/ODP).  On top of it:

* :mod:`repro.analysis.purity` -- Table 2 indicators,
* :mod:`repro.analysis.coverage` -- Table 3, Figures 1-2,
* :mod:`repro.analysis.volume` -- Figure 3 via the mail oracle,
* :mod:`repro.analysis.affiliates` -- Figures 4-6,
* :mod:`repro.analysis.proportionality` -- Figures 7-8,
* :mod:`repro.analysis.timing` -- Figures 9-12.
"""

from repro.analysis.context import FeedComparison
from repro.analysis.purity import PurityRow, purity_table
from repro.analysis.coverage import (
    CoverageRow,
    OverlapMatrix,
    coverage_table,
    exclusive_scatter,
    pairwise_overlap,
)
from repro.analysis.volume import VolumeCoverageRow, volume_coverage
from repro.analysis.affiliates import (
    affiliate_coverage_matrix,
    program_coverage_matrix,
    revenue_coverage,
)
from repro.analysis.proportionality import (
    kendall_matrix,
    variation_distance_matrix,
)
from repro.analysis.timing import (
    BoxStats,
    duration_errors,
    first_appearance_latencies,
    last_appearance_gaps,
)
from repro.analysis.recommend import (
    FeedScore,
    Question,
    diverse_portfolio,
    rank_feeds,
    recommend,
)
from repro.analysis.filtering import (
    FilterReport,
    evaluate_all_filters,
    evaluate_filter,
)
from repro.analysis.fusion import (
    FusedInterval,
    FusionEvaluation,
    evaluate_fusion,
    fuse_timelines,
)

__all__ = [
    "BoxStats",
    "FeedScore",
    "FilterReport",
    "FusedInterval",
    "FusionEvaluation",
    "evaluate_fusion",
    "fuse_timelines",
    "Question",
    "diverse_portfolio",
    "evaluate_all_filters",
    "evaluate_filter",
    "rank_feeds",
    "recommend",
    "CoverageRow",
    "FeedComparison",
    "OverlapMatrix",
    "PurityRow",
    "VolumeCoverageRow",
    "affiliate_coverage_matrix",
    "coverage_table",
    "duration_errors",
    "exclusive_scatter",
    "first_appearance_latencies",
    "kendall_matrix",
    "last_appearance_gaps",
    "pairwise_overlap",
    "program_coverage_matrix",
    "purity_table",
    "revenue_coverage",
    "variation_distance_matrix",
    "volume_coverage",
]
