"""Purity indicators (Section 4.1, Table 2).

Positive indicators -- larger is purer:

* ``DNS``    -- fraction of zone-checkable domains that were registered,
* ``HTTP``   -- fraction of domains with at least one live crawl,
* ``Tagged`` -- fraction of domains leading to a known storefront.

Negative indicators -- larger is dirtier:

* ``ODP``   -- fraction appearing in the Open Directory,
* ``Alexa`` -- fraction on the Alexa top list.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.analysis.context import FeedComparison


@dataclasses.dataclass(frozen=True)
class PurityRow:
    """One feed's Table 2 row (fractions in [0, 1])."""

    feed: str
    dns: float
    http: float
    tagged: float
    odp: float
    alexa: float
    #: Denominators, useful for significance judgments.
    n_domains: int
    n_zone_checkable: int

    def as_percentages(self) -> Dict[str, float]:
        """The row with indicator values scaled to percent."""
        return {
            "feed": self.feed,
            "dns": 100.0 * self.dns,
            "http": 100.0 * self.http,
            "tagged": 100.0 * self.tagged,
            "odp": 100.0 * self.odp,
            "alexa": 100.0 * self.alexa,
        }


def purity_row(comparison: FeedComparison, feed: str) -> PurityRow:
    """Compute one feed's purity indicators."""
    domains = comparison.unique_domains(feed)
    n = len(domains)
    if n == 0:
        return PurityRow(feed, 0.0, 0.0, 0.0, 0.0, 0.0, 0, 0)

    zone_report = comparison.zone.registration_report(domains)
    checkable = zone_report["covered"]
    dns = (
        zone_report["registered"] / checkable if checkable else 0.0
    )

    results = comparison.crawl_results()
    http_ok = sum(1 for d in domains if results[d].http_ok)
    tagged = sum(1 for d in domains if results[d].tagged)
    odp = sum(1 for d in domains if d in comparison.odp)
    alexa = sum(1 for d in domains if d in comparison.alexa)

    return PurityRow(
        feed=feed,
        dns=dns,
        http=http_ok / n,
        tagged=tagged / n,
        odp=odp / n,
        alexa=alexa / n,
        n_domains=n,
        n_zone_checkable=checkable,
    )


def purity_table(
    comparison: FeedComparison,
    feeds: Optional[Sequence[str]] = None,
) -> List[PurityRow]:
    """Table 2: purity indicators for every feed."""
    names = list(feeds) if feeds is not None else comparison.feed_names
    return [purity_row(comparison, name) for name in names]
