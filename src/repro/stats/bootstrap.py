"""Bootstrap confidence intervals for coverage-style fractions.

The paper reports point estimates; when adopting its methodology on a
single feed sample it is useful to know how stable a coverage or purity
fraction is.  This module provides a nonparametric bootstrap over
domain sets: resample the union with replacement, recompute the
fraction of resampled elements belonging to the feed, and report
percentile intervals.
"""

from __future__ import annotations

import dataclasses
import random
from typing import TYPE_CHECKING, Hashable, Iterable, List, Sequence, Set

from repro.stats.rng import derive_rng

if TYPE_CHECKING:
    from repro.analysis.context import FeedComparison


@dataclasses.dataclass(frozen=True)
class BootstrapInterval:
    """A point estimate with a percentile confidence interval."""

    estimate: float
    low: float
    high: float
    confidence: float
    replicates: int

    def contains(self, value: float) -> bool:
        """True if *value* lies inside the interval."""
        return self.low <= value <= self.high

    @property
    def width(self) -> float:
        """Interval width."""
        return self.high - self.low

    def __str__(self) -> str:
        return (
            f"{self.estimate:.3f} "
            f"[{self.low:.3f}, {self.high:.3f}] "
            f"@{self.confidence:.0%}"
        )


def bootstrap_fraction(
    members: Iterable[Hashable],
    universe: Sequence[Hashable],
    replicates: int = 1_000,
    confidence: float = 0.95,
    seed: int = 0,
) -> BootstrapInterval:
    """CI for ``|members ∩ universe| / |universe|`` under resampling.

    *universe* is resampled with replacement; each replicate recomputes
    the member fraction.  Raises ``ValueError`` on an empty universe or
    invalid parameters.
    """
    universe = list(universe)
    if not universe:
        raise ValueError("empty universe")
    if replicates < 1:
        raise ValueError("need at least one replicate")
    if not (0.0 < confidence < 1.0):
        raise ValueError("confidence must be in (0, 1)")
    member_set: Set[Hashable] = set(members)
    n = len(universe)
    estimate = sum(1 for item in universe if item in member_set) / n

    rng = derive_rng(seed, "bootstrap")
    stats: List[float] = []
    for _ in range(replicates):
        hits = 0
        for _ in range(n):
            if universe[int(rng.random() * n)] in member_set:
                hits += 1
        stats.append(hits / n)
    stats.sort()
    alpha = (1.0 - confidence) / 2.0
    low_index = max(0, int(alpha * replicates))
    high_index = min(replicates - 1, int((1.0 - alpha) * replicates))
    return BootstrapInterval(
        estimate=estimate,
        low=stats[low_index],
        high=stats[high_index],
        confidence=confidence,
        replicates=replicates,
    )


def bootstrap_coverage(
    comparison: "FeedComparison",
    feed: str,
    kind: str = "tagged",
    replicates: int = 1_000,
    confidence: float = 0.95,
    seed: int = 0,
) -> BootstrapInterval:
    """CI for one feed's union-coverage fraction (Figure 2 cells)."""
    from repro.analysis.coverage import domain_sets

    sets = domain_sets(comparison, kind)
    union: Set[Hashable] = set()
    for domains in sets.values():
        union |= domains
    return bootstrap_fraction(
        sets[feed], sorted(union), replicates, confidence, seed
    )
