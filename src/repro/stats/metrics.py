"""Distribution-comparison metrics from Section 4.3 of the paper."""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Optional

from repro.stats.distributions import EmpiricalDistribution


def variation_distance(
    p: EmpiricalDistribution,
    q: EmpiricalDistribution,
    support: Optional[Iterable[Hashable]] = None,
) -> float:
    """Total variation distance between two empirical distributions.

    ``delta = (1/2) * sum_i |p_i - q_i|``.

    A domain absent from a feed has empirical probability 0, exactly as in
    the paper.  If *support* is given, both distributions are first
    restricted to that set and re-normalized (the paper does this when
    comparing feeds against the incoming mail oracle over the union of
    tagged feed domains).

    Returns a value in ``[0, 1]``: 0 iff the distributions are identical,
    1 iff they are disjoint.  Two empty distributions have distance 0; an
    empty vs. non-empty pair has distance 1.
    """
    if support is not None:
        keys = set(support)
        p = p.restrict(keys)
        q = q.restrict(keys)
    if p.total == 0 and q.total == 0:
        return 0.0
    if p.total == 0 or q.total == 0:
        return 1.0
    union = p.support | q.support
    delta = 0.0
    for key in union:
        delta += abs(p.probability(key) - q.probability(key))
    return min(1.0, delta / 2.0)


def overlap_coefficient(
    p: EmpiricalDistribution, q: EmpiricalDistribution
) -> float:
    """Probability mass shared by two distributions: ``1 - delta``."""
    return 1.0 - variation_distance(p, q)


def normalized_counts(counts: Mapping[Hashable, float]) -> EmpiricalDistribution:
    """Convenience constructor mirroring the paper's ``c_i / m`` notation."""
    return EmpiricalDistribution(counts)
