"""Tie-aware Kendall rank correlation (Kendall's tau-b).

The paper compares relative domain *ranks* between feed pairs using the
Kendall rank correlation coefficient, adjusting the denominator for ties
(Section 4.3).  This module implements tau-b with Knight's O(n log n)
algorithm so that feed pairs sharing tens of thousands of domains remain
cheap to compare.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.stats.distributions import EmpiricalDistribution


def _merge_sort_count_swaps(values: List[float]) -> int:
    """Count the swaps bubble sort would need, i.e. discordant pairs.

    Sorts *values* in place (merge sort) and returns the number of
    inversions.
    """
    n = len(values)
    if n < 2:
        return 0
    mid = n // 2
    left = values[:mid]
    right = values[mid:]
    swaps = _merge_sort_count_swaps(left) + _merge_sort_count_swaps(right)
    i = j = k = 0
    while i < len(left) and j < len(right):
        if left[i] <= right[j]:
            values[k] = left[i]
            i += 1
        else:
            values[k] = right[j]
            # All remaining elements of `left` are inversions with right[j].
            swaps += len(left) - i
            j += 1
        k += 1
    while i < len(left):
        values[k] = left[i]
        i += 1
        k += 1
    while j < len(right):
        values[k] = right[j]
        j += 1
        k += 1
    return swaps


def _tie_pair_count(sorted_values: Sequence[float]) -> int:
    """Number of tied pairs in an already-sorted sequence."""
    ties = 0
    run = 1
    for prev, cur in zip(sorted_values, sorted_values[1:]):
        if cur == prev:
            run += 1
        else:
            ties += run * (run - 1) // 2
            run = 1
    ties += run * (run - 1) // 2
    return ties


def _joint_tie_pair_count(pairs: Sequence[Tuple[float, float]]) -> int:
    """Number of pairs tied in *both* coordinates (pairs must be sorted)."""
    ties = 0
    run = 1
    for prev, cur in zip(pairs, pairs[1:]):
        if cur == prev:
            run += 1
        else:
            ties += run * (run - 1) // 2
            run = 1
    ties += run * (run - 1) // 2
    return ties


def kendall_tau_b(
    x: Sequence[float], y: Sequence[float]
) -> float:
    """Kendall's tau-b between two equal-length value sequences.

    Returns a value in ``[-1, 1]``; 0 for no association.  Raises
    ``ValueError`` on length mismatch or fewer than two observations.
    If either sequence is constant the coefficient is undefined; this
    implementation returns 0.0 in that case (the conventional choice).
    """
    if len(x) != len(y):
        raise ValueError("sequences must have equal length")
    n = len(x)
    if n < 2:
        raise ValueError("need at least two observations")

    pairs = sorted(zip(x, y))
    n0 = n * (n - 1) // 2

    ties_x = _tie_pair_count([p[0] for p in pairs])
    ties_xy = _joint_tie_pair_count(pairs)

    # Within ties of x, order by y so those pairs are not counted as
    # discordant (they are neither concordant nor discordant).
    y_ordered = [p[1] for p in pairs]
    discordant = _merge_sort_count_swaps(list(y_ordered))

    ties_y = _tie_pair_count(sorted(y))

    # Concordant minus discordant:  total - ties (counting joint ties once).
    n1 = ties_x
    n2 = ties_y
    concordant_plus_discordant = n0 - n1 - n2 + ties_xy
    concordant = concordant_plus_discordant - discordant
    numerator = concordant - discordant

    denom = math.sqrt((n0 - n1) * (n0 - n2))
    if denom == 0:
        return 0.0
    return max(-1.0, min(1.0, numerator / denom))


def kendall_tau_distributions(
    p: EmpiricalDistribution,
    q: EmpiricalDistribution,
    support: Optional[Iterable[Hashable]] = None,
) -> float:
    """Kendall's tau-b between two feeds' domain-frequency distributions.

    As in the paper, the comparison runs over the domains *common to both
    feeds* (probability 0 entries carry no rank information and joint
    zeros would artificially inflate agreement).  If *support* is given,
    both distributions are restricted to it first, and the common-domain
    rule is then applied within that support.

    Returns 0.0 when fewer than two common domains exist.
    """
    if support is not None:
        keys = set(support)
        p = p.restrict(keys)
        q = q.restrict(keys)
    common = sorted(p.support & q.support, key=repr)
    if len(common) < 2:
        return 0.0
    x = [p.probability(k) for k in common]
    y = [q.probability(k) for k in common]
    return kendall_tau_b(x, y)
