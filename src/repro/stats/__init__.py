"""Statistics utilities used throughout the reproduction.

This package provides the deterministic random-variate samplers used by
the ecosystem simulator, the empirical-distribution machinery used by the
proportionality analysis, and the two distribution-comparison metrics the
paper uses in Section 4.3: variation distance and the tie-aware Kendall
rank correlation coefficient (tau-b).
"""

from repro.stats.distributions import (
    EmpiricalDistribution,
    bounded_pareto,
    truncated_lognormal,
    zipf_weights,
    zipf_sample,
)
from repro.stats.bootstrap import BootstrapInterval, bootstrap_fraction
from repro.stats.kendall import kendall_tau_b
from repro.stats.metrics import variation_distance
from repro.stats.rng import SeedSequence, derive_rng

__all__ = [
    "BootstrapInterval",
    "EmpiricalDistribution",
    "bootstrap_fraction",
    "SeedSequence",
    "bounded_pareto",
    "derive_rng",
    "kendall_tau_b",
    "truncated_lognormal",
    "variation_distance",
    "zipf_sample",
    "zipf_weights",
]
