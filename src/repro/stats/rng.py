"""Deterministic random-number management.

Every stochastic component of the simulator draws from its own
``random.Random`` instance derived from a root seed plus a stable string
label.  This keeps components statistically independent while guaranteeing
that the whole pipeline is reproducible from a single integer seed, and --
critically -- that adding draws to one component does not perturb any
other component's stream.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator, Set


def derive_seed(root_seed: int, label: str) -> int:
    """Derive a child seed from *root_seed* and a stable string *label*.

    Uses SHA-256 so that the mapping is stable across Python versions and
    platforms (``hash()`` is salted per-process and unsuitable).
    """
    digest = hashlib.sha256(f"{root_seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def derive_rng(root_seed: int, label: str) -> random.Random:
    """Return an independent ``random.Random`` for component *label*."""
    return random.Random(derive_seed(root_seed, label))


class SeedSequence:
    """A factory handing out independent RNG streams from one root seed.

    Examples
    --------
    >>> seq = SeedSequence(2012)
    >>> rng_a = seq.rng("campaigns")
    >>> rng_b = seq.rng("feeds.mx1")
    >>> seq2 = SeedSequence(2012)
    >>> seq2.rng("campaigns").random() == rng_a.random()
    False

    (The equality above is False only because ``rng_a`` already consumed a
    draw; fresh streams with the same label are identical.)
    """

    def __init__(self, root_seed: int) -> None:
        self.root_seed = int(root_seed)
        self._issued: Set[str] = set()

    def rng(self, label: str) -> random.Random:
        """Return the RNG stream for *label* (fresh instance each call)."""
        self._issued.add(label)
        return derive_rng(self.root_seed, label)

    def child(self, label: str) -> "SeedSequence":
        """Return a nested SeedSequence rooted at a derived seed."""
        return SeedSequence(derive_seed(self.root_seed, label))

    def issued_labels(self) -> Iterator[str]:
        """Yield the labels handed out so far (for diagnostics)."""
        return iter(sorted(self._issued))

    def __repr__(self) -> str:
        return f"SeedSequence(root_seed={self.root_seed})"
