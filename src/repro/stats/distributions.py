"""Random-variate samplers and empirical distributions.

The ecosystem simulator uses heavy-tailed distributions throughout:
campaign volumes, affiliate revenues and domain popularity are all
dominated by a small number of large players -- the property the paper
leans on when observing that tagged domains are a small fraction of
distinct domains but the bulk of spam volume.
"""

from __future__ import annotations

import bisect
import math
import random
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Mapping,
    Sequence,
    Tuple,
    TypeVar,
)

T = TypeVar("T")


def zipf_weights(n: int, exponent: float = 1.0) -> List[float]:
    """Return normalized Zipf weights for ranks ``1..n``.

    ``weight[k] ~ 1 / (k+1)^exponent``, normalized to sum to 1.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    raw = [1.0 / (k + 1) ** exponent for k in range(n)]
    total = sum(raw)
    return [w / total for w in raw]


def zipf_sample(rng: random.Random, n: int, exponent: float = 1.0) -> int:
    """Sample a zero-based rank from a Zipf distribution over ``n`` ranks."""
    weights = zipf_weights(n, exponent)
    return weighted_choice(rng, list(range(n)), weights)


def weighted_choice(
    rng: random.Random, items: Sequence[T], weights: Sequence[float]
) -> T:
    """Pick one item according to *weights* (need not be normalized)."""
    if len(items) != len(weights):
        raise ValueError("items and weights must have equal length")
    if not items:
        raise ValueError("cannot choose from an empty sequence")
    cumulative: List[float] = []
    total = 0.0
    for w in weights:
        if w < 0:
            raise ValueError("weights must be non-negative")
        total += w
        cumulative.append(total)
    if total <= 0:
        raise ValueError("weights must not all be zero")
    x = rng.random() * total
    index = bisect.bisect_right(cumulative, x)
    return items[min(index, len(items) - 1)]


def truncated_lognormal(
    rng: random.Random,
    mu: float,
    sigma: float,
    low: float,
    high: float,
) -> float:
    """Sample a lognormal variate rejected into ``[low, high]``.

    Falls back to clamping after 64 rejected draws so that pathological
    parameterizations cannot loop forever.
    """
    if low > high:
        raise ValueError("low must be <= high")
    for _ in range(64):
        x = rng.lognormvariate(mu, sigma)
        if low <= x <= high:
            return x
    return min(max(rng.lognormvariate(mu, sigma), low), high)


def bounded_pareto(
    rng: random.Random,
    alpha: float,
    low: float,
    high: float,
) -> float:
    """Sample from a bounded Pareto distribution on ``[low, high]``.

    Uses the standard inverse-CDF form.  Heavy right tail for small
    *alpha*; used for campaign volumes and affiliate revenue.
    """
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    if not (0 < low < high):
        raise ValueError("need 0 < low < high")
    u = rng.random()
    la = low**alpha
    ha = high**alpha
    # Inverse CDF of the bounded Pareto.
    x = (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / alpha)
    return min(max(x, low), high)


class EmpiricalDistribution:
    """An empirical probability distribution over hashable outcomes.

    Built from observed counts; used by the proportionality analysis
    (Section 4.3) where each volume-bearing feed defines an empirical
    distribution over spam-advertised domains.
    """

    def __init__(self, counts: Mapping[Hashable, float]) -> None:
        cleaned: Dict[Hashable, float] = {}
        for key, count in counts.items():
            if count < 0:
                raise ValueError(f"negative count for {key!r}")
            if count > 0:
                cleaned[key] = float(count)
        self._counts = cleaned
        self._total = sum(cleaned.values())

    @classmethod
    def from_observations(cls, observations: Iterable[Hashable]) -> "EmpiricalDistribution":
        """Build a distribution by counting raw observations."""
        counts: Dict[Hashable, float] = {}
        for item in observations:
            counts[item] = counts.get(item, 0.0) + 1.0
        return cls(counts)

    @property
    def total(self) -> float:
        """Total observed mass (sum of all counts)."""
        return self._total

    @property
    def support(self) -> FrozenSet[Hashable]:
        """The set of outcomes with positive probability."""
        return frozenset(self._counts)

    def count(self, key: Hashable) -> float:
        """Raw count for *key* (0 if unseen)."""
        return self._counts.get(key, 0.0)

    def probability(self, key: Hashable) -> float:
        """Empirical probability of *key* (0 if unseen or empty)."""
        if self._total == 0:
            return 0.0
        return self._counts.get(key, 0.0) / self._total

    def restrict(self, keys: Iterable[Hashable]) -> "EmpiricalDistribution":
        """Return the distribution restricted to *keys* (re-normalized)."""
        keyset = set(keys)
        return EmpiricalDistribution(
            {k: c for k, c in self._counts.items() if k in keyset}
        )

    def top(self, n: int) -> List[Tuple[Hashable, float]]:
        """Return the *n* highest-count outcomes as (key, count) pairs."""
        return sorted(self._counts.items(), key=lambda kv: (-kv[1], repr(kv[0])))[:n]

    def items(self) -> Iterable[Tuple[Hashable, float]]:
        """Iterate over ``(key, count)`` pairs."""
        return self._counts.items()

    def as_probabilities(self) -> Dict[Hashable, float]:
        """Return a dict mapping each outcome to its probability."""
        if self._total == 0:
            return {}
        return {k: c / self._total for k, c in self._counts.items()}

    def entropy(self) -> float:
        """Shannon entropy (nats) of the distribution."""
        if self._total == 0:
            return 0.0
        h = 0.0
        for c in self._counts.values():
            p = c / self._total
            h -= p * math.log(p)
        return h

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._counts

    def __repr__(self) -> str:
        return (
            f"EmpiricalDistribution(outcomes={len(self._counts)}, "
            f"total={self._total:g})"
        )
