"""Rendering of analysis results as paper-shaped text artifacts.

The benchmark harness prints every table and figure of the paper in a
terminal-friendly form: aligned tables (Tables 1-3), pairwise percentage
matrices (Figures 2, 4, 5, 7, 8), bar charts (Figures 3 and 6), scatter
summaries (Figure 1) and box-plot summaries (Figures 9-12).
"""

from repro.reporting.tables import Table, format_count, format_percent
from repro.reporting.matrix import render_overlap_matrix, render_value_matrix
from repro.reporting.charts import render_bars, render_box_stats, render_scatter
from repro.reporting.report import write_report
from repro.reporting.run_summary import (
    render_metrics_table,
    render_run_summary,
    render_stage_table,
)

__all__ = [
    "Table",
    "format_count",
    "format_percent",
    "render_bars",
    "render_box_stats",
    "render_metrics_table",
    "render_overlap_matrix",
    "render_run_summary",
    "render_scatter",
    "render_stage_table",
    "render_value_matrix",
    "write_report",
]
