"""Aligned plain-text tables."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_count(value: float) -> str:
    """Format a count with thousands separators (paper-table style)."""
    return f"{int(round(value)):,}"


def format_percent(fraction: float, floor: float = 0.01) -> str:
    """Format a fraction as a paper-style percentage.

    Values below *floor* (default 1%) but above zero render as ``<1%``,
    exactly as in Table 2.
    """
    if fraction <= 0:
        return "0%"
    if fraction < floor:
        return f"<{int(floor * 100)}%"
    return f"{round(fraction * 100):.0f}%"


class Table:
    """A simple column-aligned table builder."""

    def __init__(self, headers: Sequence[str], title: Optional[str] = None):
        if not headers:
            raise ValueError("need at least one column")
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: List[List[str]] = []

    def add_row(self, *cells) -> None:
        """Append one row; cell count must match the header."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        """Render the table with right-aligned numeric-ish columns."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt_row(cells: Iterable[str]) -> str:
            parts = []
            for i, cell in enumerate(cells):
                if i == 0:
                    parts.append(cell.ljust(widths[i]))
                else:
                    parts.append(cell.rjust(widths[i]))
            return "  ".join(parts).rstrip()

        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        lines.append(fmt_row(self.headers))
        lines.append("  ".join("-" * w for w in widths))
        lines.extend(fmt_row(row) for row in self.rows)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
