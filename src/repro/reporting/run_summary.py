"""Per-stage run summaries rendered from trace data.

Consumes the JSON-friendly span/metric payloads (either straight off a
live :class:`~repro.obs.trace.Tracer` or re-read from a run manifest)
and renders compact aligned tables: where the wall time went, stage by
stage, plus the counter and gauge snapshot.  Pure formatting — no host
clock reads happen here.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Mapping, Sequence, Tuple

from repro.reporting.tables import Table


def _walk(
    spans: Sequence[Mapping[str, Any]], depth: int = 0
) -> Iterator[Tuple[int, Mapping[str, Any]]]:
    for span in spans:
        yield depth, span
        yield from _walk(span["children"], depth + 1)


def _format_duration(seconds: float) -> str:
    if seconds >= 100:
        return f"{seconds:,.0f}s"
    if seconds >= 1:
        return f"{seconds:.2f}s"
    return f"{seconds * 1000:.1f}ms"


def _format_rss(delta_kib: Any) -> str:
    if delta_kib is None:
        return "-"
    return f"{delta_kib / 1024:+.1f}MiB"


def _format_attributes(attributes: Mapping[str, Any]) -> str:
    return " ".join(
        f"{key}={attributes[key]}" for key in sorted(attributes)
    )


def render_stage_table(
    spans: Sequence[Mapping[str, Any]],
    title: str = "Run stages",
) -> str:
    """The span tree as an indented stage table with time shares."""
    total = sum(float(span["duration_s"]) for span in spans)
    table = Table(
        ["Stage", "Time", "Share", "RSS Δ", "Attributes"], title=title
    )
    for depth, span in _walk(spans):
        duration = float(span["duration_s"])
        share = duration / total if total > 0 else 0.0
        table.add_row(
            "  " * depth + str(span["name"]),
            _format_duration(duration),
            f"{share * 100:.1f}%",
            _format_rss(span["rss_delta_kib"]),
            _format_attributes(span["attributes"]),
        )
    return table.render()


def render_metrics_table(
    metrics: Mapping[str, Mapping[str, Any]],
    title: str = "Run metrics",
) -> str:
    """Counters and gauges as one aligned table."""
    table = Table(["Metric", "Kind", "Value"], title=title)
    for kind in ("counters", "gauges"):
        block = metrics.get(kind, {})
        for name in sorted(block):
            value = block[name]
            rendered = (
                f"{value:,}"
                if isinstance(value, int)
                else f"{float(value):,.3f}"
            )
            table.add_row(name, kind[:-1], rendered)
    return table.render()


def render_run_summary(
    spans: Sequence[Mapping[str, Any]],
    metrics: Mapping[str, Mapping[str, Any]],
) -> str:
    """Stage table plus metric table, separated by a blank line."""
    return "\n\n".join(
        [render_stage_table(spans), render_metrics_table(metrics)]
    )


__all__: List[str] = [
    "render_metrics_table",
    "render_run_summary",
    "render_stage_table",
]
