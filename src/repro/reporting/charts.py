"""Bar charts, scatter summaries and box-plot renderings."""

from __future__ import annotations

import math
from typing import List, Mapping, Optional, Sequence, Tuple

from repro.analysis.coverage import ScatterPoint
from repro.analysis.timing import BoxStats


def render_bars(
    values: Sequence[Tuple[str, float]],
    width: int = 50,
    max_value: Optional[float] = None,
    unit: str = "",
    title: Optional[str] = None,
) -> str:
    """Horizontal bar chart for Figure 3 / Figure 6 style data."""
    if not values:
        return title or ""
    peak = max_value if max_value is not None else max(v for _, v in values)
    peak = max(peak, 1e-12)
    label_width = max(len(label) for label, _ in values)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in values:
        filled = int(round(width * min(value, peak) / peak))
        bar = "#" * filled
        lines.append(
            f"{label.ljust(label_width)}  {bar:<{width}}  {value:.2f}{unit}"
        )
    return "\n".join(lines)


def render_stacked_bars(
    values: Sequence[Tuple[str, float, float]],
    width: int = 50,
    title: Optional[str] = None,
) -> str:
    """Stacked two-component bars (Figure 3: covered ``#`` + benign ``:``).

    Values are fractions in [0, 1]; the bar spans the full width at 1.0.
    """
    if not values:
        return title or ""
    label_width = max(len(label) for label, _, _ in values)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, covered, benign in values:
        n_covered = int(round(width * max(0.0, min(covered, 1.0))))
        n_benign = int(round(width * max(0.0, min(benign, 1.0 - covered))))
        bar = "#" * n_covered + ":" * n_benign
        lines.append(
            f"{label.ljust(label_width)}  {bar:<{width}}  "
            f"{100 * covered:5.1f}% + {100 * benign:5.1f}%"
        )
    return "\n".join(lines)


def render_scatter(
    points: Sequence[ScatterPoint],
    title: Optional[str] = None,
) -> str:
    """Figure 1 as a table of log10 coordinates and exclusivity shares."""
    label_width = max((len(p.feed) for p in points), default=4)
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        f"{'feed'.ljust(label_width)}  {'distinct':>9}  {'excl.':>8}  "
        f"{'log10(d)':>8}  {'log10(e)':>8}  {'excl%':>6}"
    )
    for p in sorted(points, key=lambda p: -p.distinct):
        log_e = f"{p.log_exclusive:8.2f}" if p.exclusive else "    -inf"
        lines.append(
            f"{p.feed.ljust(label_width)}  {p.distinct:>9,}  "
            f"{p.exclusive:>8,}  {p.log_distinct:8.2f}  {log_e}  "
            f"{100 * p.exclusive_fraction:5.1f}%"
        )
    return "\n".join(lines)


def render_box_stats(
    stats: Mapping[str, BoxStats],
    order: Optional[Sequence[str]] = None,
    divisor: float = 1.0,
    unit: str = "min",
    title: Optional[str] = None,
) -> str:
    """Box-plot summaries (Figures 9-12) as a percentile table."""
    names = [n for n in (order or stats) if n in stats]
    label_width = max((len(n) for n in names), default=4)
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        f"{'feed'.ljust(label_width)}  {'p5':>8}  {'p25':>8}  "
        f"{'median':>8}  {'p75':>8}  {'p95':>8}  {'n':>6}  ({unit})"
    )
    for name in names:
        b = stats[name].scaled(divisor)
        lines.append(
            f"{name.ljust(label_width)}  {b.p5:8.2f}  {b.p25:8.2f}  "
            f"{b.median:8.2f}  {b.p75:8.2f}  {b.p95:8.2f}  {b.n:>6}"
        )
    return "\n".join(lines)


def log10_guides(max_value: int) -> List[int]:
    """Decade guide values up to *max_value* (axis helper for Figure 1)."""
    if max_value < 1:
        return []
    top = int(math.floor(math.log10(max_value)))
    return [10**k for k in range(0, top + 1)]
