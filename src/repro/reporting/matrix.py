"""Pairwise-matrix rendering (Figures 2, 4, 5, 7 and 8)."""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.analysis.coverage import OverlapMatrix


def _abbreviate(count: int) -> str:
    """Compact counts the way the paper's matrix cells do (61K etc.)."""
    if count >= 10_000:
        return f"{round(count / 1000)}K"
    if count >= 1_000:
        return f"{count / 1000:.1f}K"
    return str(count)


def render_overlap_matrix(
    matrix: OverlapMatrix,
    rows: Optional[Sequence[str]] = None,
    include_all_column: bool = True,
    title: Optional[str] = None,
) -> str:
    """Render an :class:`OverlapMatrix` in the paper's Figure 2 style.

    Each cell shows the percentage of the column feed covered by the row
    feed over the absolute intersection count.
    """
    row_names = list(rows) if rows is not None else list(matrix.feeds)
    columns = list(row_names)
    if include_all_column:
        columns.append(matrix.ALL)
    width = max(
        8, max((len(name) for name in row_names + columns), default=8) + 1
    )

    lines: List[str] = []
    if title:
        lines.append(title)
    header = " " * width + "".join(c.rjust(width) for c in columns)
    lines.append(header)
    for row in row_names:
        pct_cells: List[str] = []
        abs_cells: List[str] = []
        for column in columns:
            fraction, intersection = matrix.cell(row, column)
            pct_cells.append(f"{round(100 * fraction)}%".rjust(width))
            abs_cells.append(_abbreviate(intersection).rjust(width))
        lines.append(row.ljust(width) + "".join(pct_cells))
        lines.append(" " * width + "".join(abs_cells))
    return "\n".join(lines)


def render_value_matrix(
    values: Mapping[str, Mapping[str, float]],
    labels: Optional[Sequence[str]] = None,
    fmt: Callable[[float], str] = lambda v: f"{v:.2f}",
    title: Optional[str] = None,
) -> str:
    """Render a symmetric value matrix (Figures 7 and 8)."""
    names = list(labels) if labels is not None else list(values)
    width = max(7, max((len(n) for n in names), default=7) + 1)
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" " * width + "".join(n.rjust(width) for n in names))
    for row in names:
        cells: List[str] = []
        for column in names:
            cells.append(fmt(values[row][column]).rjust(width))
        lines.append(row.ljust(width) + "".join(cells))
    return "\n".join(lines)
