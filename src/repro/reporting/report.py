"""Full-report writer: every artifact to a directory.

Produces the deliverables a measurement study would archive: one text
file per table/figure, machine-readable CSVs for the tabular results,
and a combined ``report.txt``.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Dict, List

from repro.io.csvexport import write_csv

if TYPE_CHECKING:  # avoid a circular import with the pipeline package
    from repro.pipeline.runner import PaperPipeline


def write_report(pipeline: "PaperPipeline", directory: str) -> List[str]:
    """Write every table and figure under *directory*.

    Returns the list of files written (relative names, sorted).
    """
    os.makedirs(directory, exist_ok=True)
    artifacts: Dict[str, str] = {
        "table1.txt": pipeline.render_table1(),
        "table2.txt": pipeline.render_table2(),
        "table3.txt": pipeline.render_table3(),
        "figure1.txt": pipeline.render_figure1(),
        "figure2.txt": pipeline.render_figure2(),
        "figure3.txt": pipeline.render_figure3(),
        "figure4.txt": pipeline.render_figure4(),
        "figure5.txt": pipeline.render_figure5(),
        "figure6.txt": pipeline.render_figure6(),
        "figure7.txt": pipeline.render_figure7(),
        "figure8.txt": pipeline.render_figure8(),
        "figure9.txt": pipeline.render_figure9(),
        "figure10.txt": pipeline.render_figure10(),
        "figure11.txt": pipeline.render_figure11(),
        "figure12.txt": pipeline.render_figure12(),
        "report.txt": pipeline.render_all(),
    }
    for name, text in artifacts.items():
        with open(os.path.join(directory, name), "w", encoding="utf-8") as f:
            f.write(text + "\n")

    write_csv(pipeline.table2(), os.path.join(directory, "table2.csv"))
    write_csv(pipeline.table3(), os.path.join(directory, "table3.csv"))
    write_csv(pipeline.figure6(), os.path.join(directory, "figure6.csv"))
    for kind in ("live", "tagged"):
        write_csv(
            pipeline.figure3(kind),
            os.path.join(directory, f"figure3_{kind}.csv"),
        )

    return sorted(
        entry for entry in os.listdir(directory)
        if entry.endswith((".txt", ".csv"))
    )
