"""Shared Table 1/2/3 builders used by both batch and streaming paths.

The batch :class:`~repro.pipeline.runner.PaperPipeline` and the
streaming :class:`~repro.stream.engine.StreamSnapshot` must emit
byte-identical tables once a stream is fully drained, so the data
assembly and rendering live here, in one place, and both call in.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence

from repro.reporting.tables import Table, format_count, format_percent

#: Default titles, exactly as the paper-shaped report prints them.
TABLE1_TITLE = "Table 1: Summary of spam domain sources (feeds)"
TABLE2_TITLE = "Table 2: Positive and negative indicators of feed purity"
TABLE3_TITLE = "Table 3: Feed domain coverage"


def table1_data(
    datasets: Mapping[str, object], order: Sequence[str]
) -> Dict[str, Dict[str, int]]:
    """Table 1 cells: total samples and unique domains per feed.

    *datasets* maps feed name to any object with ``total_samples`` and
    ``n_unique`` (a :class:`~repro.feeds.base.FeedDataset` or a
    streaming accumulator).
    """
    return {
        name: {
            "samples": datasets[name].total_samples,
            "unique": datasets[name].n_unique,
        }
        for name in order
    }


def render_table1(
    datasets: Mapping[str, object],
    order: Sequence[str],
    title: str = TABLE1_TITLE,
) -> str:
    """Table 1 in the paper's layout."""
    table = Table(["Feed", "Type", "Domains", "Unique"], title=title)
    for name in order:
        dataset = datasets[name]
        samples = (
            "n/a"
            if dataset.feed_type.value == "blacklist"
            else format_count(dataset.total_samples)
        )
        table.add_row(
            name,
            dataset.feed_type.value.replace("_", " "),
            samples,
            format_count(dataset.n_unique),
        )
    return table.render()


def render_table2(rows: Iterable, title: str = TABLE2_TITLE) -> str:
    """Table 2 in the paper's layout, from :class:`PurityRow` rows."""
    table = Table(
        ["Feed", "DNS", "HTTP", "Tagged", "ODP", "Alexa"], title=title
    )
    for row in rows:
        table.add_row(
            row.feed,
            format_percent(row.dns),
            format_percent(row.http),
            format_percent(row.tagged),
            format_percent(row.odp),
            format_percent(row.alexa),
        )
    return table.render()


def render_table3(rows: Iterable, title: str = TABLE3_TITLE) -> str:
    """Table 3 in the paper's layout, from :class:`CoverageRow` rows."""
    table = Table(
        [
            "Feed",
            "All Total", "All Excl.",
            "Live Total", "Live Excl.",
            "Tagged Total", "Tagged Excl.",
        ],
        title=title,
    )
    for row in rows:
        table.add_row(
            row.feed,
            format_count(row.total_all),
            format_count(row.exclusive_all),
            format_count(row.total_live),
            format_count(row.exclusive_live),
            format_count(row.total_tagged),
            format_count(row.exclusive_tagged),
        )
    return table.render()
