"""Taster's Choice reproduction: comparative analysis of spam feeds.

A full reproduction of Pitsillidis et al., "Taster's Choice: A
Comparative Analysis of Spam Feeds" (IMC 2012), with the proprietary
inputs replaced by a generative spam-ecosystem simulator (see DESIGN.md
for the substitution map).

Quickstart::

    from repro import PaperPipeline

    pipeline = PaperPipeline(seed=2012)
    print(pipeline.render_table2())     # purity indicators
    print(pipeline.render_figure9())    # first-appearance latency

Packages:

* :mod:`repro.domains`   -- registered-domain model and generators
* :mod:`repro.ecosystem` -- ground-truth world simulator
* :mod:`repro.feeds`     -- the ten feed collectors
* :mod:`repro.oracles`   -- DNS/crawl/weblist/mail oracles
* :mod:`repro.analysis`  -- purity/coverage/proportionality/timing
* :mod:`repro.pipeline`  -- the end-to-end paper pipeline
* :mod:`repro.reporting` -- text rendering of tables and figures
* :mod:`repro.io`        -- JSONL/CSV serialization
"""

from repro.analysis import FeedComparison
from repro.ecosystem import (
    EcosystemConfig,
    World,
    build_world,
    paper_config,
    small_config,
)
from repro.feeds import (
    FeedDataset,
    PAPER_FEED_ORDER,
    collect_all,
    standard_feed_suite,
)
from repro.pipeline import PaperPipeline

__version__ = "1.0.0"

__all__ = [
    "EcosystemConfig",
    "FeedComparison",
    "FeedDataset",
    "PAPER_FEED_ORDER",
    "PaperPipeline",
    "World",
    "__version__",
    "build_world",
    "collect_all",
    "paper_config",
    "small_config",
    "standard_feed_suite",
]
