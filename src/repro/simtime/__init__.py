"""Simulation time model.

The paper's measurement window runs from August 1st, 2010 through
October 31st, 2010 (92 days).  The simulator tracks time as integer
*minutes* since the start of that window; this module provides the
window constants, conversion helpers and the :class:`Timeline` object
shared by the ecosystem, the feeds and the oracles.
"""

from repro.simtime.clock import (
    MINUTES_PER_DAY,
    MINUTES_PER_HOUR,
    MEASUREMENT_DAYS,
    MEASUREMENT_MINUTES,
    ORACLE_WINDOW_DAYS,
    SimTime,
    Timeline,
    days,
    hours,
    minutes_to_days,
    minutes_to_hours,
)

__all__ = [
    "MINUTES_PER_DAY",
    "MINUTES_PER_HOUR",
    "MEASUREMENT_DAYS",
    "MEASUREMENT_MINUTES",
    "ORACLE_WINDOW_DAYS",
    "SimTime",
    "Timeline",
    "days",
    "hours",
    "minutes_to_days",
    "minutes_to_hours",
]
