"""Minute-resolution simulation clock for the measurement window.

All simulator components share a single time base: integer minutes since
2010-08-01 00:00 UTC (the start of the paper's measurement period).  Times
before the window are negative; this is used by the DNS zone oracle, whose
snapshots bracket the window by 16 months on either side.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Tuple

MINUTES_PER_HOUR = 60
MINUTES_PER_DAY = 24 * MINUTES_PER_HOUR

#: Length of the paper's measurement window (Aug 1 - Oct 31, 2010).
MEASUREMENT_DAYS = 92
MEASUREMENT_MINUTES = MEASUREMENT_DAYS * MINUTES_PER_DAY

#: The incoming mail oracle measured volume over five days (Section 4.2.2).
ORACLE_WINDOW_DAYS = 5

#: Simulation timestamps are plain ints (minutes since window start).
SimTime = int


def hours(n: float) -> SimTime:
    """Convert a duration in hours to simulation minutes."""
    return int(round(n * MINUTES_PER_HOUR))


def days(n: float) -> SimTime:
    """Convert a duration in days to simulation minutes."""
    return int(round(n * MINUTES_PER_DAY))


def minutes_to_hours(t: SimTime) -> float:
    """Convert simulation minutes to fractional hours."""
    return t / MINUTES_PER_HOUR


def minutes_to_days(t: SimTime) -> float:
    """Convert simulation minutes to fractional days."""
    return t / MINUTES_PER_DAY


@dataclasses.dataclass(frozen=True)
class Timeline:
    """The measurement window and derived sub-windows.

    Parameters
    ----------
    start:
        First minute of the measurement window (always 0 by convention).
    end:
        One-past-the-last minute of the window.
    oracle_start:
        First minute of the incoming-mail-oracle sample sub-window.
    oracle_days:
        Length of the oracle sub-window in days.
    """

    start: SimTime = 0
    end: SimTime = MEASUREMENT_MINUTES
    oracle_start: SimTime = days(45)
    oracle_days: int = ORACLE_WINDOW_DAYS

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("timeline end must be after start")
        if not (self.start <= self.oracle_start < self.end):
            raise ValueError("oracle window must start inside the timeline")
        if self.oracle_end > self.end:
            raise ValueError("oracle window must end inside the timeline")

    @property
    def duration(self) -> SimTime:
        """Total window length in minutes."""
        return self.end - self.start

    @property
    def duration_days(self) -> float:
        """Total window length in days."""
        return minutes_to_days(self.duration)

    @property
    def oracle_end(self) -> SimTime:
        """One-past-the-last minute of the oracle sub-window."""
        return self.oracle_start + days(self.oracle_days)

    def contains(self, t: SimTime) -> bool:
        """Return True if *t* falls inside the measurement window."""
        return self.start <= t < self.end

    def in_oracle_window(self, t: SimTime) -> bool:
        """Return True if *t* falls inside the mail-oracle sample window."""
        return self.oracle_start <= t < self.oracle_end

    def clamp(self, t: SimTime) -> SimTime:
        """Clamp *t* into the measurement window."""
        return max(self.start, min(t, self.end - 1))

    def day_of(self, t: SimTime) -> int:
        """Return the (zero-based) day index of minute *t*."""
        return (t - self.start) // MINUTES_PER_DAY

    def iter_days(self) -> Iterator[Tuple[int, SimTime]]:
        """Yield ``(day_index, day_start_minute)`` pairs over the window."""
        day = 0
        t = self.start
        while t < self.end:
            yield day, t
            day += 1
            t += MINUTES_PER_DAY
