"""Deterministic domain-name generators for the ecosystem simulator.

Three name populations matter to the paper's analysis:

* *storefront* names registered by affiliates/spammers (pronounceable
  pharma/replica/software-flavored names, constantly re-registered as
  blacklisting burns them),
* *benign* names (the Alexa/ODP world plus ordinary mail traffic), and
* *DGA* names: random, unregistered gibberish such as the domains the
  Rustock botnet emitted for several weeks during the measurement period
  (Section 4.1.1), which drag down the DNS/HTTP purity of the ``Bot`` and
  ``mx2`` feeds.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from functools import lru_cache
from typing import (
    Callable,
    Iterable,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Set,
    Tuple,
)

_VOWELS = "aeiou"
_CONSONANTS = "bcdfghjklmnpqrstvwxyz"

#: Word stock for storefront names, by goods category.
PHARMA_WORDS: Sequence[str] = (
    "pill", "rx", "med", "pharma", "drug", "tab", "care", "health",
    "cure", "dose", "remedy", "script", "canadian", "discount", "generic",
    "viag", "cial", "herbal", "vital", "swift",
)
REPLICA_WORDS: Sequence[str] = (
    "replica", "watch", "lux", "brand", "time", "swiss", "gold", "elite",
    "classic", "royal", "premier", "style", "chrono", "exact", "mirror",
)
SOFTWARE_WORDS: Sequence[str] = (
    "soft", "oem", "cheap", "key", "licen", "download", "digital", "app",
    "program", "office", "studio", "suite", "instant", "direct",
)
BENIGN_WORDS: Sequence[str] = (
    "news", "blog", "shop", "home", "tech", "world", "daily", "cloud",
    "media", "forum", "photo", "travel", "sport", "music", "game", "mail",
    "data", "web", "net", "info", "city", "book", "food", "auto", "bank",
    "school", "art", "film", "green", "star", "river", "stone", "field",
)
GENERIC_SUFFIX_WORDS: Sequence[str] = (
    "online", "store", "shop", "site", "market", "zone", "hub", "now",
    "direct", "place", "point", "center", "plus", "pro", "world",
)

#: TLD mixes (weights need not sum to 1).
TldWeights = Sequence[Tuple[str, float]]

SPAM_TLD_WEIGHTS: TldWeights = (
    ("com", 0.55), ("net", 0.15), ("org", 0.08), ("info", 0.08),
    ("biz", 0.06), ("ru", 0.05), ("us", 0.03),
)
BENIGN_TLD_WEIGHTS: TldWeights = (
    ("com", 0.60), ("org", 0.12), ("net", 0.10), ("edu", 0.04),
    ("gov", 0.02), ("de", 0.04), ("co.uk", 0.04), ("info", 0.02),
    ("us", 0.02),
)
DGA_TLD_WEIGHTS: TldWeights = (("com", 0.7), ("net", 0.2), ("info", 0.1),)


@lru_cache(maxsize=None)
def _tld_cumulative(
    weights: Tuple[Tuple[str, float], ...],
) -> Tuple[Tuple[str, ...], Tuple[float, ...]]:
    """Precomputed prefix sums for a TLD weight table (hot path)."""
    tlds: List[str] = []
    cumulative: List[float] = []
    acc = 0.0
    for tld, w in weights:
        acc += w
        tlds.append(tld)
        cumulative.append(acc)
    return tuple(tlds), tuple(cumulative)


def _pick_tld(rng: random.Random, weights: TldWeights) -> str:
    # Exactly one rng.random() draw, like the original linear scan, so
    # the derived name streams are byte-identical.
    tlds, cumulative = _tld_cumulative(tuple(weights))
    x = rng.random() * cumulative[-1]
    index = bisect_left(cumulative, x)
    if index >= len(tlds):
        return tlds[-1]
    return tlds[index]


def _syllable(rng: random.Random) -> str:
    return rng.choice(_CONSONANTS) + rng.choice(_VOWELS)


#: Number of distinct consonant-vowel syllables :func:`salt_token` can
#: emit per position (the base of its integer encoding).
SALT_BASE = len(_CONSONANTS) * len(_VOWELS)


def salt_token(index: int) -> str:
    """Encode *index* as a pronounceable consonant-vowel syllable string.

    The mapping is injective: distinct indices yield distinct tokens, so
    two generators salted with different indices can never issue the
    same name (see :class:`SpamNameGenerator`).  Tokens contain only
    letters -- never digits or hyphens -- which is what makes the salted
    label grammar unambiguous.
    """
    if index < 0:
        raise ValueError("salt index must be non-negative")
    syllables: List[str] = []
    while True:
        index, digit = divmod(index, SALT_BASE)
        consonant, vowel = divmod(digit, len(_VOWELS))
        syllables.append(_CONSONANTS[consonant] + _VOWELS[vowel])
        if index == 0:
            break
    return "".join(reversed(syllables))


class _BaseNameGenerator:
    """Shared machinery: collision-free issuance from a seeded RNG.

    Generators can share one *issued* set so that several generators
    (e.g. per-category storefront namers plus a web-spam namer) never
    collide with each other -- an accidental collision would silently
    merge two unrelated campaigns' ground truth.
    """

    def __init__(
        self, rng: random.Random, issued: Optional[Set[str]] = None
    ) -> None:
        self._rng = rng
        self._issued: Set[str] = issued if issued is not None else set()

    def _issue(self, make_candidate: Callable[[], str]) -> str:
        """Draw candidates until one is new; suffix a counter if needed."""
        for _ in range(64):
            name = make_candidate()
            if name not in self._issued:
                self._issued.add(name)
                return name
        # Extremely unlikely fallback: disambiguate deterministically.
        base = make_candidate()
        counter = 2
        while f"{counter}-{base}" in self._issued:
            counter += 1
        name = f"{counter}-{base}"
        self._issued.add(name)
        return name

    @property
    def issued_count(self) -> int:
        """How many distinct names this generator has produced."""
        return len(self._issued)

    def issued(self) -> Set[str]:
        """A copy of the set of names issued so far."""
        return set(self._issued)


class SpamNameGenerator(_BaseNameGenerator):
    """Generate storefront domain names for a goods category.

    Names look like real spam-advertised storefronts: one or two stock
    words, optional glue syllables and digits, a spam-skewed TLD mix.

    A non-empty *salt* partitions the name space: the salt is embedded
    in every label behind a hyphen (word stock and glue contain none),
    followed only by optional digits, so labels from generators with
    different salts can never be equal.  The sharded world build salts
    every campaign's generator with its campaign id, which is what
    makes shard-local name issuance globally collision-free without any
    shared issued-name set.  Salted and unsalted generators consume
    identical RNG draw sequences.
    """

    _CATEGORY_WORDS: Mapping[str, Sequence[str]] = {
        "pharma": PHARMA_WORDS,
        "replica": REPLICA_WORDS,
        "software": SOFTWARE_WORDS,
    }

    def __init__(
        self,
        rng: random.Random,
        category: str = "pharma",
        issued: Optional[Set[str]] = None,
        salt: str = "",
    ) -> None:
        super().__init__(rng, issued)
        if category not in self._CATEGORY_WORDS:
            raise ValueError(f"unknown goods category {category!r}")
        if salt and not salt.isalpha():
            raise ValueError("salt must be letters only")
        self.category = category
        self.salt = salt
        self._words = self._CATEGORY_WORDS[category]

    def generate(self) -> str:
        """Return a fresh registered-domain name."""
        rng = self._rng

        def candidate() -> str:
            parts: List[str] = [rng.choice(self._words)]
            roll = rng.random()
            if roll < 0.45:
                parts.append(rng.choice(GENERIC_SUFFIX_WORDS))
            elif roll < 0.70:
                parts.append(_syllable(rng) + _syllable(rng))
            if self.salt:
                parts.append("-" + self.salt)
            if rng.random() < 0.35:
                parts.append(str(rng.randrange(1, 1000)))
            label = "".join(parts)
            return f"{label}.{_pick_tld(rng, SPAM_TLD_WEIGHTS)}"

        return self._issue(candidate)

    def generate_batch(self, n: int) -> List[str]:
        """Return *n* fresh names."""
        return [self.generate() for _ in range(n)]


class BenignNameGenerator(_BaseNameGenerator):
    """Generate benign web-site names (the Alexa/ODP world)."""

    def generate(self) -> str:
        """Return a fresh benign registered-domain name."""
        rng = self._rng

        def candidate() -> str:
            first = rng.choice(BENIGN_WORDS)
            second = rng.choice(BENIGN_WORDS)
            if rng.random() < 0.3:
                label = first + second
            else:
                label = first + rng.choice(GENERIC_SUFFIX_WORDS)
            if rng.random() < 0.10:
                label += str(rng.randrange(1, 100))
            return f"{label}.{_pick_tld(rng, BENIGN_TLD_WEIGHTS)}"

        return self._issue(candidate)

    def generate_batch(self, n: int) -> List[str]:
        """Return *n* fresh names."""
        return [self.generate() for _ in range(n)]


class DgaNameGenerator(_BaseNameGenerator):
    """Generate Rustock-style random pseudo-URL domain names.

    These names cost the spammer nearly nothing and are never registered;
    they exist to poison blacklists and waste analyst time.
    """

    def __init__(
        self,
        rng: random.Random,
        min_len: int = 9,
        max_len: int = 16,
        issued: Optional[Set[str]] = None,
    ) -> None:
        super().__init__(rng, issued)
        if not (3 <= min_len <= max_len):
            raise ValueError("need 3 <= min_len <= max_len")
        self.min_len = min_len
        self.max_len = max_len

    def generate(self) -> str:
        """Return a fresh random gibberish domain name."""
        rng = self._rng

        def candidate() -> str:
            length = rng.randrange(self.min_len, self.max_len + 1)
            label = "".join(
                rng.choice(_CONSONANTS if rng.random() < 0.78 else _VOWELS)
                for _ in range(length)
            )
            return f"{label}.{_pick_tld(rng, DGA_TLD_WEIGHTS)}"

        return self._issue(candidate)

    def generate_batch(self, n: int) -> List[str]:
        """Return *n* fresh names."""
        return [self.generate() for _ in range(n)]


def is_plausible_dga(domain: str) -> bool:
    """Cheap lexical heuristic for DGA-looking registrant labels.

    Flags labels that are long, digit-free and heavily consonantal.  Used
    by tests and by the impurity-inspection example; the analysis itself
    never relies on it (the paper uses DNS registration instead).
    """
    label = domain.split(".")[0]
    if len(label) < 9 or any(ch.isdigit() for ch in label):
        return False
    vowels = sum(1 for ch in label if ch in _VOWELS)
    return vowels / len(label) < 0.30


class NameGenerator(Protocol):
    """Structural type for anything with a ``generate() -> str`` method."""

    def generate(self) -> str: ...


def unique_names(generator: NameGenerator, n: int) -> List[str]:
    """Convenience: pull *n* names from any generator with ``generate``."""
    return [generator.generate() for _ in range(n)]


def merge_disjoint(*name_sets: Iterable[str]) -> Set[str]:
    """Union name collections, raising if any overlap.

    The simulator's name populations (spam, benign, DGA) must be disjoint
    for ground truth to be meaningful; this guards world construction.
    """
    merged: Set[str] = set()
    for names in name_sets:
        for name in names:
            if name in merged:
                raise ValueError(f"name populations overlap on {name!r}")
            merged.add(name)
    return merged
