"""Minimal URL parsing down to the registered domain.

Feeds differ in what they report (Section 2): some provide full
spam-advertised URLs, others only fully-qualified domain names.  The
comparison runs at the lowest common denominator -- registered domains --
so all we need from a URL is its host.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Optional

from repro.domains.parse import InvalidDomainError, registered_domain
from repro.domains.psl import PublicSuffixTable


class InvalidUrlError(ValueError):
    """Raised when a string cannot be interpreted as an HTTP(S) URL."""


_SCHEME_RE = re.compile(r"^([a-z][a-z0-9+.-]*)://", re.IGNORECASE)
_IPV4_RE = re.compile(r"^\d{1,3}(\.\d{1,3}){3}$")


@dataclasses.dataclass(frozen=True)
class ParsedUrl:
    """Decomposed URL: scheme, host, optional port, and path+query rest."""

    scheme: str
    host: str
    port: Optional[int]
    path: str

    @property
    def is_ip_literal(self) -> bool:
        """True if the host is a (dotted-quad) IP address, not a name."""
        return bool(_IPV4_RE.match(self.host))


def parse_url(url: str) -> ParsedUrl:
    """Parse an absolute HTTP(S) URL into its components.

    Handles userinfo, ports, paths, queries and fragments; rejects
    non-HTTP schemes and empty hosts.  Raises :class:`InvalidUrlError`.
    """
    if not isinstance(url, str):
        raise InvalidUrlError(f"not a string: {url!r}")
    text = url.strip()
    match = _SCHEME_RE.match(text)
    if not match:
        raise InvalidUrlError(f"missing scheme: {url!r}")
    scheme = match.group(1).lower()
    if scheme not in ("http", "https"):
        raise InvalidUrlError(f"unsupported scheme {scheme!r}")
    rest = text[match.end():]
    # Authority ends at the first '/', '?' or '#'.
    end = len(rest)
    for ch in "/?#":
        idx = rest.find(ch)
        if idx != -1:
            end = min(end, idx)
    authority = rest[:end]
    path = rest[end:] or "/"
    if "@" in authority:
        authority = authority.rsplit("@", 1)[1]
    port: Optional[int] = None
    if ":" in authority:
        host_part, port_part = authority.rsplit(":", 1)
        if port_part:
            if not port_part.isdigit():
                raise InvalidUrlError(f"bad port in {url!r}")
            port = int(port_part)
            if not (0 < port < 65536):
                raise InvalidUrlError(f"port out of range in {url!r}")
        authority = host_part
    host = authority.strip().rstrip(".").lower()
    if not host:
        raise InvalidUrlError(f"empty host in {url!r}")
    return ParsedUrl(scheme=scheme, host=host, port=port, path=path)


def domain_of_url(
    url: str, table: Optional[PublicSuffixTable] = None
) -> str:
    """Return the registered domain advertised by *url*.

    Raises :class:`InvalidUrlError` for malformed URLs or IP-literal
    hosts, and :class:`InvalidDomainError` for hosts that are bare public
    suffixes.
    """
    parsed = parse_url(url)
    if parsed.is_ip_literal:
        raise InvalidUrlError(f"IP-literal host in {url!r}")
    return registered_domain(parsed.host, table)


def try_domain_of_url(
    url: str, table: Optional[PublicSuffixTable] = None
) -> Optional[str]:
    """Like :func:`domain_of_url` but returns None on any parse failure."""
    try:
        return domain_of_url(url, table)
    except (InvalidUrlError, InvalidDomainError):
        return None
