"""Domain-name validation, normalization, and registered-domain extraction."""

from __future__ import annotations

import re
from typing import Optional, Tuple

from repro.domains.psl import PublicSuffixTable, default_suffix_table


class InvalidDomainError(ValueError):
    """Raised when a string cannot be interpreted as a DNS domain name."""


_LABEL_RE = re.compile(r"^[a-z0-9]([a-z0-9-]{0,61}[a-z0-9])?$")
_MAX_DOMAIN_LENGTH = 253


def normalize_domain(name: str) -> str:
    """Normalize *name* into canonical lowercase dotted form.

    Strips surrounding whitespace and a single trailing dot, lowercases,
    and validates each label against RFC 1035 LDH rules.  Raises
    :class:`InvalidDomainError` on malformed input.
    """
    if not isinstance(name, str):
        raise InvalidDomainError(f"not a string: {name!r}")
    cleaned = name.strip().rstrip(".").lower()
    if not cleaned:
        raise InvalidDomainError("empty domain name")
    if len(cleaned) > _MAX_DOMAIN_LENGTH:
        raise InvalidDomainError(f"domain too long ({len(cleaned)} chars)")
    labels = cleaned.split(".")
    if len(labels) < 2:
        raise InvalidDomainError(f"no dot in domain name: {name!r}")
    for label in labels:
        if not _LABEL_RE.match(label):
            raise InvalidDomainError(f"bad label {label!r} in {name!r}")
    return cleaned


def split_domain(
    name: str, table: Optional[PublicSuffixTable] = None
) -> Tuple[str, str, str]:
    """Split *name* into ``(subdomain, registrant_label, public_suffix)``.

    The subdomain part may be empty.  Raises :class:`InvalidDomainError`
    if the name is malformed or is itself a public suffix.
    """
    table = table or default_suffix_table()
    normalized = normalize_domain(name)
    labels = normalized.split(".")
    k = table.suffix_length(labels)
    if len(labels) <= k:
        raise InvalidDomainError(f"{name!r} is a public suffix")
    suffix = ".".join(labels[-k:])
    registrant = labels[-(k + 1)]
    sub = ".".join(labels[: -(k + 1)])
    return sub, registrant, suffix


def registered_domain(
    name: str, table: Optional[PublicSuffixTable] = None
) -> str:
    """Return the registered domain of *name* (Section 3.1 of the paper).

    For ``cs.ucsd.edu`` this is ``ucsd.edu``; for ``a.b.example.co.uk``
    it is ``example.co.uk``.  Raises :class:`InvalidDomainError` for
    malformed names or bare public suffixes.
    """
    sub, registrant, suffix = split_domain(name, table)
    del sub
    return f"{registrant}.{suffix}"


def try_registered_domain(
    name: str, table: Optional[PublicSuffixTable] = None
) -> Optional[str]:
    """Like :func:`registered_domain` but returns None instead of raising.

    Feeds are noisy; the analysis pipeline uses this form to drop
    malformed records while counting them (Section 3.3).
    """
    try:
        return registered_domain(name, table)
    except InvalidDomainError:
        return None
