"""Domain-name model.

The paper compares feeds at the granularity of *registered domains*: the
part of a fully-qualified domain name that the owner registered with the
registrar (Section 3.1).  This package provides:

* a public-suffix table and :func:`registered_domain` extraction,
* URL parsing down to the registered domain,
* deterministic domain-name generators used by the ecosystem simulator
  (storefront names, benign names, and Rustock-style DGA names).
"""

from repro.domains.psl import (
    DEFAULT_SUFFIXES,
    PublicSuffixTable,
    default_suffix_table,
)
from repro.domains.names import (
    BenignNameGenerator,
    DgaNameGenerator,
    SpamNameGenerator,
    is_plausible_dga,
    salt_token,
)
from repro.domains.parse import (
    InvalidDomainError,
    normalize_domain,
    registered_domain,
    split_domain,
)
from repro.domains.url import InvalidUrlError, domain_of_url, parse_url

__all__ = [
    "BenignNameGenerator",
    "DEFAULT_SUFFIXES",
    "DgaNameGenerator",
    "InvalidDomainError",
    "InvalidUrlError",
    "PublicSuffixTable",
    "SpamNameGenerator",
    "default_suffix_table",
    "domain_of_url",
    "is_plausible_dga",
    "normalize_domain",
    "parse_url",
    "registered_domain",
    "salt_token",
    "split_domain",
]
