"""Public-suffix table.

Blacklisting and the paper's analysis both operate at the level of
*registered* domains, so we need a way to find the boundary between the
public suffix (administered by a registry) and the registrant's label.
This is a compact, self-contained implementation of the public-suffix
matching algorithm with an embedded rule set covering the TLDs that occur
in the simulation (and the common multi-label suffixes needed to make the
extraction logic honest: ``co.uk``, ``com.br``, wildcards, exceptions).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

#: Embedded rule set, a curated subset of the Mozilla public suffix list.
#: Syntax follows the PSL: leading ``*.`` is a wildcard matching exactly
#: one label; leading ``!`` marks an exception to a wildcard rule.
DEFAULT_SUFFIXES: Tuple[str, ...] = (
    # Generic TLDs the paper's zone-file oracle covers (Section 4.1.1)...
    "com",
    "net",
    "org",
    "biz",
    "us",
    "aero",
    "info",
    # ...plus other TLDs seen in spam feeds.
    "edu",
    "gov",
    "mil",
    "int",
    "ru",
    "cn",
    "in",
    "eu",
    "de",
    "fr",
    "nl",
    "pl",
    "br",
    "me",
    "cc",
    "tv",
    "ws",
    "mobi",
    "name",
    "pro",
    "tel",
    "asia",
    "cat",
    # Multi-label public suffixes.
    "co.uk",
    "org.uk",
    "me.uk",
    "ltd.uk",
    "plc.uk",
    "ac.uk",
    "gov.uk",
    "com.br",
    "net.br",
    "org.br",
    "com.cn",
    "net.cn",
    "org.cn",
    "com.ru",
    "co.in",
    "net.in",
    "org.in",
    "com.au",
    "net.au",
    "org.au",
    "co.jp",
    "ne.jp",
    "or.jp",
    "co.nz",
    "net.nz",
    "org.nz",
    # Wildcard examples (each label under these is itself a suffix).
    "*.ck",
    "!www.ck",
    "*.bd",
)


class PublicSuffixTable:
    """Matching engine over a set of public-suffix rules.

    Implements the standard PSL algorithm: among all rules matching a
    domain, the exception rule wins if present (its suffix is the rule
    minus the leftmost label); otherwise the longest rule wins; a bare
    unlisted TLD falls back to the implicit ``*`` rule (the TLD itself is
    the public suffix).
    """

    def __init__(self, rules: Iterable[str] = DEFAULT_SUFFIXES) -> None:
        self._exact: Dict[str, int] = {}
        self._wildcards: Dict[str, int] = {}
        self._exceptions: Dict[str, int] = {}
        for raw in rules:
            rule = raw.strip().lower()
            if not rule:
                continue
            if rule.startswith("!"):
                body = rule[1:]
                self._exceptions[body] = body.count(".") + 1
            elif rule.startswith("*."):
                body = rule[2:]
                self._wildcards[body] = body.count(".") + 2
            else:
                self._exact[rule] = rule.count(".") + 1

    def suffix_length(self, labels: List[str]) -> int:
        """Return the number of labels in the public suffix of *labels*.

        *labels* is the domain split on dots, e.g. ``["www", "ucsd",
        "edu"]``.  Returns at least 1 (the implicit ``*`` rule).
        """
        if not labels:
            raise ValueError("empty label list")
        best = 1  # Implicit "*" rule: the TLD itself is a public suffix.
        n = len(labels)
        for start in range(n):
            candidate = ".".join(labels[start:])
            if candidate in self._exceptions:
                # Exception rule: suffix is the rule minus its first label.
                return self._exceptions[candidate] - 1
            if candidate in self._exact:
                best = max(best, self._exact[candidate])
            if candidate in self._wildcards and start > 0:
                # Wildcard covers exactly one extra label to the left.
                best = max(best, self._wildcards[candidate])
        return min(best, n)

    def public_suffix(self, domain: str) -> str:
        """Return the public suffix of *domain* (lowercased)."""
        labels = domain.lower().rstrip(".").split(".")
        k = self.suffix_length(labels)
        return ".".join(labels[-k:])

    def registered_domain(self, domain: str) -> Optional[str]:
        """Return the registered domain of *domain*, or None.

        None is returned when the name *is* a public suffix (there is no
        registrant-controlled label).
        """
        labels = domain.lower().rstrip(".").split(".")
        k = self.suffix_length(labels)
        if len(labels) <= k:
            return None
        return ".".join(labels[-(k + 1):])

    def is_public_suffix(self, domain: str) -> bool:
        """True if *domain* is itself a public suffix."""
        return self.registered_domain(domain) is None

    def known_tlds(self) -> Tuple[str, ...]:
        """Return the single-label suffixes in the table, sorted."""
        return tuple(sorted(s for s in self._exact if "." not in s))


_DEFAULT_TABLE: Optional[PublicSuffixTable] = None


def default_suffix_table() -> PublicSuffixTable:
    """Return the shared default :class:`PublicSuffixTable` instance."""
    global _DEFAULT_TABLE
    if _DEFAULT_TABLE is None:
        _DEFAULT_TABLE = PublicSuffixTable(DEFAULT_SUFFIXES)
    return _DEFAULT_TABLE
