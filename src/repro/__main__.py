"""Command-line interface: ``python -m repro``.

Subcommands:

* ``run``       -- build the world, collect the feeds, print/write every
                   table and figure.
* ``stream``    -- consume the feeds incrementally in simulation-time
                   order, with windowed snapshots and checkpoint/resume.
* ``query``     -- answer cross-run questions (first-seen, feed stats,
                   sighting listings) from a persisted sighting store.
* ``serve``     -- long-lived query daemon over a local HTTP socket:
                   worlds build once (coalesced) and answer many.
* ``recommend`` -- rank feeds for a research question (Section 5).
* ``filter``    -- evaluate feeds as blocking oracles.
* ``lint``      -- run the reprolint determinism analyzer (REP001..008)
                   over the source tree.
* ``manifest``  -- validate a ``--trace`` run manifest and summarize it.

All progress chatter goes to stderr through one ``--quiet``-aware
helper; stdout carries only the analysis artifacts.  Observability
(``--trace``/``--metrics``) is a side channel: the manifest goes to
its own file and the summary tables to stderr, so a traced run's
stdout is byte-identical to an untraced one.

Interrupts are part of the CLI contract: SIGINT exits 130 and SIGTERM
exits 143, both after ``finally`` blocks have reaped worker pools and
closed stores -- an interrupted run never leaves orphan processes or a
half-landed store visible.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
from typing import Optional, Sequence

from repro import obs
from repro.analysis.filtering import evaluate_all_filters
from repro.analysis.recommend import Question, rank_feeds
from repro.ecosystem import (
    EcosystemConfig,
    paper_config,
    scaled_config,
    small_config,
)
from repro.io.artifacts import ArtifactCache, default_cache_dir, fingerprint
from repro.io.checkpoint import CheckpointError, read_checkpoint_any
from repro.obs.hosttime import Stopwatch
from repro.obs.manifest import (
    ManifestError,
    build_manifest,
    manifest_stage_names,
    read_manifest,
    write_manifest,
)
from repro.pipeline import PaperPipeline
from repro.reporting.report import write_report
from repro.reporting.run_summary import render_run_summary
from repro.reporting.tables import Table, format_percent
from repro.store import SightingStore, StoreError
from repro.store.query import (
    open_store_file,
    render_feed_stats,
    render_first_seen,
    render_runs,
    render_sightings,
)
from repro.stream import CHECKPOINT_KIND, build_stream_engine
from repro.stream.engine import CURSOR_CHECKPOINT_KIND


def _progress(args, message: str) -> None:
    """Print one progress line to stderr unless ``--quiet`` was given."""
    if not args.quiet:
        print(message, file=sys.stderr)


def _artifact_cache(args) -> Optional[ArtifactCache]:
    """The artifact cache the flags ask for (None with ``--no-cache``)."""
    if getattr(args, "no_cache", True):
        return None
    root = getattr(args, "cache_dir", None) or default_cache_dir()
    return ArtifactCache(root)


def _sighting_store(args) -> Optional[SightingStore]:
    """The durable sighting store ``--store`` asks for, if any."""
    path = getattr(args, "store", None)
    if not path:
        return None
    return SightingStore.open(path)


def _observability_tracer(args) -> Optional[obs.Tracer]:
    """A tracer when ``--trace`` or ``--metrics`` asks for one."""
    if getattr(args, "trace", None) or getattr(args, "metrics", False):
        return obs.Tracer()
    return None


def _finish_observability(
    args,
    tracer: Optional[obs.Tracer],
    command: str,
    config: EcosystemConfig,
) -> None:
    """Write the manifest and/or print the run summary, as requested.

    Both outputs are side channels: the manifest goes to the ``--trace``
    path and the summary to stderr, never into the analysis artifacts
    on stdout.
    """
    if tracer is None:
        return
    trace_path = getattr(args, "trace", None)
    if trace_path:
        manifest = build_manifest(
            tracer,
            command=command,
            seed=args.seed,
            config_fingerprint=fingerprint(config),
            jobs=getattr(args, "jobs", None),
            scale=getattr(args, "scale", None),
            shards=getattr(args, "shards", None),
        )
        write_manifest(trace_path, manifest)
        _progress(args, f"Run manifest written to {trace_path}")
    truncated = tracer.metrics.counter("feeds.truncated_records")
    if truncated:
        placements = tracer.metrics.counter("feeds.truncated_placements")
        print(
            f"warning: {truncated:,} captured records dropped by the "
            f"per-placement safety cap across {placements:,} "
            "placement(s); volume analyses undercount those placements",
            file=sys.stderr,
        )
    if getattr(args, "metrics", False):
        print(
            render_run_summary(
                tracer.span_payloads(), tracer.metrics.snapshot()
            ),
            file=sys.stderr,
        )


def _resolved_config(args) -> EcosystemConfig:
    """The ecosystem config the flags describe.

    ``--scale`` multiplies the spam-side population (campaign-class
    counts, DGA pool, webspam/junk pools).  The scaled config has its
    own fingerprint, so cached artifacts and sighting-store runs never
    cross scales.
    """
    config = small_config() if args.small else paper_config()
    scale = getattr(args, "scale", None)
    if scale is not None and scale != 1.0:
        config = scaled_config(config, scale)
    return config


def _build_pipeline(
    args, store: Optional[SightingStore] = None
) -> PaperPipeline:
    config = _resolved_config(args)
    pipeline = PaperPipeline(
        config,
        seed=args.seed,
        jobs=getattr(args, "jobs", None),
        cache=_artifact_cache(args),
        store=store,
        shards=getattr(args, "shards", None),
    )
    _progress(args, "Building world and collecting feeds...")
    pipeline.run()
    return pipeline


def _cmd_run(args) -> int:
    tracer = _observability_tracer(args)
    store = _sighting_store(args)
    pipeline = None
    try:
        with obs.activate(tracer):
            pipeline = _build_pipeline(args, store=store)
            if args.output:
                files = write_report(pipeline, args.output)
                print(f"Wrote {len(files)} artifacts to {args.output}:")
                for name in files:
                    print(f"  {name}")
            else:
                print(pipeline.render_all())
        if store is not None:
            _progress(args, f"Sightings landed in {args.store}")
    finally:
        if pipeline is not None:
            pipeline.close()
        if store is not None:
            store.close()
    _finish_observability(args, tracer, "run", pipeline.config)
    return 0


def _cmd_stream(args) -> int:
    tracer = _observability_tracer(args)
    store = _sighting_store(args)
    try:
        with obs.activate(tracer):
            status = _stream_body(args, store)
    finally:
        if store is not None:
            store.close()
    if status == 0:
        _finish_observability(args, tracer, "stream", _resolved_config(args))
    return status


def _stream_body(args, store: Optional[SightingStore] = None) -> int:
    config = _resolved_config(args)
    _progress(args, "Building world and collecting feed sources...")
    engine = build_stream_engine(
        config,
        seed=args.seed,
        batch_size=args.batch_size,
        jobs=args.jobs,
        cache=_artifact_cache(args),
        shards=getattr(args, "shards", None),
    )

    def save_checkpoint() -> bool:
        try:
            engine.save_checkpoint(args.checkpoint)
        except OSError as exc:
            print(
                f"error: cannot write checkpoint {args.checkpoint}: {exc}",
                file=sys.stderr,
            )
            return False
        return True

    if args.resume:
        try:
            kind, payload = read_checkpoint_any(
                args.resume, (CHECKPOINT_KIND, CURSOR_CHECKPOINT_KIND)
            )
            if kind == CURSOR_CHECKPOINT_KIND:
                if store is None:
                    print(
                        f"error: {args.resume} is a store-backed cursor "
                        "checkpoint; pass --store with the file the "
                        "checkpointing run landed into",
                        file=sys.stderr,
                    )
                    return 2
                engine.restore_from_store(payload, store)
            else:
                engine.restore(payload)
        except CheckpointError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        _progress(
            args,
            f"Resumed from {args.resume}: "
            f"{engine.records_processed:,} records already processed",
        )

    if store is not None:
        # Attach after any resume so the writer's per-feed positions
        # line up with the merge cursors of the suffix still to come.
        engine.attach_store(store, args.store, fingerprint(config))

    timeline = engine.world.timeline
    total_days = int(timeline.duration_days)
    stop_day = total_days if args.until_day is None else min(
        args.until_day, total_days
    )

    watch = Stopwatch()
    resumed_records = engine.records_processed

    def throughput() -> float:
        elapsed = watch.elapsed()
        done = engine.records_processed - resumed_records
        return done / elapsed if elapsed > 0 else 0.0

    current_day = (
        -1 if engine.position is None else timeline.day_of(engine.position)
    )
    if args.snapshot_every:
        day = args.snapshot_every
        while day <= current_day:
            day += args.snapshot_every
        while day < stop_day:
            engine.advance_to_day(day)
            union = engine.state.union_size
            exclusive = sum(
                row.exclusive for row in engine.online_coverage()
            )
            _progress(
                args,
                f"[stream] day {day}/{total_days}: "
                f"{engine.records_processed:,} records, "
                f"{union:,} distinct domains "
                f"({exclusive:,} single-feed), "
                f"{throughput():,.0f} records/s",
            )
            if args.tables:
                snapshot = engine.snapshot()
                print(snapshot.header())
                print(snapshot.render_tables())
                print()
            if args.checkpoint and not save_checkpoint():
                return 2
            day += args.snapshot_every

    if stop_day >= total_days:
        engine.run()
    else:
        engine.advance_to_day(stop_day)

    _progress(
        args,
        f"[stream] done: {engine.records_processed:,} records at "
        f"{throughput():,.0f} records/s",
    )
    if args.checkpoint:
        if not save_checkpoint():
            return 2
        _progress(args, f"Checkpoint written to {args.checkpoint}")

    if store is not None:
        engine.finish_store()
        _progress(args, f"Sightings landed in {args.store}")

    snapshot = engine.snapshot()
    if not engine.exhausted:
        _progress(args, snapshot.header())
    print(snapshot.render_tables())
    return 0


def _cmd_query(args) -> int:
    try:
        store = open_store_file(args.store)
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        if args.query_command == "first-seen":
            print(render_first_seen(store, args.domain))
        elif args.query_command == "feed-stats":
            print(render_feed_stats(store))
        elif args.query_command == "sightings":
            limit = None if args.limit == 0 else args.limit
            print(
                render_sightings(
                    store, feed=args.feed, since_day=args.since, limit=limit
                )
            )
        else:  # runs
            print(render_runs(store))
    except StoreError as exc:
        # Belt and braces behind open-time validation: a store that
        # turns malformed mid-query still reports cleanly instead of
        # dumping a traceback.
        print(f"error: {args.store}: {exc}", file=sys.stderr)
        return 2
    finally:
        store.close()
    return 0


def _cmd_lint(args) -> int:
    """Exit codes are a documented contract: 0 = clean, 1 = findings
    (errors always; warnings too under --strict), 2 = usage or I/O
    problems (unknown rule, unreadable/unparsable input, bad --sarif
    path)."""
    import repro
    from repro.devtools import (
        LintConfig,
        lint_paths,
        render_json,
        render_text,
        write_sarif,
    )
    from repro.devtools.lint import LintError, has_errors
    from repro.io.artifacts import ArtifactCache, default_cache_dir

    if args.schema_pin:
        from repro.devtools.rules import compute_schema_pin
        from repro.io import checkpoint

        print(
            compute_schema_pin(
                checkpoint.CHECKPOINT_VERSION, checkpoint.CHECKPOINT_SCHEMAS
            )
        )
        return 0
    if args.store_schema_pin:
        from repro.devtools.rules import compute_schema_pin
        from repro.store import backend

        print(
            compute_schema_pin(
                backend.STORE_VERSION, backend.STORE_SCHEMA_COLUMNS
            )
        )
        return 0

    paths = args.paths or [os.path.dirname(os.path.abspath(repro.__file__))]
    try:
        config = LintConfig.with_disabled(tuple(args.disable))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    cache = None
    if not args.no_cache:
        cache = ArtifactCache(args.cache_dir or default_cache_dir())
    try:
        findings = lint_paths(paths, config, jobs=args.jobs, cache=cache)
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.sarif is not None:
        try:
            write_sarif(args.sarif, findings, base_dir=os.getcwd())
        except OSError as exc:
            print(
                f"error: cannot write {args.sarif}: {exc}", file=sys.stderr
            )
            return 2
    print(render_json(findings) if args.json else render_text(findings))
    if findings and (args.strict or has_errors(findings)):
        return 1
    return 0


def _cmd_manifest(args) -> int:
    try:
        manifest = read_manifest(args.path)
    except OSError as exc:
        print(f"error: cannot read {args.path}: {exc}", file=sys.stderr)
        return 2
    except ManifestError as exc:
        print(f"error: {args.path}: {exc}", file=sys.stderr)
        return 2
    stages = manifest_stage_names(manifest)
    print(
        f"{args.path}: valid {manifest['format']} v{manifest['version']} "
        f"(command={manifest['command']}, seed={manifest['seed']}, "
        f"{len(stages)} stages)"
    )
    if args.min_stages is not None and len(stages) < args.min_stages:
        print(
            f"error: {len(stages)} distinct stages "
            f"({', '.join(stages)}), need at least {args.min_stages}",
            file=sys.stderr,
        )
        return 1
    if args.summary:
        print(render_run_summary(manifest["spans"], manifest["metrics"]))
    return 0


def _cmd_recommend(args) -> int:
    with _build_pipeline(args) as pipeline:
        question = Question(args.question)
        ranking = rank_feeds(pipeline.comparison, question)
        print(f"Feed ranking for question: {question.value}")
        for rank, score in enumerate(ranking, start=1):
            print(f"  {rank:2}. {score}")
    return 0


def _cmd_filter(args) -> int:
    with _build_pipeline(args) as pipeline:
        return _filter_body(pipeline)


def _filter_body(pipeline: PaperPipeline) -> int:
    reports = evaluate_all_filters(pipeline.comparison)
    table = Table(
        ["Feed", "Listed", "Precision", "Vol. recall", "Timely recall",
         "Collateral"],
        title="Feeds as blocking oracles",
    )
    for name in pipeline.feed_order:
        if name not in reports:
            continue
        report = reports[name]
        table.add_row(
            name,
            f"{report.listed:,}",
            format_percent(report.precision),
            format_percent(report.volume_recall),
            format_percent(report.timely_volume_recall),
            format_percent(report.collateral_fraction),
        )
    print(table.render())
    return 0


def _cmd_serve(args) -> int:
    # Imported here so batch subcommands never pay for the HTTP stack.
    from repro.serve import ServeApp, ServeDaemon, ServeStats, WorldCache

    store = None
    if args.store:
        # The daemon answers /v1/first-seen from request threads but
        # opens the store on the main thread: cross-thread connection,
        # serialized by the app's store lock.
        store = SightingStore.open(args.store, cross_thread=True)
    stats = ServeStats()
    worlds = WorldCache(
        stats,
        jobs=args.jobs,
        shards=args.shards,
        cache=_artifact_cache(args),
        store_path=args.store or None,
        max_worlds=args.max_worlds,
    )
    app = ServeApp(
        worlds,
        stats,
        default_seed=args.seed,
        default_small=args.small,
        store=store,
    )
    try:
        daemon = ServeDaemon(
            app,
            host=args.host,
            port=args.port,
            manifest_dir=args.manifest_dir,
            verbose=not args.quiet,
        )
    except OSError as exc:
        print(
            f"error: cannot bind {args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        worlds.close()
        app.close()
        return 2
    daemon.start()
    # Drain handlers must be live before readiness is announced: a
    # supervisor may signal the instant it reads the line, and that
    # signal must mean "drain and exit 0", never the batch CLI's
    # exit-with-status handlers.
    daemon.install_signal_handlers()
    # The readiness line is a contract: tests and the load harness
    # parse the port out of it, so it is printed (and flushed) even
    # under --quiet.
    print(
        f"[serve] listening on {daemon.address} (pid {os.getpid()})",
        file=sys.stderr,
        flush=True,
    )
    _progress(
        args,
        "[serve] Ctrl-C or SIGTERM drains in-flight requests and exits",
    )
    try:
        return daemon.wait_for_signal()
    except BaseException:
        daemon.drain()
        raise


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Taster's Choice spam-feed comparison reproduction",
    )
    parser.add_argument("--seed", type=int, default=2012)
    parser.add_argument(
        "--small", action="store_true", help="use the miniature world"
    )
    parser.add_argument(
        "--quiet", "-q", action="store_true",
        help="suppress progress output on stderr",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    # Performance flags shared by the expensive subcommands.  Neither
    # worker count nor caching changes a byte of any artifact.
    perf_parser = argparse.ArgumentParser(add_help=False)
    perf_parser.add_argument(
        "--jobs", "-j", type=int, default=None, metavar="N",
        help="worker processes for collection/rendering "
             "(default 1 = serial, 0 = all cores); output is identical "
             "at any value",
    )
    perf_parser.add_argument(
        "--scale", type=float, default=None, metavar="X",
        help="multiply the spam-side world size (campaign counts, DGA "
             "and junk pools) by X; the scaled config gets its own "
             "cache fingerprint",
    )
    perf_parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="build the world in N parallel shards (default 1 = "
             "serial); the world is byte-identical at any value",
    )
    perf_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="artifact cache location "
             "(default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    perf_parser.add_argument(
        "--no-cache", action="store_true",
        help="recompute everything; neither read nor write the "
             "artifact cache",
    )
    perf_parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a versioned JSON run manifest (span tree + metrics) "
             "to PATH; analysis output on stdout is unchanged",
    )
    perf_parser.add_argument(
        "--metrics", action="store_true",
        help="print a per-stage timing and metrics summary to stderr",
    )
    perf_parser.add_argument(
        "--store", default=None, metavar="PATH",
        help="land every sighting in a durable SQLite sighting store at "
             "PATH (created if absent; re-landing the same run is a "
             "no-op); analysis output on stdout is unchanged",
    )

    run_parser = subparsers.add_parser(
        "run", parents=[perf_parser],
        help="regenerate every table and figure",
    )
    run_parser.add_argument(
        "--output", "-o", default=None,
        help="write artifacts to this directory instead of stdout",
    )
    run_parser.set_defaults(handler=_cmd_run)

    stream_parser = subparsers.add_parser(
        "stream", parents=[perf_parser],
        help="incremental streaming analysis with checkpoint/resume",
    )
    stream_parser.add_argument(
        "--snapshot-every", type=int, default=0, metavar="DAYS",
        help="emit a progress snapshot every N simulated days",
    )
    stream_parser.add_argument(
        "--tables", action="store_true",
        help="print full Table 1/2/3 at every snapshot, not just at the end",
    )
    stream_parser.add_argument(
        "--batch-size", type=int, default=4096,
        help="maximum records per merge batch",
    )
    stream_parser.add_argument(
        "--until-day", type=int, default=None, metavar="DAY",
        help="stop after consuming records before this simulated day",
    )
    stream_parser.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="write a resumable checkpoint here (updated at snapshots)",
    )
    stream_parser.add_argument(
        "--resume", default=None, metavar="PATH",
        help="resume from a checkpoint written by --checkpoint",
    )
    stream_parser.set_defaults(handler=_cmd_stream)

    query_parser = subparsers.add_parser(
        "query",
        help="answer cross-run questions from a persisted sighting store",
    )
    query_parser.add_argument(
        "--store", required=True, metavar="PATH",
        help="sighting store file written by run/stream --store",
    )
    query_sub = query_parser.add_subparsers(
        dest="query_command", required=True
    )
    first_seen_parser = query_sub.add_parser(
        "first-seen",
        help="which feeds saw a domain, earliest sighting first",
    )
    first_seen_parser.add_argument("domain", metavar="DOMAIN")
    query_sub.add_parser(
        "feed-stats",
        help="per-feed sighting/domain totals and drop accounting",
    )
    sightings_parser = query_sub.add_parser(
        "sightings", help="list stored sightings in landing order"
    )
    sightings_parser.add_argument(
        "--feed", default=None, metavar="FEED",
        help="only sightings from this feed",
    )
    sightings_parser.add_argument(
        "--since", type=int, default=None, metavar="DAY",
        help="only sightings at or after this simulated day",
    )
    sightings_parser.add_argument(
        "--limit", type=int, default=50, metavar="N",
        help="print at most N sightings (0 = unlimited; default 50)",
    )
    query_sub.add_parser("runs", help="list the runs landed in the store")
    query_parser.set_defaults(handler=_cmd_query)

    manifest_parser = subparsers.add_parser(
        "manifest",
        help="validate a --trace run manifest and summarize it",
    )
    manifest_parser.add_argument(
        "path", metavar="PATH", help="manifest file written by --trace"
    )
    manifest_parser.add_argument(
        "--min-stages", type=int, default=None, metavar="N",
        help="fail unless the span tree covers at least N distinct stages",
    )
    manifest_parser.add_argument(
        "--summary", action="store_true",
        help="print the per-stage summary tables",
    )
    manifest_parser.set_defaults(handler=_cmd_manifest)

    lint_parser = subparsers.add_parser(
        "lint",
        help="run the reprolint determinism analyzer (REP001..REP012)",
        description="Exit codes: 0 = no qualifying findings, "
                    "1 = findings (errors always; warnings too with "
                    "--strict), 2 = usage or input errors. Findings "
                    "are sorted (file, line, rule), so output is "
                    "byte-stable at any --jobs value.",
    )
    lint_parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: the repro package)",
    )
    lint_parser.add_argument(
        "--json", action="store_true",
        help="emit the versioned JSON report instead of text",
    )
    lint_parser.add_argument(
        "--strict", action="store_true",
        help="exit non-zero on any finding, warnings included",
    )
    lint_parser.add_argument(
        "--disable", action="append", default=[], metavar="REPxxx",
        help="disable a rule (repeatable)",
    )
    lint_parser.add_argument(
        "--sarif", default=None, metavar="PATH",
        help="also write a SARIF 2.1.0 report to PATH (for CI "
             "annotation); stdout output is unchanged",
    )
    lint_parser.add_argument(
        "--jobs", "-j", type=int, default=None, metavar="N",
        help="worker processes for the per-file summary phase "
             "(default 1 = serial, 0 = all cores); findings are "
             "byte-identical at any value",
    )
    lint_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="artifact cache for incremental re-linting "
             "(default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    lint_parser.add_argument(
        "--no-cache", action="store_true",
        help="recompute every file summary; neither read nor write "
             "the artifact cache",
    )
    lint_parser.add_argument(
        "--schema-pin", action="store_true",
        help="print the expected CHECKPOINT_SCHEMA_PIN and exit",
    )
    lint_parser.add_argument(
        "--store-schema-pin", action="store_true",
        help="print the expected STORE_SCHEMA_PIN and exit",
    )
    lint_parser.set_defaults(handler=_cmd_lint)

    rec_parser = subparsers.add_parser(
        "recommend", help="rank feeds for a research question"
    )
    rec_parser.add_argument(
        "question",
        choices=[q.value for q in Question],
    )
    rec_parser.set_defaults(handler=_cmd_recommend)

    filter_parser = subparsers.add_parser(
        "filter", help="evaluate feeds as blocking oracles"
    )
    filter_parser.set_defaults(handler=_cmd_filter)

    serve_parser = subparsers.add_parser(
        "serve",
        help="long-lived analysis query daemon over a local HTTP socket",
        description="Worlds build (or cache-load) on demand, keyed by "
                    "(config fingerprint, seed), stay resident with "
                    "their worker pools, and answer concurrent queries; "
                    "identical in-flight requests coalesce into one "
                    "computation. GET / for the endpoint list. "
                    "Responses are byte-identical to the batch CLI for "
                    "the same parameters.",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", metavar="ADDR",
        help="bind address (default 127.0.0.1; the daemon is "
             "unauthenticated, keep it local)",
    )
    serve_parser.add_argument(
        "--port", type=int, default=0, metavar="PORT",
        help="bind port (default 0 = pick a free port; the readiness "
             "line on stderr names it)",
    )
    serve_parser.add_argument(
        "--max-worlds", type=int, default=4, metavar="N",
        help="keep at most N worlds resident (LRU eviction; default 4)",
    )
    serve_parser.add_argument(
        "--manifest-dir", default=None, metavar="DIR",
        help="write one repro-run-manifest JSON per request into DIR",
    )
    serve_parser.add_argument(
        "--jobs", "-j", type=int, default=None, metavar="N",
        help="worker processes per resident world "
             "(default 1 = serial, 0 = all cores)",
    )
    serve_parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="build worlds in N parallel shards",
    )
    serve_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="artifact cache location "
             "(default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    serve_parser.add_argument(
        "--no-cache", action="store_true",
        help="build every world from scratch; neither read nor write "
             "the artifact cache",
    )
    serve_parser.add_argument(
        "--store", default=None, metavar="PATH",
        help="durable sighting store: builds land sightings into it "
             "and /v1/first-seen answers from it",
    )
    serve_parser.set_defaults(handler=_cmd_serve)

    args = parser.parse_args(argv)

    def on_sigterm(signum: int, frame: object) -> None:
        # Raising (not exiting) unwinds through every finally block:
        # pools reaped, stores closed, then the conventional 128+15.
        raise SystemExit(143)

    try:
        signal.signal(signal.SIGTERM, on_sigterm)
    except ValueError:  # pragma: no cover - main() called off-main-thread
        pass
    try:
        return args.handler(args)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
