"""Command-line interface: ``python -m repro``.

Subcommands:

* ``run``       -- build the world, collect the feeds, print/write every
                   table and figure.
* ``recommend`` -- rank feeds for a research question (Section 5).
* ``filter``    -- evaluate feeds as blocking oracles.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.filtering import evaluate_all_filters
from repro.analysis.recommend import Question, rank_feeds
from repro.ecosystem import paper_config, small_config
from repro.pipeline import PaperPipeline
from repro.reporting.report import write_report
from repro.reporting.tables import Table, format_percent


def _build_pipeline(args) -> PaperPipeline:
    config = small_config() if args.small else paper_config()
    pipeline = PaperPipeline(config, seed=args.seed)
    print("Building world and collecting feeds...", file=sys.stderr)
    pipeline.run()
    return pipeline


def _cmd_run(args) -> int:
    pipeline = _build_pipeline(args)
    if args.output:
        files = write_report(pipeline, args.output)
        print(f"Wrote {len(files)} artifacts to {args.output}:")
        for name in files:
            print(f"  {name}")
    else:
        print(pipeline.render_all())
    return 0


def _cmd_recommend(args) -> int:
    pipeline = _build_pipeline(args)
    question = Question(args.question)
    ranking = rank_feeds(pipeline.comparison, question)
    print(f"Feed ranking for question: {question.value}")
    for rank, score in enumerate(ranking, start=1):
        print(f"  {rank:2}. {score}")
    return 0


def _cmd_filter(args) -> int:
    pipeline = _build_pipeline(args)
    reports = evaluate_all_filters(pipeline.comparison)
    table = Table(
        ["Feed", "Listed", "Precision", "Vol. recall", "Timely recall",
         "Collateral"],
        title="Feeds as blocking oracles",
    )
    for name in pipeline.feed_order:
        if name not in reports:
            continue
        report = reports[name]
        table.add_row(
            name,
            f"{report.listed:,}",
            format_percent(report.precision),
            format_percent(report.volume_recall),
            format_percent(report.timely_volume_recall),
            format_percent(report.collateral_fraction),
        )
    print(table.render())
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Taster's Choice spam-feed comparison reproduction",
    )
    parser.add_argument("--seed", type=int, default=2012)
    parser.add_argument(
        "--small", action="store_true", help="use the miniature world"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run", help="regenerate every table and figure"
    )
    run_parser.add_argument(
        "--output", "-o", default=None,
        help="write artifacts to this directory instead of stdout",
    )
    run_parser.set_defaults(handler=_cmd_run)

    rec_parser = subparsers.add_parser(
        "recommend", help="rank feeds for a research question"
    )
    rec_parser.add_argument(
        "question",
        choices=[q.value for q in Question],
    )
    rec_parser.set_defaults(handler=_cmd_recommend)

    filter_parser = subparsers.add_parser(
        "filter", help="evaluate feeds as blocking oracles"
    )
    filter_parser.set_defaults(handler=_cmd_filter)

    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
