"""Measurement-side oracles.

These model the external data sources the paper's analysis consumes:

* :class:`ZoneOracle` -- DNS zone-file snapshots for seven TLDs,
  bracketing the measurement window by 16 months on each side
  (Section 4.1.1).
* :class:`AlexaList` / :class:`OdpDirectory` -- benign-domain listings
  used as negative purity indicators (Section 4.1.3).
* :class:`CrawlOracle` -- the Click Trajectories-style web crawler:
  HTTP liveness plus storefront tagging down to affiliate program and
  (for the RX-Promotion analog) affiliate identifier (Section 3.4).
* :class:`IncomingMailOracle` -- normalized per-domain message volumes
  observed by a large webmail provider over five days (Section 4.2.2).
"""

from repro.oracles.dns_zone import ZoneOracle
from repro.oracles.weblists import AlexaList, OdpDirectory
from repro.oracles.crawler import CrawlOracle, CrawlResult
from repro.oracles.mail_oracle import IncomingMailOracle

__all__ = [
    "AlexaList",
    "CrawlOracle",
    "CrawlResult",
    "IncomingMailOracle",
    "OdpDirectory",
    "ZoneOracle",
]
