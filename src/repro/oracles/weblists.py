"""Benign web listings: the Alexa top list and the Open Directory.

Both are negative purity indicators (Section 4.1.3): a feed domain on
either list is almost certainly a false positive -- except for the
redirector services spammers deliberately hide behind, which is exactly
why the paper removes Alexa/ODP domains from the live and tagged sets
rather than trusting the tags.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.ecosystem.world import World


class AlexaList:
    """The popularity-ranked benign list (Alexa top-1M analog)."""

    def __init__(self, ranked_domains: List[str]):
        self._ranked = list(ranked_domains)
        self._ranks: Dict[str, int] = {
            domain: rank for rank, domain in enumerate(self._ranked, start=1)
        }
        if len(self._ranks) != len(self._ranked):
            raise ValueError("ranked list contains duplicates")

    @classmethod
    def from_world(cls, world: World) -> "AlexaList":
        """Snapshot the world's benign popularity ranking."""
        return cls(world.benign.alexa_ranked)

    def __contains__(self, domain: str) -> bool:
        return domain in self._ranks

    def __len__(self) -> int:
        return len(self._ranked)

    def rank(self, domain: str) -> Optional[int]:
        """1-based popularity rank, or None if unlisted."""
        return self._ranks.get(domain)

    def top(self, n: int) -> List[str]:
        """The *n* most popular domains."""
        return self._ranked[:n]

    def intersection(self, domains: Iterable[str]) -> Set[str]:
        """Feed domains that are Alexa-listed."""
        return {d for d in domains if d in self._ranks}


class OdpDirectory:
    """The human-edited benign directory (Open Directory analog)."""

    def __init__(self, domains: Iterable[str]):
        self._domains = set(domains)

    @classmethod
    def from_world(cls, world: World) -> "OdpDirectory":
        """Snapshot the world's directory listing."""
        return cls(world.benign.odp_domains)

    def __contains__(self, domain: str) -> bool:
        return domain in self._domains

    def __len__(self) -> int:
        return len(self._domains)

    def intersection(self, domains: Iterable[str]) -> Set[str]:
        """Feed domains that are ODP-listed."""
        return {d for d in domains if d in self._domains}


def benign_listed(
    domains: Iterable[str], alexa: AlexaList, odp: OdpDirectory
) -> Set[str]:
    """Domains on either benign list (the set the analysis removes)."""
    result: Set[str] = set()
    for domain in domains:
        if domain in alexa or domain in odp:
            result.add(domain)
    return result
