"""The incoming mail oracle (Section 4.2.2).

A cooperating webmail provider with hundreds of millions of users
reports, for a submitted set of domains, the (normalized) number of
incoming messages containing each domain over a five-day window.  Two
properties matter for the reproduction:

* for spam domains, the count reflects what *arrived* at the provider's
  incoming servers (pre-filtering) -- campaign volume shaped by
  address-list reach, so loud campaigns dominate; and
* for benign domains (redirectors, chaff, newsletters) the count also
  includes their enormous legitimate mail presence, which is why a
  handful of Alexa-listed domains can dwarf all true spam domains in
  volume (Figure 3).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional

from repro.ecosystem.world import World
from repro.feeds.capture import incoming_placement_volume
from repro.simtime import Timeline
from repro.stats.distributions import EmpiricalDistribution
from repro.stats.rng import derive_rng


class IncomingMailOracle:
    """Per-domain message volumes at a large webmail provider."""

    def __init__(
        self,
        world: World,
        provider_share: float = 0.35,
        alexa_volume_scale: float = 50_000.0,
        alexa_popularity_exponent: float = 0.9,
        odp_baseline: float = 3.0,
        newsletter_baseline: float = 25.0,
        noise_sigma: float = 0.05,
        seed: int = 0,
    ):
        self._world = world
        self._provider_share = provider_share
        self._alexa_volume_scale = alexa_volume_scale
        self._alexa_exponent = alexa_popularity_exponent
        self._odp_baseline = odp_baseline
        self._newsletter_baseline = newsletter_baseline
        self._noise_sigma = noise_sigma
        self._seed = seed
        #: Measurement-noise factor per domain.  Each factor is derived
        #: from (seed, domain) alone -- never from a shared sequential
        #: stream -- so a domain's reported volume is a property of the
        #: provider's measurement, independent of how many queries ran
        #: before or on which worker process they ran.
        self._noise_cache: Dict[str, float] = {}
        self._spam_volume_cache: Optional[Dict[str, float]] = None
        self._alexa_ranks = {
            d: r for r, d in enumerate(world.benign.alexa_ranked, start=1)
        }

    @property
    def window(self) -> Timeline:
        """The timeline whose oracle sub-window the measurement covers."""
        return self._world.timeline

    # ------------------------------------------------------------------
    # Volume components
    # ------------------------------------------------------------------

    def _spam_volumes(self) -> Dict[str, float]:
        """Incoming (pre-filter) spam volume per domain in the window."""
        if self._spam_volume_cache is not None:
            return self._spam_volume_cache
        tl = self._world.timeline
        window_start, window_end = tl.oracle_start, tl.oracle_end
        volumes: Dict[str, float] = {}
        for campaign in self._world.campaigns:
            for placement in campaign.placements:
                overlap = min(placement.end, window_end) - max(
                    placement.start, window_start
                )
                if overlap <= 0:
                    continue
                fraction = overlap / placement.duration
                delivered = (
                    incoming_placement_volume(campaign, placement)
                    * fraction
                    * self._provider_share
                )
                if delivered > 0:
                    volumes[placement.domain] = (
                        volumes.get(placement.domain, 0.0) + delivered
                    )
        self._spam_volume_cache = volumes
        return volumes

    def _benign_volume(self, domain: str) -> float:
        """Legitimate mail presence of a benign domain."""
        benign = self._world.benign
        rank = self._alexa_ranks.get(domain)
        if rank is not None:
            return self._alexa_volume_scale / rank**self._alexa_exponent
        if domain in benign.odp_domains:
            return self._odp_baseline
        if domain in set(benign.newsletter_domains):
            return self._newsletter_baseline
        return 0.0

    def _noise_factor(self, domain: str) -> float:
        factor = self._noise_cache.get(domain)
        if factor is None:
            rng = derive_rng(self._seed, f"mail-oracle.noise.{domain}")
            factor = math.exp(rng.gauss(0.0, self._noise_sigma))
            self._noise_cache[domain] = factor
        return factor

    def _noisy(self, domain: str, value: float) -> float:
        if value <= 0 or self._noise_sigma <= 0:
            return value
        return value * self._noise_factor(domain)

    # ------------------------------------------------------------------
    # Query interface
    # ------------------------------------------------------------------

    def benign_volume(self, domain: str) -> float:
        """Legitimate-mail volume component of *domain* (0 if not benign)."""
        return self._benign_volume(domain)

    def message_volume(self, domain: str) -> float:
        """Expected messages containing *domain* over the window."""
        return self._spam_volumes().get(domain, 0.0) + self._benign_volume(
            domain
        )

    def query(self, domains: Iterable[str]) -> Dict[str, float]:
        """Submit a domain set; get back normalized message counts.

        Counts are normalized to the largest submitted domain (the
        provider never discloses absolute volumes).  Domains the
        provider never saw are reported as 0.

        Measurement noise is a per-domain factor derived from (seed,
        domain), so a domain's reported count is identical no matter
        how the query set was assembled, how many queries ran before,
        or which process runs the query -- the batch, streaming, and
        parallel analysis paths must agree byte-for-byte.
        """
        raw = {
            d: self._noisy(d, self.message_volume(d))
            for d in sorted(set(domains))
        }
        peak = max(raw.values(), default=0.0)
        if peak <= 0:
            return {d: 0.0 for d in raw}
        return {d: v / peak for d, v in raw.items()}

    def distribution(self, domains: Iterable[str]) -> EmpiricalDistribution:
        """The oracle's empirical domain-volume distribution.

        Used as the ``Mail`` column of the proportionality analysis
        (Figures 7 and 8).
        """
        return EmpiricalDistribution(self.query(domains))
