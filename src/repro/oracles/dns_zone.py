"""DNS zone-file oracle (the Table 2 ``DNS`` column).

The paper checks whether feed domains appeared in the zone files of
seven TLDs (com, net, org, biz, us, aero, info) between April 2009 and
March 2012 -- a window bracketing the measurement period by 16 months on
each side.  Domains in other TLDs cannot be checked and are excluded
from the denominator.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from repro.ecosystem.registry import (
    COVERED_TLDS,
    Registry,
    ZONE_BRACKET_MINUTES,
    tld_of,
)
from repro.ecosystem.world import World
from repro.simtime import SimTime, Timeline


class ZoneOracle:
    """Membership tests against bracketing zone-file snapshots."""

    def __init__(
        self,
        registry: Registry,
        timeline: Timeline,
        covered_tlds: Iterable[str] = COVERED_TLDS,
        bracket_minutes: SimTime = ZONE_BRACKET_MINUTES,
    ):
        self._registry = registry
        self._covered = frozenset(covered_tlds)
        self._window_start = timeline.start - bracket_minutes
        self._window_end = timeline.end + bracket_minutes

    @classmethod
    def from_world(cls, world: World) -> "ZoneOracle":
        """Build the oracle over a world's ground-truth registry."""
        return cls(world.registry, world.timeline)

    @property
    def covered_tlds(self) -> frozenset:
        """TLDs whose zone files the oracle can consult."""
        return self._covered

    def covers(self, domain: str) -> bool:
        """True if *domain*'s TLD has an obtainable zone file."""
        return tld_of(domain) in self._covered

    def in_zone(self, domain: str) -> Optional[bool]:
        """Did *domain* appear in a zone snapshot inside the bracket?

        Returns None when the domain's TLD is not covered (the paper
        excludes such domains rather than counting them unregistered).
        """
        if not self.covers(domain):
            return None
        entry = self._registry.entry(domain)
        if entry is None:
            return False
        return entry.active_during(self._window_start, self._window_end)

    def registration_report(
        self, domains: Iterable[str]
    ) -> Dict[str, int]:
        """Classify *domains* into covered/registered counts.

        Returns a dict with keys ``covered``, ``registered`` and
        ``uncovered`` -- the numbers behind one Table 2 DNS cell.
        """
        covered = registered = uncovered = 0
        for domain in domains:
            verdict = self.in_zone(domain)
            if verdict is None:
                uncovered += 1
                continue
            covered += 1
            if verdict:
                registered += 1
        return {
            "covered": covered,
            "registered": registered,
            "uncovered": uncovered,
        }

    def coverage_fraction(self, domains: Iterable[str]) -> float:
        """Share of *domains* whose TLD has an obtainable zone file.

        The paper reports that the seven TLDs covered between 63% and
        100% of each feed; domains outside them are excluded from the
        DNS purity denominator rather than counted as unregistered.
        """
        total = covered = 0
        for domain in domains:
            total += 1
            if self.covers(domain):
                covered += 1
        return covered / total if total else 0.0

    def registered_fraction(self, domains: Iterable[str]) -> float:
        """Fraction of covered domains that appeared in a zone file."""
        report = self.registration_report(domains)
        if report["covered"] == 0:
            return 0.0
        return report["registered"] / report["covered"]

    def registered_subset(self, domains: Iterable[str]) -> Set[str]:
        """The covered-and-registered subset of *domains*."""
        return {d for d in domains if self.in_zone(d)}
