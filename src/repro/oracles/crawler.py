"""The web-crawl oracle (Click Trajectories-style tagging, Section 3.4).

The original apparatus visited every spam-advertised URL with an
instrumented browser, followed redirections to the final storefront, and
matched the storefront against hand-built content signatures for 45
affiliate programs.  Our oracle reproduces its *verdict surface*:

* ``http_ok`` -- did any visit during the measurement period reach a
  live site (HTTP 200)?
* ``program_id`` -- the affiliate program of the final storefront, when
  the site matched a known signature ("tagged" domains).
* ``affiliate_id`` -- the embedded affiliate identifier, extractable
  only for the program that embeds one (the RX-Promotion analog).

Redirector domains resolve to the storefront *behind* them, so an
Alexa-listed shortener abused by a tagged campaign is itself tagged --
the false-positive hazard Section 4.1.4 discusses.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, Iterable, Optional

from repro.ecosystem.world import World
from repro.simtime import SimTime, hours
from repro.stats.rng import derive_rng


@dataclasses.dataclass(frozen=True)
class CrawlResult:
    """Verdict of crawling one registered domain."""

    domain: str
    http_ok: bool
    program_id: Optional[int] = None
    affiliate_id: Optional[int] = None

    @property
    def tagged(self) -> bool:
        """True if the crawl reached a known storefront."""
        return self.http_ok and self.program_id is not None

    def __post_init__(self) -> None:
        if self.program_id is not None and not self.http_ok:
            raise ValueError("cannot tag a dead site")


class CrawlOracle:
    """Deterministic crawling verdicts over the world's hosting truth."""

    #: Crawls happen shortly after a URL is received.
    CRAWL_DELAY = hours(2)

    def __init__(self, world: World, seed: int = 0):
        self._world = world
        self._rng = derive_rng(seed, "crawler")
        self._cache: Dict[str, CrawlResult] = {}
        #: Transient fetch failures (network, robot interstitials).
        self.transient_failure_rate = 0.02

    def crawl(self, domain: str, at: SimTime) -> CrawlResult:
        """Visit *domain* at time *at* and return the verdict.

        Verdicts are cached per domain on first crawl, mirroring the
        original pipeline's one-verdict-per-domain tagging output.
        """
        if domain in self._cache:
            return self._cache[domain]
        result = self._crawl_uncached(domain, at + self.CRAWL_DELAY)
        self._cache[domain] = result
        return result

    def _crawl_uncached(self, domain: str, at: SimTime) -> CrawlResult:
        world = self._world

        # Redirector services: the service itself is alive; if a tagged
        # campaign hides behind it, the redirect lands on a storefront.
        tag = world.redirector_tags.get(domain)
        if tag is not None:
            program_id, affiliate_id = tag
            return CrawlResult(
                domain=domain,
                http_ok=True,
                program_id=program_id,
                affiliate_id=self._visible_affiliate(program_id, affiliate_id),
            )

        # Ordinary benign sites are alive and never match a signature.
        if world.benign.is_benign(domain):
            return CrawlResult(domain=domain, http_ok=True)

        record = world.hosting.get(domain)
        if record is None:
            # Unhosted: DGA noise, junk reports, unregistered web spam.
            return CrawlResult(domain=domain, http_ok=False)

        alive = record.live_at(at)
        if alive and self._rng.random() < self.transient_failure_rate:
            alive = False
        if not alive:
            return CrawlResult(domain=domain, http_ok=False)
        return CrawlResult(
            domain=domain,
            http_ok=True,
            program_id=record.program_id,
            affiliate_id=self._visible_affiliate(
                record.program_id, record.affiliate_id
            ),
        )

    def _visible_affiliate(
        self, program_id: Optional[int], affiliate_id: Optional[int]
    ) -> Optional[int]:
        """Affiliate ids are extractable only when the program embeds them."""
        if program_id is None or affiliate_id is None:
            return None
        program = self._world.programs.get(program_id)
        if program is None or not program.embeds_affiliate_id:
            return None
        return affiliate_id

    def crawl_at_first_seen(
        self, first_seen: Dict[str, SimTime]
    ) -> Dict[str, CrawlResult]:
        """Crawl every domain at its first sighting time.

        This mirrors the original pipeline: URLs were visited as they
        arrived in the feeds during the measurement period.
        """
        return {
            domain: self.crawl(domain, at)
            for domain, at in sorted(first_seen.items())
        }

    def live_subset(self, results: Iterable[CrawlResult]) -> set:
        """Domains whose crawl reached a live site."""
        return {r.domain for r in results if r.http_ok}

    def tagged_subset(self, results: Iterable[CrawlResult]) -> set:
        """Domains whose crawl reached a known storefront."""
        return {r.domain for r in results if r.tagged}
