"""Event-ordered merging of per-feed record sequences.

The collectors (and external JSONL feed files) each produce a
time-sorted sequence of sightings.  :class:`RecordStream` interleaves
any number of such sources into one simulation-time-ordered event
stream, the way a live aggregation point would observe them arriving.

Properties the rest of the streaming engine relies on:

* **Deterministic order.**  Events are emitted by ``(time, source)``
  with ties broken by source registration order, then by position
  within the source.  Two runs over the same sources always produce
  the same interleaving.
* **Bounded batching / backpressure.**  Consumption is pull-based:
  :meth:`next_batch` materializes at most ``batch_size`` events beyond
  the underlying sequences, so a slow consumer never forces the merge
  layer to buffer the world.
* **Seekable cursors.**  The stream's complete position is the
  per-source cursor vector (plus the emission high-water mark), which
  is what a checkpoint stores and :meth:`seek` restores.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterator, List, Mapping, NamedTuple, Optional, Sequence

from repro.feeds.base import FeedRecord
from repro.simtime import SimTime

#: Default maximum number of events one batch may carry.
DEFAULT_BATCH_SIZE = 4096


class StreamEvent(NamedTuple):
    """One merged sighting: which feed saw which domain, and when."""

    time: SimTime
    feed: str
    domain: str


class ColumnRecord(NamedTuple):
    """A record view over parallel (time, domain) columns.

    Shape-compatible with :class:`repro.feeds.base.FeedRecord` as far
    as :class:`RecordStream` is concerned (``.time`` and ``.domain``).
    """

    time: SimTime
    domain: str


class ColumnSource(Sequence):
    """Lazy record sequence over a time array and a domain list.

    The sharded world build hands :class:`RecordStream` one of these
    per shard: the columns stay flat (an ``array('q')`` plus a string
    list) and records materialize one at a time as the merge's heap
    pulls them, so merging never builds a per-event object graph.
    """

    __slots__ = ("_times", "_domains")

    def __init__(
        self, times: Sequence[SimTime], domains: Sequence[str]
    ) -> None:
        if len(times) != len(domains):
            raise ValueError("times and domains must have equal length")
        self._times = times
        self._domains = domains

    def __len__(self) -> int:
        return len(self._times)

    def __getitem__(self, index: int) -> ColumnRecord:
        return ColumnRecord(self._times[index], self._domains[index])


class RecordStream:
    """Merge per-feed record sequences in simulation-time order."""

    def __init__(
        self,
        sources: Mapping[str, Sequence[FeedRecord]],
        batch_size: int = DEFAULT_BATCH_SIZE,
        presorted: bool = False,
    ):
        """*presorted* skips the per-source time-order validation scan
        -- for callers that sorted the sources themselves (the sharded
        world build sorts each shard's placement columns before
        merging) and cannot afford an O(n) pre-pass per source.
        """
        if not sources:
            raise ValueError("need at least one record source")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.feed_names: List[str] = list(sources)
        self.batch_size = batch_size
        self._sources: List[Sequence[FeedRecord]] = [
            sources[name] for name in self.feed_names
        ]
        if not presorted:
            for name, records in zip(self.feed_names, self._sources):
                for i in range(len(records) - 1):
                    if records[i].time > records[i + 1].time:
                        raise ValueError(
                            f"source {name!r} is not time-ordered at index "
                            f"{i}; pass FeedDataset.chronological_records()"
                        )
        self._cursors: List[int] = [0] * len(self._sources)
        self._emitted = 0
        self._position: Optional[SimTime] = None
        self._heap: List = []
        self._rebuild_heap()

    # ------------------------------------------------------------------
    # Position and cursors
    # ------------------------------------------------------------------

    @property
    def cursors(self) -> Dict[str, int]:
        """Per-feed consumed-record counts (the resumable position)."""
        return dict(zip(self.feed_names, self._cursors))

    @property
    def emitted(self) -> int:
        """Total events emitted so far."""
        return self._emitted

    @property
    def position(self) -> Optional[SimTime]:
        """Time of the most recently emitted event (None before any)."""
        return self._position

    @property
    def exhausted(self) -> bool:
        """True once every source is fully consumed."""
        return not self._heap

    def peek_time(self) -> Optional[SimTime]:
        """Time of the next event without consuming it."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def seek(self, cursors: Mapping[str, int]) -> None:
        """Restore a cursor vector previously read from :attr:`cursors`."""
        if set(cursors) != set(self.feed_names):
            raise ValueError(
                "cursor feeds do not match stream sources: "
                f"{sorted(cursors)} vs {sorted(self.feed_names)}"
            )
        position: Optional[SimTime] = None
        for index, name in enumerate(self.feed_names):
            cursor = cursors[name]
            size = len(self._sources[index])
            if not 0 <= cursor <= size:
                raise ValueError(
                    f"cursor {cursor} out of range for feed {name!r} "
                    f"(0..{size})"
                )
            self._cursors[index] = cursor
            if cursor > 0:
                t = self._sources[index][cursor - 1].time
                if position is None or t > position:
                    position = t
        self._emitted = sum(self._cursors)
        self._position = position
        self._rebuild_heap()

    def _rebuild_heap(self) -> None:
        self._heap = [
            (self._sources[i][c].time, i)
            for i, c in enumerate(self._cursors)
            if c < len(self._sources[i])
        ]
        heapq.heapify(self._heap)

    # ------------------------------------------------------------------
    # Consumption
    # ------------------------------------------------------------------

    def next_batch(
        self,
        limit: Optional[int] = None,
        until_time: Optional[SimTime] = None,
    ) -> List[StreamEvent]:
        """The next batch of events, in emission order.

        Returns at most ``limit`` (default ``batch_size``) events, all
        strictly before ``until_time`` when given.  An empty list means
        no further events are available (before the bound).
        """
        cap = self.batch_size if limit is None else min(limit, self.batch_size)
        batch: List[StreamEvent] = []
        heap = self._heap
        while heap and len(batch) < cap:
            time, index = heap[0]
            if until_time is not None and time >= until_time:
                break
            cursor = self._cursors[index]
            record = self._sources[index][cursor]
            batch.append(StreamEvent(time, self.feed_names[index], record.domain))
            cursor += 1
            self._cursors[index] = cursor
            source = self._sources[index]
            if cursor < len(source):
                heapq.heapreplace(heap, (source[cursor].time, index))
            else:
                heapq.heappop(heap)
        self._emitted += len(batch)
        if batch:
            self._position = batch[-1].time
        return batch

    def __iter__(self) -> Iterator[StreamEvent]:
        """Drain the stream one bounded batch at a time."""
        while True:
            batch = self.next_batch()
            if not batch:
                return
            yield from batch

    def __repr__(self) -> str:
        return (
            f"RecordStream(feeds={len(self.feed_names)}, "
            f"emitted={self._emitted}, exhausted={self.exhausted})"
        )
