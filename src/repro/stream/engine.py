"""The streaming analysis engine: consume, snapshot, checkpoint, resume.

:class:`StreamEngine` pulls bounded batches off a
:class:`~repro.stream.merge.RecordStream`, folds them into a
:class:`~repro.stream.state.StreamState`, and can at any moment produce
a :class:`StreamSnapshot` -- the paper's Table 1/2/3 (and Figure 1-3
data) *as of* the records consumed so far.  A snapshot taken after the
stream is fully drained is byte-identical to the batch
:class:`~repro.pipeline.runner.PaperPipeline` output: both paths feed
the same statistics into the same :class:`FeedComparison` analyses and
the same renderers.

Checkpointing serializes the accumulator state plus the merge-layer
cursor vector through :mod:`repro.io.checkpoint`; resuming rebuilds the
(deterministic) sources, seeks the cursors, and continues exactly where
the previous run stopped.
"""

from __future__ import annotations

import dataclasses
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro import obs
from repro.analysis.context import FeedComparison
from repro.analysis.coverage import (
    CoverageRow,
    OverlapMatrix,
    ScatterPoint,
    coverage_table,
    exclusive_scatter,
    pairwise_overlap,
)
from repro.analysis.purity import PurityRow, purity_table
from repro.analysis.volume import VolumeCoverageRow, volume_coverage
from repro.ecosystem import EcosystemConfig, build_world, paper_config
from repro.ecosystem.world import World
from repro.feeds import (
    FeedCollector,
    FeedDataset,
    PAPER_FEED_ORDER,
    collect_all,
    standard_feed_suite,
)
from repro.io.checkpoint import (
    CheckpointError,
    read_checkpoint_any,
    write_checkpoint,
)
from repro.reporting.paper_tables import (
    render_table1,
    render_table2,
    render_table3,
    table1_data,
)
from repro.simtime import MINUTES_PER_DAY, SimTime
from repro.store.sightings import RunWriter, SightingStore, run_key_for
from repro.stream.merge import DEFAULT_BATCH_SIZE, RecordStream, StreamEvent
from repro.stream.state import (
    FrozenFeedStats,
    OnlineCoverageRow,
    StreamState,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.io.artifacts import ArtifactCache

#: Checkpoint envelope kind for stream-engine state.
CHECKPOINT_KIND = "stream-engine"

#: Checkpoint envelope kind for store-backed cursor checkpoints: the
#: accumulator state is reconstructed from the sighting store, so the
#: file carries only the merge cursors and a pointer at the store.
CURSOR_CHECKPOINT_KIND = "stream-cursor"


@dataclasses.dataclass
class StreamSnapshot:
    """Frozen as-of-now analysis over the consumed prefix of the stream.

    The heavy artifacts (purity, coverage, overlap, volume) are computed
    lazily through a :class:`FeedComparison` built over frozen
    accumulator statistics, so taking a snapshot is cheap and analyzing
    it is decoupled from the still-advancing stream.
    """

    world: World
    seed: int
    feeds: Mapping[str, FrozenFeedStats]
    feed_order: Sequence[str]
    records_processed: int
    as_of: Optional[SimTime]

    def __post_init__(self) -> None:
        self._comparison: Optional[FeedComparison] = None

    @property
    def as_of_day(self) -> Optional[int]:
        """Zero-based day index of the snapshot clock (None when empty)."""
        if self.as_of is None:
            return None
        return self.world.timeline.day_of(self.as_of)

    @property
    def comparison(self) -> FeedComparison:
        """The (lazily built) analysis context over the frozen stats."""
        if self._comparison is None:
            self._comparison = FeedComparison(
                self.world, dict(self.feeds), seed=self.seed
            )
        return self._comparison

    def _present(self, wanted: Optional[Sequence[str]] = None) -> List[str]:
        wanted = self.feed_order if wanted is None else wanted
        return [name for name in wanted if name in self.feeds]

    # -- Table/figure data, mirroring PaperPipeline ---------------------

    def table1(self) -> Dict[str, Dict[str, int]]:
        """Feed summary: total samples and unique domains so far."""
        return table1_data(self.feeds, self._present())

    def table2(self) -> List[PurityRow]:
        """Purity indicators per feed, as of the consumed prefix."""
        return purity_table(self.comparison, self._present())

    def table3(self) -> List[CoverageRow]:
        """Total/exclusive domain counts per feed."""
        return coverage_table(self.comparison, self._present())

    def figure1(self, kind: str = "live") -> List[ScatterPoint]:
        """Distinct vs. exclusive scatter data."""
        return exclusive_scatter(self.comparison, kind, self._present())

    def figure2(self, kind: str = "live") -> OverlapMatrix:
        """Pairwise feed intersection matrix."""
        return pairwise_overlap(self.comparison, kind, self._present())

    def figure3(self, kind: str = "live") -> List[VolumeCoverageRow]:
        """Volume coverage rows."""
        return volume_coverage(self.comparison, kind, self._present())

    # -- Rendering ------------------------------------------------------

    def header(self) -> str:
        """One-line provenance banner for as-of-day output."""
        day = self.as_of_day
        when = "before any records" if day is None else f"day {day + 1}"
        return (
            f"[stream] as of {when}: "
            f"{self.records_processed:,} records processed"
        )

    def render_table1(self) -> str:
        """Table 1 in the paper's layout (batch-identical when drained)."""
        return render_table1(self.feeds, self._present())

    def render_table2(self) -> str:
        """Table 2 in the paper's layout."""
        return render_table2(self.table2())

    def render_table3(self) -> str:
        """Table 3 in the paper's layout."""
        return render_table3(self.table3())

    def render_tables(self) -> str:
        """All three tables, separated by blank lines."""
        return "\n\n".join(
            [self.render_table1(), self.render_table2(), self.render_table3()]
        )


class StreamEngine:
    """Incrementally analyze feed records in simulation-time order."""

    def __init__(
        self,
        world: World,
        datasets: Mapping[str, FeedDataset],
        seed: int = 2012,
        feed_order: Sequence[str] = PAPER_FEED_ORDER,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ):
        self.world = world
        self.seed = seed
        self.feed_order = list(feed_order)
        self.datasets = dict(datasets)
        self._stream = RecordStream(
            {
                name: ds.chronological_records()
                for name, ds in self.datasets.items()
            },
            batch_size=batch_size,
        )
        self.state = StreamState(
            [
                (ds.name, ds.feed_type, ds.has_volume)
                for ds in self.datasets.values()
            ]
        )
        self._writer: Optional[RunWriter] = None
        self._store_path: Optional[str] = None
        self._run_key: Optional[str] = None
        #: True while every store landing this session validated clean;
        #: a rejection would desynchronize silver replay from the merge
        #: cursors, so checkpoints fall back to full state payloads.
        self._store_clean = True

    # ------------------------------------------------------------------
    # Store landing
    # ------------------------------------------------------------------

    def attach_store(
        self,
        store: SightingStore,
        path: str,
        config_fingerprint: str,
        command: str = "stream",
    ) -> None:
        """Land every consumed batch into *store*, idempotently.

        The run key derives from (config fingerprint, seed), the same
        identity the artifact cache uses, so a batch ``run --store``
        and a ``stream --store`` against the same file land the same
        run exactly once.  When the engine is already positioned
        mid-stream (a resumed run), the writer's per-feed positions
        are aligned with the merge cursors so the suffix about to be
        consumed lands after the already-durable prefix.
        """
        self._run_key = run_key_for(config_fingerprint, self.seed)
        self._writer = store.open_run(
            self._run_key, self.seed, config_fingerprint, command
        )
        self._store_path = path
        for feed, cursor in self._stream.cursors.items():
            self._writer.set_position(feed, cursor)

    def _land_batch(self, batch: Sequence[StreamEvent]) -> None:
        if self._writer is None:
            return
        groups: Dict[str, List[Tuple[str, SimTime]]] = {}
        for time, feed, domain in batch:
            groups.setdefault(feed, []).append((domain, time))
        for feed, rows in groups.items():
            stats = self._writer.land_sightings(feed, rows)
            if stats.rejected:
                self._store_clean = False

    def finish_store(self) -> None:
        """Commit any store landings performed so far."""
        if self._writer is not None:
            self._writer.finish()

    # ------------------------------------------------------------------
    # Consumption
    # ------------------------------------------------------------------

    @property
    def exhausted(self) -> bool:
        """True once every source record has been consumed."""
        return self._stream.exhausted

    @property
    def records_processed(self) -> int:
        """Total records folded into the state so far."""
        return self.state.records_processed

    @property
    def position(self) -> Optional[SimTime]:
        """Simulation time of the last consumed record."""
        return self._stream.position

    def process(
        self,
        max_records: Optional[int] = None,
        until_time: Optional[SimTime] = None,
    ) -> int:
        """Consume events (bounded by count and/or time); returns #consumed."""
        consumed = 0
        batches = 0
        while max_records is None or consumed < max_records:
            limit = None if max_records is None else max_records - consumed
            batch = self._stream.next_batch(limit=limit, until_time=until_time)
            if not batch:
                break
            self.state.update_batch(batch)
            self._land_batch(batch)
            consumed += len(batch)
            batches += 1
        if self._writer is not None:
            self._writer.finish()
        obs.add("stream.records", consumed)
        obs.add("stream.batches", batches)
        return consumed

    def advance_to_day(self, day: int) -> int:
        """Consume everything before the start of (zero-based) *day*."""
        boundary = self.world.timeline.start + day * MINUTES_PER_DAY
        with obs.span("stream.advance", day=day) as span:
            consumed = self.process(until_time=boundary)
            if span is not None:
                span.attributes["records"] = consumed
        return consumed

    def run(self) -> int:
        """Drain the stream to the end of the window; returns #consumed."""
        with obs.span("stream.drain") as span:
            consumed = self.process()
            if span is not None:
                span.attributes["records"] = consumed
        return consumed

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------

    def snapshot(self) -> StreamSnapshot:
        """Freeze the current state for analysis."""
        obs.add("stream.snapshots")
        return StreamSnapshot(
            world=self.world,
            seed=self.seed,
            feeds=self.state.freeze(),
            feed_order=self.feed_order,
            records_processed=self.state.records_processed,
            as_of=self.state.clock,
        )

    def online_coverage(self) -> List[OnlineCoverageRow]:
        """The cheap oracle-free running coverage view."""
        return self.state.online_coverage()

    def daily_snapshots(
        self, every_days: int = 1
    ) -> Iterator[StreamSnapshot]:
        """Windowed emission: a snapshot after each *every_days* of data.

        Yields the snapshot as of the end of day ``every_days``,
        ``2*every_days``, ... up to and including the end of the window
        (the final snapshot covers the fully drained stream).
        """
        if every_days <= 0:
            raise ValueError("every_days must be positive")
        timeline = self.world.timeline
        total_days = int(timeline.duration_days)
        day = every_days
        while day < total_days:
            self.advance_to_day(day)
            yield self.snapshot()
            day += every_days
        self.run()
        yield self.snapshot()

    # ------------------------------------------------------------------
    # Checkpoint / resume
    # ------------------------------------------------------------------

    def checkpoint_payload(self) -> Dict[str, Any]:
        """The complete resumable position as a JSON-friendly payload."""
        return {
            "seed": self.seed,
            "feed_order": list(self.feed_order),
            "cursors": self._stream.cursors,
            "state": self.state.to_payload(),
        }

    def cursor_checkpoint_payload(self) -> Dict[str, Any]:
        """Cursor-only position for store-backed engines.

        The per-feed accumulator state is *not* serialized: the store's
        silver tier holds every consumed sighting, so resuming replays
        each feed's landed prefix (bounded by the cursors) instead.
        """
        return {
            "seed": self.seed,
            "feed_order": list(self.feed_order),
            "cursors": self._stream.cursors,
            "store": {"path": self._store_path, "run_key": self._run_key},
        }

    def save_checkpoint(self, path: str) -> None:
        """Atomically write the current position to *path*.

        A store-backed engine writes a compact cursor checkpoint
        (flushing the store first, so the cursors never point past the
        durable silver rows); otherwise the full state payload is
        written as before.
        """
        if self._writer is not None and self._store_clean:
            self._writer.finish()
            write_checkpoint(
                path, CURSOR_CHECKPOINT_KIND, self.cursor_checkpoint_payload()
            )
        else:
            write_checkpoint(path, CHECKPOINT_KIND, self.checkpoint_payload())

    def restore(self, payload: Dict[str, Any]) -> None:
        """Restore a position produced by :meth:`checkpoint_payload`.

        The engine must have been constructed over the same world and
        datasets (same seed and feed suite) as the checkpointing run;
        mismatches raise :class:`CheckpointError`.
        """
        try:
            seed = int(payload["seed"])
            cursors = dict(payload["cursors"])
            state_payload = payload["state"]
            feed_order = list(payload["feed_order"])
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"bad engine checkpoint: {exc}") from exc
        if seed != self.seed:
            raise CheckpointError(
                f"checkpoint seed {seed} does not match engine seed "
                f"{self.seed}"
            )
        if set(cursors) != set(self.datasets):
            raise CheckpointError(
                "checkpoint feeds do not match engine feeds: "
                f"{sorted(cursors)} vs {sorted(self.datasets)}"
            )
        state = StreamState.from_payload(state_payload)
        consumed = sum(int(c) for c in cursors.values())
        if state.records_processed != consumed:
            raise CheckpointError(
                f"checkpoint state covers {state.records_processed} records "
                f"but cursors account for {consumed}"
            )
        self._stream.seek({name: int(c) for name, c in cursors.items()})
        self.state = state
        self.feed_order = feed_order

    def restore_from_store(
        self, payload: Dict[str, Any], store: SightingStore
    ) -> None:
        """Restore a cursor checkpoint by replaying store silver rows.

        Each feed's landed prefix (bounded by its cursor) is replayed
        through a fresh :class:`StreamState`.  An accumulator only ever
        sees its own feed's chronological subsequence, so per-feed
        replay rebuilds the exact state the live engine had -- the
        cross-feed interleaving it skips does not affect any
        accumulator, and the cross-feed counters are order-independent
        set sizes.
        """
        try:
            seed = int(payload["seed"])
            cursors = {
                str(k): int(v) for k, v in dict(payload["cursors"]).items()
            }
            feed_order = list(payload["feed_order"])
            run_key = str(dict(payload["store"])["run_key"])
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"bad cursor checkpoint: {exc}") from exc
        if seed != self.seed:
            raise CheckpointError(
                f"checkpoint seed {seed} does not match engine seed "
                f"{self.seed}"
            )
        if set(cursors) != set(self.datasets):
            raise CheckpointError(
                "checkpoint feeds do not match engine feeds: "
                f"{sorted(cursors)} vs {sorted(self.datasets)}"
            )
        run = store.run_by_key(run_key)
        if run is None:
            raise CheckpointError(
                f"store has no run {run_key!r}; cannot replay cursors"
            )
        state = StreamState(
            [
                (ds.name, ds.feed_type, ds.has_volume)
                for ds in self.datasets.values()
            ]
        )
        replayed = sum(  # reprolint: disable=REP004 -- int cursor counts
            cursors.values()
        )
        with obs.span("store.replay", records=replayed):
            for name in self.datasets:
                expected = cursors[name]
                if expected == 0:
                    continue
                rows = store.silver_prefix(run.run_id, name, limit=expected)
                if len(rows) != expected:
                    raise CheckpointError(
                        f"store holds {len(rows)} sightings for feed "
                        f"{name!r} but the checkpoint cursor expects "
                        f"{expected}; the store cannot replay this run"
                    )
                for domain, time in rows:
                    state.update(StreamEvent(time, name, domain))
        self._stream.seek(cursors)
        self.state = state
        self.feed_order = feed_order

    @classmethod
    def resume(
        cls,
        world: World,
        datasets: Mapping[str, FeedDataset],
        path: str,
        batch_size: int = DEFAULT_BATCH_SIZE,
        store: Optional[SightingStore] = None,
    ) -> "StreamEngine":
        """Build an engine over *datasets* positioned at checkpoint *path*.

        Accepts both checkpoint shapes: a full ``stream-engine`` state
        payload, or a ``stream-cursor`` checkpoint -- the latter needs
        *store* (the sighting store the checkpointing run landed into)
        to replay the consumed prefix.
        """
        kind, payload = read_checkpoint_any(
            path, (CHECKPOINT_KIND, CURSOR_CHECKPOINT_KIND)
        )
        engine = cls(
            world,
            datasets,
            seed=int(payload.get("seed", 0)),
            feed_order=list(payload.get("feed_order", PAPER_FEED_ORDER)),
            batch_size=batch_size,
        )
        if kind == CURSOR_CHECKPOINT_KIND:
            if store is None:
                raise CheckpointError(
                    f"{path}: cursor checkpoint needs its sighting store "
                    "(pass --store with the file the run landed into)"
                )
            engine.restore_from_store(payload, store)
        else:
            engine.restore(payload)
        return engine

    def __repr__(self) -> str:
        return (
            f"StreamEngine(records={self.records_processed}, "
            f"exhausted={self.exhausted})"
        )


def build_stream_engine(
    config: Optional[EcosystemConfig] = None,
    seed: int = 2012,
    collectors: Optional[Sequence[FeedCollector]] = None,
    feed_order: Sequence[str] = PAPER_FEED_ORDER,
    batch_size: int = DEFAULT_BATCH_SIZE,
    jobs: Optional[int] = None,
    cache: Optional["ArtifactCache"] = None,
    shards: Optional[int] = None,
) -> StreamEngine:
    """Build the world, collect the feed suite, and wrap it in an engine.

    The record *sources* are deterministic functions of ``(config,
    seed)``, which is what makes checkpoints portable across processes:
    a resuming run rebuilds identical sources and seeks the cursors.
    ``jobs`` parallelizes source collection, ``shards`` parallelizes the
    world build itself, and ``cache`` reuses a previously built world +
    dataset state; none of them changes a byte of the stream.
    """
    if jobs is not None or cache is not None or (shards or 1) > 1:
        # The batch pipeline already implements cached/parallel state
        # construction; reuse it rather than duplicating the key
        # handling here.  Imported lazily to keep the stream layer
        # importable without the pipeline layer.
        from repro.pipeline.runner import PaperPipeline

        # Close the pipeline once collected: the stream engine only
        # needs the state, so any persistent worker pool the run forked
        # would otherwise idle for the engine's whole lifetime.
        with PaperPipeline(
            config, seed=seed, collectors=collectors,
            feed_order=feed_order, jobs=jobs, cache=cache,
            shards=shards,
        ) as pipeline:
            result = pipeline.run()
        world, datasets = result.world, result.datasets
    else:
        with obs.span("world.build"):
            world = build_world(config or paper_config(), seed=seed)
        with obs.span("feeds.collect"):
            datasets = collect_all(
                world, collectors or standard_feed_suite(seed)
            )
    return StreamEngine(
        world, datasets, seed=seed, feed_order=feed_order,
        batch_size=batch_size,
    )
