"""Online analysis state: per-feed and cross-feed accumulators.

Every structure here is updatable in O(1) per event and snapshotable at
any moment.  Two layers:

* :class:`FeedAccumulator` -- one feed's running statistics (sample
  count, unique domains, per-domain volume, first/last sighting).  It
  satisfies the :class:`~repro.feeds.base.FeedStats` protocol, so a
  drained accumulator can be dropped into
  :class:`~repro.analysis.context.FeedComparison` and produce results
  identical to the record-backed batch path.
* :class:`StreamState` -- the whole suite plus cross-feed counters that
  the batch analyses only derive at the end: per-domain occurrence
  counts (exclusivity), pairwise intersection counts (the Figure 2
  numerators over all domains), and the union size.  These power the
  cheap always-current :meth:`online_coverage` view that needs no
  oracle access at all.

State serializes to a JSON-friendly payload.  Only the per-feed maps
are stored; the cross-feed counters are re-derived on load, which keeps
checkpoints smaller and structurally impossible to de-synchronize.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.feeds.base import FeedStats, FeedType
from repro.simtime import SimTime
from repro.stats.distributions import EmpiricalDistribution
from repro.stream.merge import StreamEvent


class StreamStateError(ValueError):
    """Raised when a serialized state payload is invalid or mismatched."""


class FeedAccumulator:
    """One feed's running statistics, updated per sighting.

    Interface-compatible with :class:`~repro.feeds.base.FeedDataset`
    (the :class:`~repro.feeds.base.FeedStats` surface) minus the raw
    record list -- memory stays proportional to *distinct* domains, not
    to sightings.
    """

    def __init__(self, name: str, feed_type: FeedType, has_volume: bool = True):
        self.name = name
        self.feed_type = feed_type
        self.has_volume = has_volume
        self._samples = 0
        self._counts: Dict[str, int] = {}
        self._first: Dict[str, SimTime] = {}
        self._last: Dict[str, SimTime] = {}
        self._unique: Set[str] = set()

    def add(self, domain: str, time: SimTime) -> bool:
        """Absorb one sighting; True when *domain* is new to this feed."""
        self._samples += 1
        count = self._counts.get(domain)
        if count is None:
            self._counts[domain] = 1
            self._first[domain] = time
            self._last[domain] = time
            self._unique.add(domain)
            return True
        self._counts[domain] = count + 1
        if time < self._first[domain]:
            self._first[domain] = time
        if time > self._last[domain]:
            self._last[domain] = time
        return False

    # -- FeedStats surface ---------------------------------------------

    @property
    def total_samples(self) -> int:
        """Total sightings absorbed."""
        return self._samples

    @property
    def n_unique(self) -> int:
        """Number of distinct domains seen."""
        return len(self._unique)

    def unique_domains(self) -> Set[str]:
        """Distinct domains seen so far (live view; do not mutate)."""
        return self._unique

    def domain_counts(self) -> EmpiricalDistribution:
        """Empirical domain-volume distribution of sightings so far."""
        return EmpiricalDistribution(
            {d: float(c) for d, c in self._counts.items()}
        )

    def first_seen(self) -> Dict[str, SimTime]:
        """Earliest sighting time per domain (live view)."""
        return self._first

    def last_seen(self) -> Dict[str, SimTime]:
        """Latest sighting time per domain (live view)."""
        return self._last

    # -- Snapshot / serialization --------------------------------------

    def freeze(self) -> "FrozenFeedStats":
        """An immutable copy safe to analyze while streaming continues."""
        return FrozenFeedStats(
            name=self.name,
            feed_type=self.feed_type,
            has_volume=self.has_volume,
            total_samples=self._samples,
            counts=dict(self._counts),
            first=dict(self._first),
            last=dict(self._last),
        )

    def to_payload(self) -> Dict[str, Any]:
        """JSON-friendly serialization of the accumulated state."""
        return {
            "name": self.name,
            "type": self.feed_type.value,
            "has_volume": self.has_volume,
            "samples": self._samples,
            # One row per domain keeps the payload compact and ordered.
            "domains": [
                [d, self._counts[d], self._first[d], self._last[d]]
                for d in sorted(self._counts)
            ],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "FeedAccumulator":
        """Rebuild an accumulator serialized by :meth:`to_payload`."""
        try:
            acc = cls(
                name=str(payload["name"]),
                feed_type=FeedType(payload["type"]),
                has_volume=bool(payload["has_volume"]),
            )
            for domain, count, first, last in payload["domains"]:
                domain = str(domain)
                acc._counts[domain] = int(count)
                acc._first[domain] = int(first)
                acc._last[domain] = int(last)
                acc._unique.add(domain)
            acc._samples = int(payload["samples"])
        except (KeyError, TypeError, ValueError) as exc:
            raise StreamStateError(f"bad feed payload: {exc}") from exc
        per_domain = sum(  # reprolint: disable=REP004 -- int counts
            acc._counts.values()
        )
        if acc._samples < per_domain:
            raise StreamStateError(
                f"feed {acc.name!r}: sample count below per-domain total"
            )
        return acc

    def __repr__(self) -> str:
        return (
            f"FeedAccumulator({self.name!r}, samples={self._samples}, "
            f"unique={self.n_unique})"
        )


@dataclasses.dataclass(frozen=True)
class FrozenFeedStats:
    """An immutable FeedStats snapshot decoupled from the live stream."""

    name: str
    feed_type: FeedType
    has_volume: bool
    total_samples: int
    counts: Dict[str, int]
    first: Dict[str, SimTime]
    last: Dict[str, SimTime]

    @property
    def n_unique(self) -> int:
        return len(self.counts)

    def unique_domains(self) -> Set[str]:
        return set(self.counts)

    def domain_counts(self) -> EmpiricalDistribution:
        return EmpiricalDistribution(
            {d: float(c) for d, c in self.counts.items()}
        )

    def first_seen(self) -> Dict[str, SimTime]:
        return self.first

    def last_seen(self) -> Dict[str, SimTime]:
        return self.last


@dataclasses.dataclass(frozen=True)
class OnlineCoverageRow:
    """One feed's oracle-free running coverage numbers."""

    feed: str
    samples: int
    unique: int
    exclusive: int
    union_fraction: float


class StreamState:
    """The full online state: all accumulators plus cross-feed counters."""

    def __init__(self, feeds: Sequence[Tuple[str, FeedType, bool]]):
        if not feeds:
            raise ValueError("need at least one feed")
        self.accumulators: Dict[str, FeedAccumulator] = {}
        for name, feed_type, has_volume in feeds:
            if name in self.accumulators:
                raise ValueError(f"duplicate feed name {name!r}")
            self.accumulators[name] = FeedAccumulator(
                name, feed_type, has_volume
            )
        #: domain -> number of feeds that have seen it.
        self._occurrences: Dict[str, int] = {}
        #: domain -> sole owning feed, while exactly one feed has it.
        self._sole_owner: Dict[str, str] = {}
        #: feed -> number of domains currently exclusive to it.
        self._exclusive: Dict[str, int] = {
            name: 0 for name in self.accumulators
        }
        #: unordered feed pair -> |A ∩ B| over all-kind domains.
        self._pair_counts: Dict[Tuple[str, str], int] = {}
        self.records_processed = 0
        self.clock: Optional[SimTime] = None

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def update(self, event: StreamEvent) -> None:
        """Absorb one merged stream event."""
        time, feed, domain = event
        try:
            accumulator = self.accumulators[feed]
        except KeyError:
            raise StreamStateError(f"event for unknown feed {feed!r}")
        is_new = accumulator.add(domain, time)
        self.records_processed += 1
        if self.clock is None or time > self.clock:
            self.clock = time
        if not is_new:
            return
        occurrences = self._occurrences.get(domain, 0)
        if occurrences == 0:
            self._occurrences[domain] = 1
            self._sole_owner[domain] = feed
            self._exclusive[feed] += 1
            return
        self._occurrences[domain] = occurrences + 1
        if occurrences == 1:
            previous = self._sole_owner.pop(domain)
            self._exclusive[previous] -= 1
        # Pairwise counters: this domain is newly shared with every
        # feed that already had it.
        for other, acc in self.accumulators.items():
            if other != feed and domain in acc.unique_domains():
                self._pair_counts[_pair_key(feed, other)] = (
                    self._pair_counts.get(_pair_key(feed, other), 0) + 1
                )

    def update_batch(self, events: Iterable[StreamEvent]) -> None:
        """Absorb a batch of merged events."""
        for event in events:
            self.update(event)

    # ------------------------------------------------------------------
    # Online (oracle-free) views
    # ------------------------------------------------------------------

    @property
    def feed_names(self) -> List[str]:
        """Feed mnemonics in registration order."""
        return list(self.accumulators)

    @property
    def union_size(self) -> int:
        """Distinct domains across all feeds so far."""
        return len(self._occurrences)

    def exclusive_count(self, feed: str) -> int:
        """Domains currently seen by *feed* and no other."""
        return self._exclusive[feed]

    def pairwise_intersection(self, a: str, b: str) -> int:
        """``|A ∩ B|`` over all-kind domains, as of now."""
        if a == b:
            return self.accumulators[a].n_unique
        return self._pair_counts.get(_pair_key(a, b), 0)

    def online_coverage(self) -> List[OnlineCoverageRow]:
        """Running Table 1 / Table 3 ("all" kind) shaped numbers."""
        union = self.union_size
        rows = []
        for name, acc in self.accumulators.items():
            rows.append(
                OnlineCoverageRow(
                    feed=name,
                    samples=acc.total_samples,
                    unique=acc.n_unique,
                    exclusive=self._exclusive[name],
                    union_fraction=acc.n_unique / union if union else 0.0,
                )
            )
        return rows

    def freeze(self) -> Dict[str, FrozenFeedStats]:
        """Immutable per-feed stats for snapshot-time analysis."""
        return {
            name: acc.freeze() for name, acc in self.accumulators.items()
        }

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        """JSON-friendly serialization of the complete state."""
        return {
            "records_processed": self.records_processed,
            "clock": self.clock,
            "feeds": [
                acc.to_payload() for acc in self.accumulators.values()
            ],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "StreamState":
        """Rebuild state serialized by :meth:`to_payload`.

        Cross-feed counters are re-derived from the per-feed domain
        maps rather than stored, so they can never drift out of sync
        with the data they summarize.
        """
        try:
            feed_payloads = list(payload["feeds"])
            records_processed = int(payload["records_processed"])
            clock = payload["clock"]
        except (KeyError, TypeError) as exc:
            raise StreamStateError(f"bad state payload: {exc}") from exc
        accumulators = [
            FeedAccumulator.from_payload(fp) for fp in feed_payloads
        ]
        state = cls(
            [(a.name, a.feed_type, a.has_volume) for a in accumulators]
        )
        state.accumulators = {a.name: a for a in accumulators}
        state.records_processed = records_processed
        state.clock = None if clock is None else int(clock)
        state._rederive_cross_feed()
        return state

    def _rederive_cross_feed(self) -> None:
        self._occurrences = {}
        self._sole_owner = {}
        self._pair_counts = {}
        names = list(self.accumulators)
        for name in names:
            for domain in self.accumulators[name].unique_domains():
                count = self._occurrences.get(domain, 0)
                self._occurrences[domain] = count + 1
                if count == 0:
                    self._sole_owner[domain] = name
                elif count == 1:
                    self._sole_owner.pop(domain, None)
        self._exclusive = {name: 0 for name in self.accumulators}
        for owner in self._sole_owner.values():
            self._exclusive[owner] += 1
        for i, a in enumerate(names):
            set_a = self.accumulators[a].unique_domains()
            for b in names[i + 1:]:
                shared = len(set_a & self.accumulators[b].unique_domains())
                if shared:
                    self._pair_counts[_pair_key(a, b)] = shared

    def __repr__(self) -> str:
        return (
            f"StreamState(feeds={len(self.accumulators)}, "
            f"records={self.records_processed}, union={self.union_size})"
        )


def _pair_key(a: str, b: str) -> Tuple[str, str]:
    return (a, b) if a <= b else (b, a)
