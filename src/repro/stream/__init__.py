"""Incremental streaming analysis with checkpoint/resume.

The batch pipeline materializes every feed before any analysis can
start; this package treats the feeds as what they really are -- streams
of (domain, time) sightings -- and maintains online analysis state as
records arrive in simulation-time order:

* :class:`RecordStream` merges all collectors into one event-ordered
  stream with bounded batching (pull-based backpressure).
* :class:`StreamState` / :class:`FeedAccumulator` hold O(domains)
  running statistics: sample counts, unique/exclusive domains,
  pairwise-overlap counters, per-domain volume tallies, first/last
  sighting times.
* :class:`StreamEngine` drives consumption, emits windowed
  :class:`StreamSnapshot` views ("Table 1/2/3 as of day N"), and
  serializes its complete position through :mod:`repro.io.checkpoint`
  so a run can be stopped and resumed deterministically.

A snapshot taken after the stream is fully drained matches the batch
:class:`~repro.pipeline.runner.PaperPipeline` byte-for-byte: both paths
feed identical statistics into the same analyses and renderers.
"""

from repro.stream.engine import (
    CHECKPOINT_KIND,
    CURSOR_CHECKPOINT_KIND,
    StreamEngine,
    StreamSnapshot,
    build_stream_engine,
)
from repro.stream.merge import (
    DEFAULT_BATCH_SIZE,
    ColumnRecord,
    ColumnSource,
    RecordStream,
    StreamEvent,
)
from repro.stream.state import (
    FeedAccumulator,
    FrozenFeedStats,
    OnlineCoverageRow,
    StreamState,
    StreamStateError,
)

__all__ = [
    "CHECKPOINT_KIND",
    "CURSOR_CHECKPOINT_KIND",
    "ColumnRecord",
    "ColumnSource",
    "DEFAULT_BATCH_SIZE",
    "FeedAccumulator",
    "FrozenFeedStats",
    "OnlineCoverageRow",
    "RecordStream",
    "StreamEngine",
    "StreamEvent",
    "StreamSnapshot",
    "StreamState",
    "StreamStateError",
    "build_stream_engine",
]
