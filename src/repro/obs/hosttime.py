"""The host-clock quarantine: every host time read lives here.

Reproducibility rests on simulation components taking time only from
:mod:`repro.simtime`; observability needs real durations.  Those two
needs are reconciled by confinement: this module is the single place
in the package that may call :func:`time.perf_counter`,
:func:`time.time`, or read process resource usage.  reprolint rule
REP008 flags host-time reads everywhere else (the ``obs`` package is
the explicit allowlist — no pragmas involved), so a wall-clock read
leaking into analysis code is a lint error at the line that added it.
"""

from __future__ import annotations

import time
from typing import Optional

try:  # pragma: no cover - always present on the platforms we run on
    import resource
except ImportError:  # pragma: no cover - non-Unix fallback
    resource = None  # type: ignore[assignment]


def wall_now() -> float:
    """Seconds since the epoch (manifest timestamps only)."""
    return time.time()


def monotonic_now() -> float:
    """A monotonic high-resolution timestamp for measuring durations."""
    return time.perf_counter()


def peak_rss_kib() -> Optional[int]:
    """This process's peak resident set size in KiB (None if unknown).

    ``ru_maxrss`` is a high-water mark: it never decreases, so the
    delta across a span measures how much the span *grew* the peak.
    """
    if resource is None:
        return None
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


class Stopwatch:
    """Elapsed host seconds since construction (or the last restart)."""

    __slots__ = ("_started",)

    def __init__(self) -> None:
        self._started = monotonic_now()

    def restart(self) -> None:
        """Reset the zero point to now."""
        self._started = monotonic_now()

    def elapsed(self) -> float:
        """Seconds since the zero point."""
        return monotonic_now() - self._started
