"""Versioned JSON run manifests: what a run did, signed with what built it.

A *run manifest* is the per-run provenance record Section 3.3 of the
paper asks feed consumers to demand: which code (git describe), which
configuration (fingerprint), which seed, where the time went (span
tree), and what the counters saw (metric snapshot).  It is a **side
channel**: manifests are written next to the analysis artifacts, never
into them — they do not enter artifact-cache keys or checkpoint
payloads, so two runs that differ only in tracing produce byte-identical
tables and figures.

The schema is hand-rolled (zero dependencies) and versioned; consumers
should reject manifests whose ``format``/``version`` they do not know,
exactly like the checkpoint and artifact envelopes.
"""

from __future__ import annotations

import json
import os
import subprocess
import tempfile
from typing import Any, Dict, List, Mapping, Optional

from repro.obs.hosttime import wall_now
from repro.obs.trace import Tracer

#: Envelope format marker for run manifests.
MANIFEST_FORMAT = "repro-run-manifest"

#: Manifest schema version; bump on incompatible layout changes.
#: v2 added ``scale`` and ``shards`` (sharded world build).
#: v3 added ``request`` (per-request manifests from the serve daemon).
MANIFEST_VERSION = 3

#: Top-level manifest fields and a human-readable type description —
#: the documentation twin of :func:`validate_manifest`.
MANIFEST_SCHEMA: Dict[str, str] = {
    "format": f"literal {MANIFEST_FORMAT!r}",
    "version": f"literal {MANIFEST_VERSION}",
    "command": "str — the CLI subcommand that produced the run",
    "seed": "int — the run's master seed",
    "config_fingerprint": "str — SHA-256 of the ecosystem config",
    "git": "str | null — `git describe --always --dirty` of the source",
    "jobs": "int | null — requested worker count (null = serial)",
    "scale": "number | null — world scale factor (null = paper scale)",
    "shards": "int | null — world-build shard count (null = serial)",
    "request": "str | null — serve request descriptor (null = batch run)",
    "created_unix": "float — wall-clock write time (side channel only)",
    "spans": "list[Span] — the span tree (see Span payload fields)",
    "metrics": "{'counters': {str: num}, 'gauges': {str: num}}",
}

#: Fields of one span payload inside ``spans`` (recursive).
SPAN_SCHEMA: Dict[str, str] = {
    "name": "str — stage name",
    "attributes": "dict[str, null|bool|int|float|str]",
    "duration_s": "float — wall-clock duration, >= 0",
    "rss_delta_kib": "int | null — peak-RSS growth across the span",
    "children": "list[Span]",
}


class ManifestError(ValueError):
    """Raised when a manifest fails structural validation."""


def git_describe() -> Optional[str]:
    """``git describe --always --dirty`` for the source tree, or None.

    Best-effort provenance: a missing git binary, a non-repo install
    (e.g. from a wheel), or any git failure degrades to None rather
    than failing the run.
    """
    source_dir = os.path.dirname(os.path.abspath(__file__))
    try:
        proc = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=source_dir,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    described = proc.stdout.strip()
    return described or None


def build_manifest(
    tracer: Tracer,
    command: str,
    seed: int,
    config_fingerprint: str,
    jobs: Optional[int] = None,
    scale: Optional[float] = None,
    shards: Optional[int] = None,
    request: Optional[str] = None,
) -> Dict[str, Any]:
    """Freeze a finished run into a schema-valid manifest dict."""
    manifest: Dict[str, Any] = {
        "format": MANIFEST_FORMAT,
        "version": MANIFEST_VERSION,
        "command": command,
        "seed": seed,
        "config_fingerprint": config_fingerprint,
        "git": git_describe(),
        "jobs": jobs,
        "scale": scale,
        "shards": shards,
        "request": request,
        "created_unix": wall_now(),
        "spans": tracer.span_payloads(),
        "metrics": tracer.metrics.snapshot(),
    }
    validate_manifest(manifest)
    return manifest


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------


def _fail(path: str, message: str) -> None:
    raise ManifestError(f"{path}: {message}")


def _check_number(value: Any, path: str) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        _fail(path, f"expected a number, got {type(value).__name__}")


def _validate_metric_block(block: Any, path: str) -> None:
    if not isinstance(block, dict):
        _fail(path, "expected an object of metric name -> number")
    for name, value in block.items():
        if not isinstance(name, str) or not name:
            _fail(path, f"metric name {name!r} is not a non-empty string")
        _check_number(value, f"{path}.{name}")


def _validate_span(span: Any, path: str) -> None:
    if not isinstance(span, dict):
        _fail(path, "expected a span object")
    missing = sorted(set(SPAN_SCHEMA) - set(span))
    if missing:
        _fail(path, f"missing span fields: {', '.join(missing)}")
    unknown = sorted(set(span) - set(SPAN_SCHEMA))
    if unknown:
        _fail(path, f"unknown span fields: {', '.join(unknown)}")
    if not isinstance(span["name"], str) or not span["name"]:
        _fail(path, "span name must be a non-empty string")
    attributes = span["attributes"]
    if not isinstance(attributes, dict):
        _fail(path, "span attributes must be an object")
    for key, value in attributes.items():
        if not isinstance(key, str):
            _fail(path, f"attribute key {key!r} is not a string")
        if value is not None and not isinstance(value, (bool, int, float, str)):
            _fail(
                path,
                f"attribute {key!r} has non-scalar type "
                f"{type(value).__name__}",
            )
    _check_number(span["duration_s"], f"{path}.duration_s")
    if span["duration_s"] < 0:
        _fail(path, "span duration must be non-negative")
    rss = span["rss_delta_kib"]
    if rss is not None and (isinstance(rss, bool) or not isinstance(rss, int)):
        _fail(path, "rss_delta_kib must be an int or null")
    children = span["children"]
    if not isinstance(children, list):
        _fail(path, "span children must be a list")
    for index, child in enumerate(children):
        _validate_span(child, f"{path}.children[{index}]")


def validate_manifest(manifest: Any) -> None:
    """Raise :class:`ManifestError` unless *manifest* matches the schema."""
    if not isinstance(manifest, dict):
        raise ManifestError("manifest must be a JSON object")
    missing = sorted(set(MANIFEST_SCHEMA) - set(manifest))
    if missing:
        _fail("manifest", f"missing fields: {', '.join(missing)}")
    unknown = sorted(set(manifest) - set(MANIFEST_SCHEMA))
    if unknown:
        _fail("manifest", f"unknown fields: {', '.join(unknown)}")
    if manifest["format"] != MANIFEST_FORMAT:
        _fail("format", f"expected {MANIFEST_FORMAT!r}")
    if manifest["version"] != MANIFEST_VERSION:
        _fail("version", f"expected {MANIFEST_VERSION}")
    if not isinstance(manifest["command"], str) or not manifest["command"]:
        _fail("command", "must be a non-empty string")
    if isinstance(manifest["seed"], bool) or not isinstance(
        manifest["seed"], int
    ):
        _fail("seed", "must be an integer")
    if not isinstance(manifest["config_fingerprint"], str):
        _fail("config_fingerprint", "must be a string")
    if manifest["git"] is not None and not isinstance(manifest["git"], str):
        _fail("git", "must be a string or null")
    jobs = manifest["jobs"]
    if jobs is not None and (isinstance(jobs, bool) or not isinstance(jobs, int)):
        _fail("jobs", "must be an integer or null")
    scale = manifest["scale"]
    if scale is not None:
        _check_number(scale, "scale")
    shards = manifest["shards"]
    if shards is not None and (
        isinstance(shards, bool) or not isinstance(shards, int)
    ):
        _fail("shards", "must be an integer or null")
    request = manifest["request"]
    if request is not None and not isinstance(request, str):
        _fail("request", "must be a string or null")
    _check_number(manifest["created_unix"], "created_unix")
    spans = manifest["spans"]
    if not isinstance(spans, list):
        _fail("spans", "must be a list of span objects")
    for index, span in enumerate(spans):
        _validate_span(span, f"spans[{index}]")
    metrics = manifest["metrics"]
    if not isinstance(metrics, dict) or sorted(metrics) != [
        "counters",
        "gauges",
    ]:
        _fail("metrics", "must be {'counters': ..., 'gauges': ...}")
    _validate_metric_block(metrics["counters"], "metrics.counters")
    _validate_metric_block(metrics["gauges"], "metrics.gauges")


# ----------------------------------------------------------------------
# I/O and queries
# ----------------------------------------------------------------------


def write_manifest(path: str, manifest: Mapping[str, Any]) -> None:
    """Validate and atomically write *manifest* as pretty JSON."""
    validate_manifest(manifest)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def read_manifest(path: str) -> Dict[str, Any]:
    """Read and validate the manifest at *path*."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except OSError as exc:
        raise ManifestError(f"cannot read manifest {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ManifestError(f"{path} is not valid JSON: {exc}") from exc
    validate_manifest(manifest)
    return manifest


def manifest_stage_names(manifest: Mapping[str, Any]) -> List[str]:
    """Distinct span names in a manifest, sorted."""
    names = set()

    def visit(span: Mapping[str, Any]) -> None:
        names.add(str(span["name"]))
        for child in span["children"]:
            visit(child)

    for span in manifest["spans"]:
        visit(span)
    return sorted(names)
