"""Span-tree tracing with an activate/deactivate current-tracer scope.

A :class:`Tracer` records what a run *did* — nested stages with
wall-clock durations and peak-RSS deltas — and carries the run's
:class:`~repro.obs.metrics.MetricsRegistry`.  Instrumented modules do
not hold a tracer; they call the module-level helpers (:func:`span`,
:func:`add`, :func:`set_gauge`, :func:`annotate`), which dispatch to
the currently activated tracer or do nothing.  The inactive path is a
dictionary load and a ``None`` check, so instrumentation stays in the
code permanently at negligible cost.

Fork-based worker pools inherit the active tracer but their in-child
span mutations die with the child; parallel stages therefore measure
child durations explicitly and attach them in the parent via
:meth:`Tracer.attach_child`.
"""

from __future__ import annotations

import contextlib
import dataclasses
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.obs.hosttime import monotonic_now, peak_rss_kib
from repro.obs.metrics import MetricsRegistry, Number

AttrValue = Union[None, bool, int, float, str]


@dataclasses.dataclass
class Span:
    """One finished stage: name, attributes, duration, RSS growth."""

    name: str
    attributes: Dict[str, AttrValue]
    duration_s: float
    rss_delta_kib: Optional[int]
    children: List["Span"]

    def to_payload(self) -> Dict[str, Any]:
        """JSON-friendly form (the manifest's ``spans`` entries)."""
        return {
            "name": self.name,
            "attributes": dict(self.attributes),
            "duration_s": self.duration_s,
            "rss_delta_kib": self.rss_delta_kib,
            "children": [child.to_payload() for child in self.children],
        }

    def walk(self) -> Iterator[Tuple[int, "Span"]]:
        """Depth-first (depth, span) traversal, self included at 0."""
        stack: List[Tuple[int, Span]] = [(0, self)]
        while stack:
            depth, node = stack.pop()
            yield depth, node
            for child in reversed(node.children):
                stack.append((depth + 1, child))

    def stage_names(self) -> List[str]:
        """Every distinct stage name in this subtree, sorted."""
        return sorted({node.name for _, node in self.walk()})


#: Counters every traced run reports even when nothing incremented
#: them — a manifest consumer can rely on their presence.
BASELINE_COUNTERS = (
    "cache.hit",
    "cache.miss",
    "cache.store",
    "cache.invalidation",
    "feeds.truncated_records",
    "feeds.truncated_placements",
)


class Tracer:
    """Records a span tree plus counters/gauges for one run."""

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()
        for name in BASELINE_COUNTERS:
            self.metrics.add(name, 0)
        self.roots: List[Span] = []
        #: Open spans, outermost first; children attach to the last.
        self._open: List[Span] = []

    # -- recording -----------------------------------------------------

    @contextlib.contextmanager
    def span(self, name: str, **attributes: AttrValue) -> Iterator[Span]:
        """Record a stage around the ``with`` body.

        Duration and RSS delta are measured here (the only timing
        source is :mod:`repro.obs.hosttime`); nesting follows the
        dynamic call structure.
        """
        node = Span(
            name=name,
            attributes=dict(attributes),
            duration_s=0.0,
            rss_delta_kib=None,
            children=[],
        )
        self._attach(node)
        self._open.append(node)
        rss_before = peak_rss_kib()
        started = monotonic_now()
        try:
            yield node
        finally:
            node.duration_s = monotonic_now() - started
            rss_after = peak_rss_kib()
            if rss_before is not None and rss_after is not None:
                node.rss_delta_kib = rss_after - rss_before
            self._open.pop()

    def attach_child(
        self,
        name: str,
        duration_s: float,
        **attributes: AttrValue,
    ) -> Span:
        """Attach an externally measured span (e.g. from a fork worker).

        The child's clock never crosses the process boundary — workers
        report a duration they measured themselves through
        :mod:`repro.obs.hosttime`, and the parent records it here.
        """
        node = Span(
            name=name,
            attributes=dict(attributes),
            duration_s=duration_s,
            rss_delta_kib=None,
            children=[],
        )
        self._attach(node)
        return node

    def annotate(self, **attributes: AttrValue) -> None:
        """Set attributes on the innermost open span (no-op outside one)."""
        if self._open:
            self._open[-1].attributes.update(attributes)

    def _attach(self, node: Span) -> None:
        if self._open:
            self._open[-1].children.append(node)
        else:
            self.roots.append(node)

    # -- export --------------------------------------------------------

    def span_payloads(self) -> List[Dict[str, Any]]:
        """The root spans as JSON-friendly payloads."""
        return [root.to_payload() for root in self.roots]

    def stage_names(self) -> List[str]:
        """Every distinct stage name recorded, sorted."""
        names = set()
        for root in self.roots:
            names.update(root.stage_names())
        return sorted(names)


# ----------------------------------------------------------------------
# The current tracer and its no-op-safe helpers
# ----------------------------------------------------------------------

_ACTIVE: Optional[Tracer] = None


def current_tracer() -> Optional[Tracer]:
    """The tracer activated in this process, if any."""
    return _ACTIVE


@contextlib.contextmanager
def activate(tracer: Optional[Tracer]) -> Iterator[Optional[Tracer]]:
    """Make *tracer* current for the ``with`` body (None = no tracing).

    Scoped, not global-set: the previous tracer is restored on exit,
    so tests can nest activations safely.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = previous


@contextlib.contextmanager
def span(name: str, **attributes: AttrValue) -> Iterator[Optional[Span]]:
    """Record a stage on the current tracer; no-op when tracing is off."""
    tracer = _ACTIVE
    if tracer is None:
        yield None
        return
    with tracer.span(name, **attributes) as node:
        yield node


def add(name: str, value: Number = 1) -> None:
    """Increment a counter on the current tracer (no-op when off)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.metrics.add(name, value)


def set_gauge(name: str, value: Number) -> None:
    """Set a gauge on the current tracer (no-op when off)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.metrics.set_gauge(name, value)


def annotate(**attributes: AttrValue) -> None:
    """Annotate the innermost open span (no-op when off)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.annotate(**attributes)
