"""Counters and gauges for one run.

Counters accumulate (records ingested, cache hits); gauges hold the
most recent value (worker busy seconds, stealable idle time).  The
snapshot is sorted by name so manifests are stable under insertion
order — two runs that did the same work produce the same metric block
regardless of which instrumented site fired first.
"""

from __future__ import annotations

from typing import Dict, Union

Number = Union[int, float]


class MetricsRegistry:
    """A flat namespace of named counters and gauges."""

    def __init__(self) -> None:
        self._counters: Dict[str, Number] = {}
        self._gauges: Dict[str, Number] = {}

    def add(self, name: str, value: Number = 1) -> None:
        """Increment counter *name* by *value* (creating it at zero)."""
        self._counters[name] = self._counters.get(name, 0) + value

    def set_gauge(self, name: str, value: Number) -> None:
        """Set gauge *name* to *value*, replacing any previous value."""
        self._gauges[name] = value

    def counter(self, name: str) -> Number:
        """Current value of counter *name* (0 when never incremented)."""
        return self._counters.get(name, 0)

    def gauge(self, name: str) -> Number:
        """Current value of gauge *name* (0 when never set)."""
        return self._gauges.get(name, 0)

    def snapshot(self) -> Dict[str, Dict[str, Number]]:
        """A JSON-friendly frozen view, sorted by metric name."""
        return {
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
        }

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)})"
        )
