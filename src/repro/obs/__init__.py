"""Runtime observability: tracing, metrics, and run manifests.

``repro.obs`` is the *only* package allowed to read the host clock
(enforced by reprolint rule REP008).  Everything else in the system is
a deterministic function of ``(config, seed)``; observability is a
side channel layered on top of it:

* :class:`Tracer` records a span tree (stage name, attributes,
  wall-clock duration, peak-RSS delta) plus counters and gauges.
* Instrumented call sites use the module-level helpers — :func:`span`,
  :func:`add`, :func:`set_gauge`, :func:`annotate` — which are cheap
  no-ops unless a tracer has been activated with :func:`activate`.
* :mod:`repro.obs.manifest` freezes a finished run into a versioned
  JSON *run manifest* (config fingerprint, seed, git describe, span
  tree, metric snapshot) with a hand-rolled schema validator.

Two invariants keep observability from contaminating reproducibility:
host-time values never flow into any analysis artifact (spans and
metrics are written only to the manifest side channel), and manifests
are never part of artifact-cache keys or checkpoint payloads.  A
traced run is therefore byte-identical to an untraced one in every
table and figure.
"""

from repro.obs.hosttime import Stopwatch, peak_rss_kib, wall_now
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    Span,
    Tracer,
    activate,
    add,
    annotate,
    current_tracer,
    set_gauge,
    span,
)

__all__ = [
    "MetricsRegistry",
    "Span",
    "Stopwatch",
    "Tracer",
    "activate",
    "add",
    "annotate",
    "current_tracer",
    "peak_rss_kib",
    "set_gauge",
    "span",
    "wall_now",
]
