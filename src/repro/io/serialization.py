"""Feed dataset serialization (JSONL).

Format: the first line is a header object describing the feed; every
subsequent line is one sighting record:

    {"feed": "mx1", "type": "mx_honeypot", "has_volume": true}
    {"d": "pillstore99.info", "t": 12345}
    ...

Registered domains and integer minute timestamps only -- the lowest
common denominator the comparison operates on (Section 3).
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List

from repro.feeds.base import FeedDataset, FeedRecord, FeedType


class FeedFormatError(ValueError):
    """Raised when a feed file does not match the expected format."""


def write_feed_jsonl(dataset: FeedDataset, path: str) -> None:
    """Write *dataset* to *path* in JSONL form."""
    header = {
        "feed": dataset.name,
        "type": dataset.feed_type.value,
        "has_volume": dataset.has_volume,
    }
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(header) + "\n")
        for record in dataset.records:
            handle.write(
                json.dumps({"d": record.domain, "t": record.time}) + "\n"
            )


def read_feed_jsonl(path: str) -> FeedDataset:
    """Read a feed dataset written by :func:`write_feed_jsonl`."""
    with open(path, "r", encoding="utf-8") as handle:
        header_line = handle.readline()
        if not header_line.strip():
            raise FeedFormatError(f"{path}: missing header line")
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise FeedFormatError(f"{path}: bad header: {exc}") from exc
        for key in ("feed", "type"):
            if key not in header:
                raise FeedFormatError(f"{path}: header missing {key!r}")
        try:
            feed_type = FeedType(header["type"])
        except ValueError as exc:
            raise FeedFormatError(
                f"{path}: unknown feed type {header['type']!r}"
            ) from exc

        records: List[FeedRecord] = []
        for line_number, line in enumerate(handle, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
                records.append(FeedRecord(str(obj["d"]), int(obj["t"])))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                raise FeedFormatError(
                    f"{path}:{line_number}: bad record: {exc}"
                ) from exc

    return FeedDataset(
        name=str(header["feed"]),
        feed_type=feed_type,
        records=records,
        has_volume=bool(header.get("has_volume", True)),
    )


def write_feeds_dir(datasets: Dict[str, FeedDataset], directory: str) -> None:
    """Write every dataset as ``<directory>/<feed>.jsonl``."""
    os.makedirs(directory, exist_ok=True)
    for name, dataset in datasets.items():
        write_feed_jsonl(dataset, os.path.join(directory, f"{name}.jsonl"))


def read_feeds_dir(directory: str) -> Dict[str, FeedDataset]:
    """Read every ``*.jsonl`` feed file in *directory*."""
    datasets: Dict[str, FeedDataset] = {}
    for entry in sorted(os.listdir(directory)):
        if not entry.endswith(".jsonl"):
            continue
        dataset = read_feed_jsonl(os.path.join(directory, entry))
        datasets[dataset.name] = dataset
    return datasets


def roundtrip_equal(a: FeedDataset, b: FeedDataset) -> bool:
    """True if two datasets are record-for-record identical."""
    return (
        a.name == b.name
        and a.feed_type is b.feed_type
        and a.has_volume == b.has_volume
        and a.records == b.records
    )
