"""Serialization: feed datasets to/from JSONL, tables to CSV.

Real deployments receive feeds as files and archive analysis outputs;
this package provides the same affordances so the library can be used on
externally-supplied feed data (one JSON record per sighting) rather than
only on simulator output.  :mod:`repro.io.checkpoint` adds versioned,
atomically-written checkpoint files for resumable streaming runs.
"""

from repro.io.checkpoint import (
    CheckpointError,
    read_checkpoint,
    write_checkpoint,
)
from repro.io.serialization import (
    read_feed_jsonl,
    write_feed_jsonl,
    read_feeds_dir,
    write_feeds_dir,
)
from repro.io.csvexport import rows_to_csv, write_csv
from repro.io.url_ingest import (
    IngestStats,
    dedup_within_window,
    ingest_url_file,
    ingest_url_lines,
)

__all__ = [
    "CheckpointError",
    "IngestStats",
    "read_checkpoint",
    "write_checkpoint",
    "dedup_within_window",
    "ingest_url_file",
    "ingest_url_lines",
    "read_feed_jsonl",
    "read_feeds_dir",
    "rows_to_csv",
    "write_csv",
    "write_feed_jsonl",
    "write_feeds_dir",
]
