"""Content-addressed on-disk cache for expensive pipeline artifacts.

World construction and feed collection are pure functions of
``(ecosystem config, seed)``; rendered tables and figures additionally
depend only on deterministic analysis code.  This module caches such
artifacts under a content-addressed key so repeated runs -- benchmarks,
examples, the CLI -- skip the expensive stages entirely:

    key = SHA-256(kind, config fingerprint, seed,
                  CHECKPOINT_SCHEMA_PIN, code fingerprint)

The checkpoint schema pin and the package code fingerprint are part of
the key on purpose: payload-layout changes and source edits both make
old artifacts stale, so both re-address the cache -- an entry from an
older code generation can never be resurrected; it simply stops being
addressed.  Every entry also carries a format/version envelope
and is atomically written, so a torn write or a foreign file reads as
a cache *miss*, never as corrupt data.

Payloads are Python pickles.  The cache directory is a local,
per-user acceleration structure (like pip's or mypy's cache), not an
interchange format; do not point it at untrusted files.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pickle
import tempfile
from typing import Any, Iterator, Mapping, Optional, Tuple

from repro import obs
from repro.io.checkpoint import CHECKPOINT_SCHEMA_PIN

#: Envelope format marker for cache entries.
ARTIFACT_FORMAT = "repro-artifact"

#: Envelope version; bump on incompatible entry layout changes.
ARTIFACT_VERSION = 1

#: File suffix of every cache entry.
ARTIFACT_SUFFIX = ".art"


class FingerprintError(TypeError):
    """Raised when a value cannot be canonically fingerprinted."""


def _canonical(value: Any) -> Any:
    """A JSON-representable canonical form of *value*.

    Dataclasses become name-tagged field mappings, enums become
    ``ClassName.MEMBER`` strings, mappings and sets are sorted by the
    JSON encoding of their canonical keys/elements.  Unknown object
    types raise instead of silently fingerprinting their ``repr``,
    which could change between runs.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        canon = {
            field.name: _canonical(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
        canon["@type"] = type(value).__name__
        return canon
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if isinstance(value, Mapping):
        entries = [
            [_canonical(key), _canonical(item)]
            for key, item in value.items()
        ]
        entries.sort(key=lambda pair: json.dumps(pair[0], sort_keys=True))
        return {"@map": entries}
    if isinstance(value, (set, frozenset)):
        elements = [_canonical(item) for item in value]
        elements.sort(key=lambda e: json.dumps(e, sort_keys=True))
        return {"@set": elements}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise FingerprintError(
        f"cannot fingerprint value of type {type(value).__name__}"
    )


def fingerprint(value: Any) -> str:
    """Stable SHA-256 hex fingerprint of any canonicalizable value."""
    canon = json.dumps(
        _canonical(value), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


#: Process-cached result of :func:`code_fingerprint`.
_CODE_PIN: Optional[str] = None


def code_fingerprint() -> str:
    """SHA-256 over every ``repro`` package source file.

    Cached artifacts are pure functions of ``(config, seed, code)`` --
    the code is as much an input as the seed.  Without it in the
    address, editing an algorithm and re-running would serve the *old*
    algorithm's output from a warm cache: plausible numbers, silently
    stale.  Any source edit therefore re-addresses every artifact;
    orphaned entries are simply never read again.

    Hashed once per process (file order is the sorted relative path,
    so the fingerprint is machine-independent for identical sources).
    """
    global _CODE_PIN
    if _CODE_PIN is None:
        package_root = os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))
        )
        digest = hashlib.sha256()
        for dirpath, dirnames, filenames in os.walk(package_root):
            dirnames[:] = sorted(
                d for d in dirnames if d != "__pycache__"
            )
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(dirpath, name)
                relpath = os.path.relpath(path, package_root)
                digest.update(relpath.encode("utf-8"))
                digest.update(b"\x00")
                with open(path, "rb") as handle:
                    digest.update(handle.read())
                digest.update(b"\x00")
        # Fork-safe memo: the value is a pure function of the on-disk
        # sources, so parent and worker always compute the same pin; a
        # worker's write landing in its CoW copy only costs that
        # worker a recompute, never a divergent key.
        _CODE_PIN = digest.hexdigest()  # reprolint: disable=REP009 -- idempotent process-local memo
    return _CODE_PIN


def artifact_key(
    kind: str,
    config_fingerprint: str,
    seed: int,
    schema_pin: str = CHECKPOINT_SCHEMA_PIN,
    extra: str = "",
    code_pin: Optional[str] = None,
) -> str:
    """The content address of one artifact.

    *kind* names the payload family (``"pipeline-state"``,
    ``"render-all"``, ...); *extra* discriminates variants within a
    kind (e.g. a non-standard collector suite).  *code_pin* defaults
    to the live :func:`code_fingerprint`, so source edits implicitly
    invalidate every cached artifact.
    """
    material = json.dumps(
        {
            "kind": kind,
            "config": config_fingerprint,
            "seed": seed,
            "schema_pin": schema_pin,
            "extra": extra,
            "code": code_fingerprint() if code_pin is None else code_pin,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def default_cache_dir() -> str:
    """The cache location used when the caller does not pick one.

    ``$REPRO_CACHE_DIR`` wins; otherwise ``$XDG_CACHE_HOME/repro`` or
    ``~/.cache/repro``.
    """
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return override
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro")


class ArtifactCache:
    """A directory of content-addressed, version-enveloped pickles."""

    def __init__(self, root: str):
        self.root = root

    def path_for(self, key: str) -> str:
        """Entry path for *key* (two-level fan-out like git objects)."""
        return os.path.join(self.root, key[:2], key + ARTIFACT_SUFFIX)

    def load(self, key: str) -> Optional[Any]:
        """The payload stored under *key*, or None on any kind of miss.

        Unreadable, truncated, foreign-format and version-mismatched
        entries all count as misses: the caller recomputes and the bad
        entry is overwritten on the next :meth:`store`.  Hits and
        misses are counted on the active tracer (side channel only --
        the payload is identical either way).
        """
        payload = self._load_unmetered(key)
        obs.add("cache.hit" if payload is not None else "cache.miss")
        return payload

    def _load_unmetered(self, key: str) -> Optional[Any]:
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                envelope = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, ValueError,
                TypeError, AttributeError, ImportError, IndexError):
            return None
        if not isinstance(envelope, dict):
            return None
        if envelope.get("format") != ARTIFACT_FORMAT:
            return None
        if envelope.get("version") != ARTIFACT_VERSION:
            return None
        if envelope.get("key") != key:
            return None
        return envelope.get("payload")

    def store(self, key: str, payload: Any) -> str:
        """Atomically write *payload* under *key*; returns the path."""
        path = self.path_for(key)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        envelope = {
            "format": ARTIFACT_FORMAT,
            "version": ARTIFACT_VERSION,
            "key": key,
            "payload": payload,
        }
        fd, tmp_path = tempfile.mkstemp(
            prefix=key[:8] + ".", suffix=".tmp", dir=directory
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(envelope, handle, pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        obs.add("cache.store")
        return path

    def contains(self, key: str) -> bool:
        """True when a loadable entry exists for *key* (not metered)."""
        return self._load_unmetered(key) is not None

    def invalidate(self, key: str) -> bool:
        """Remove the entry for *key*; True if one was removed."""
        try:
            os.unlink(self.path_for(key))
        except OSError:
            return False
        obs.add("cache.invalidation")
        return True

    def keys(self) -> Iterator[str]:
        """Keys of every entry currently in the cache directory."""
        if not os.path.isdir(self.root):
            return
        for subdir in sorted(os.listdir(self.root)):
            subpath = os.path.join(self.root, subdir)
            if not os.path.isdir(subpath) or len(subdir) != 2:
                continue
            for name in sorted(os.listdir(subpath)):
                if name.endswith(ARTIFACT_SUFFIX):
                    yield name[: -len(ARTIFACT_SUFFIX)]

    def clear(self) -> int:
        """Remove every cache entry; returns the number removed."""
        removed = 0
        for key in list(self.keys()):
            if self.invalidate(key):
                removed += 1
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def __repr__(self) -> str:
        return f"ArtifactCache({self.root!r})"


__all__: Tuple[str, ...] = (
    "ARTIFACT_FORMAT",
    "ARTIFACT_VERSION",
    "ArtifactCache",
    "FingerprintError",
    "artifact_key",
    "code_fingerprint",
    "default_cache_dir",
    "fingerprint",
)
