"""Ingest provider-shipped URL feeds.

Many providers ship full spam-advertised URLs rather than domains
(Section 2); comparisons run at the registered-domain level, so this
module normalizes raw URL records into a :class:`FeedDataset`, counting
what was dropped and why — the kind of bookkeeping Section 3.3 asks
researchers to report.

Input format (JSONL): one object per sighting,
``{"url": "http://x.example.com/p", "t": 12345}``.
Bare hostnames are accepted too (the domain-only feed style):
``{"host": "x.example.com", "t": 12345}``.
"""

from __future__ import annotations

import dataclasses
import json
import math
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro import obs
from repro.domains.parse import try_registered_domain
from repro.domains.url import try_domain_of_url
from repro.feeds.base import FeedDataset, FeedRecord, FeedType


@dataclasses.dataclass
class IngestStats:
    """What happened to the raw records during normalization."""

    accepted: int = 0
    bad_json: int = 0
    missing_fields: int = 0
    unparseable_url: int = 0
    unparseable_host: int = 0

    @property
    def total(self) -> int:
        """Total raw records examined."""
        return (
            self.accepted
            + self.bad_json
            + self.missing_fields
            + self.unparseable_url
            + self.unparseable_host
        )

    @property
    def drop_fraction(self) -> float:
        """Share of raw records dropped during normalization."""
        if self.total == 0:
            return 0.0
        return 1.0 - self.accepted / self.total


def normalize_record(obj: Mapping[str, Any]) -> Tuple[Optional[FeedRecord], str]:
    """Normalize one raw record; returns (record-or-None, reason).

    Reasons: ``"ok"``, ``"missing_fields"``, ``"unparseable_url"``,
    ``"unparseable_host"``.
    """
    t = obj.get("t")
    # bool is an int subclass and JSON accepts bare NaN/Infinity, so a
    # plain isinstance check would wave through timestamps that either
    # lie about their type or blow up in int(t) below.  All of them are
    # drops, not crashes.
    if isinstance(t, bool) or not isinstance(t, (int, float)):
        return None, "missing_fields"
    if isinstance(t, float) and not math.isfinite(t):
        return None, "missing_fields"
    if "url" in obj:
        domain = try_domain_of_url(str(obj["url"]))
        if domain is None:
            return None, "unparseable_url"
        return FeedRecord(domain, int(t)), "ok"
    if "host" in obj:
        domain = try_registered_domain(str(obj["host"]))
        if domain is None:
            return None, "unparseable_host"
        return FeedRecord(domain, int(t)), "ok"
    return None, "missing_fields"


def ingest_url_lines(
    lines: Iterable[str],
    name: str,
    feed_type: FeedType = FeedType.MX_HONEYPOT,
    has_volume: bool = True,
) -> Tuple[FeedDataset, IngestStats]:
    """Normalize raw JSONL lines into a dataset plus drop statistics."""
    stats = IngestStats()
    records: List[FeedRecord] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError:
            stats.bad_json += 1
            continue
        if not isinstance(obj, dict):
            stats.bad_json += 1
            continue
        record, reason = normalize_record(obj)
        if record is None:
            setattr(stats, reason, getattr(stats, reason) + 1)
            continue
        stats.accepted += 1
        records.append(record)
    obs.add("ingest.accepted", stats.accepted)
    obs.add("ingest.dropped", stats.total - stats.accepted)
    dataset = FeedDataset(name, feed_type, records, has_volume)
    return dataset, stats


def ingest_url_file(
    path: str,
    name: str,
    feed_type: FeedType = FeedType.MX_HONEYPOT,
    has_volume: bool = True,
) -> Tuple[FeedDataset, IngestStats]:
    """Normalize a raw URL-feed file into a dataset plus statistics."""
    with open(path, "r", encoding="utf-8") as handle:
        return ingest_url_lines(handle, name, feed_type, has_volume)


def dedup_within_window(
    dataset: FeedDataset, window_minutes: int
) -> FeedDataset:
    """Provider-style de-duplication (Section 2).

    Some providers collapse repeated sightings of a domain inside a
    time window into one record; this reproduces that reporting style
    so its effect on volume analyses can be studied.
    """
    if window_minutes <= 0:
        raise ValueError("window must be positive")
    last_kept: Dict[str, int] = {}
    kept: List[FeedRecord] = []
    # Sorting by time alone leaves same-minute sightings of *different*
    # domains in input-file order, so the kept-record order (and every
    # order-sensitive consumer downstream) would change with the
    # provider's line order.  The (time, domain) key makes the output a
    # pure function of the record multiset.
    for record in sorted(dataset.records, key=lambda r: (r.time, r.domain)):
        previous = last_kept.get(record.domain)
        if previous is not None and record.time - previous < window_minutes:
            continue
        last_kept[record.domain] = record.time
        kept.append(record)
    obs.add("dedup.kept", len(kept))
    obs.add("dedup.dropped", len(dataset.records) - len(kept))
    return FeedDataset(
        dataset.name, dataset.feed_type, kept, dataset.has_volume
    )
