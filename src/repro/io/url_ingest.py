"""Ingest provider-shipped URL feeds.

Many providers ship full spam-advertised URLs rather than domains
(Section 2); comparisons run at the registered-domain level, so this
module normalizes raw URL records into a :class:`FeedDataset`, counting
what was dropped and why — the kind of bookkeeping Section 3.3 asks
researchers to report.

Input format (JSONL): one object per sighting,
``{"url": "http://x.example.com/p", "t": 12345}``.
Bare hostnames are accepted too (the domain-only feed style):
``{"host": "x.example.com", "t": 12345}``.

Every normalized record additionally passes the sighting store's
silver-tier gate (:func:`repro.store.silver.validate_sighting`), so
the drop accounting here and the store's bronze-tier provenance can
never disagree about what was kept: a record the store would refuse
(e.g. a timestamp outside the signed-64-bit storage range) is counted
as ``invalid_sighting`` here and never reaches a dataset.  With a
store attached, every raw line -- parseable or not -- lands as a
bronze row with its status and reason.
"""

from __future__ import annotations

import dataclasses
import json
import math
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro import obs
from repro.domains.parse import try_registered_domain
from repro.domains.url import try_domain_of_url
from repro.feeds.base import FeedDataset, FeedRecord, FeedType
from repro.io.artifacts import fingerprint
from repro.store.sightings import RunWriter, SightingStore
from repro.store.silver import validate_sighting


@dataclasses.dataclass
class IngestStats:
    """What happened to the raw records during normalization."""

    accepted: int = 0
    bad_json: int = 0
    missing_fields: int = 0
    unparseable_url: int = 0
    unparseable_host: int = 0
    #: Parsed fine but refused by the store's silver-tier validation
    #: (malformed domain or a timestamp outside int64 storage bounds).
    invalid_sighting: int = 0

    @property
    def total(self) -> int:
        """Total raw records examined."""
        return (
            self.accepted
            + self.bad_json
            + self.missing_fields
            + self.unparseable_url
            + self.unparseable_host
            + self.invalid_sighting
        )

    @property
    def drop_fraction(self) -> float:
        """Share of raw records dropped during normalization."""
        if self.total == 0:
            return 0.0
        return 1.0 - self.accepted / self.total


def normalize_record(obj: Mapping[str, Any]) -> Tuple[Optional[FeedRecord], str]:
    """Normalize one raw record; returns (record-or-None, reason).

    Reasons: ``"ok"``, ``"missing_fields"``, ``"unparseable_url"``,
    ``"unparseable_host"``.
    """
    t = obj.get("t")
    # bool is an int subclass and JSON accepts bare NaN/Infinity, so a
    # plain isinstance check would wave through timestamps that either
    # lie about their type or blow up in int(t) below.  All of them are
    # drops, not crashes.
    if isinstance(t, bool) or not isinstance(t, (int, float)):
        return None, "missing_fields"
    if isinstance(t, float) and not math.isfinite(t):
        return None, "missing_fields"
    if "url" in obj:
        domain = try_domain_of_url(str(obj["url"]))
        if domain is None:
            return None, "unparseable_url"
        return FeedRecord(domain, int(t)), "ok"
    if "host" in obj:
        domain = try_registered_domain(str(obj["host"]))
        if domain is None:
            return None, "unparseable_host"
        return FeedRecord(domain, int(t)), "ok"
    return None, "missing_fields"


def ingest_url_lines(
    lines: Iterable[str],
    name: str,
    feed_type: FeedType = FeedType.MX_HONEYPOT,
    has_volume: bool = True,
    writer: Optional[RunWriter] = None,
) -> Tuple[FeedDataset, IngestStats]:
    """Normalize raw JSONL lines into a dataset plus drop statistics.

    With a *writer* attached, every raw line lands in the sighting
    store: accepted records as bronze + silver rows, drops as bronze
    rows carrying their rejection reason.  The store's validation is
    the same :func:`validate_sighting` gate applied here, so the
    ``IngestStats`` drop totals and the store's bronze accounting
    always agree.
    """
    stats = IngestStats()
    records: List[FeedRecord] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        record: Optional[FeedRecord] = None
        try:
            obj = json.loads(line)
        except json.JSONDecodeError:
            reason: Optional[str] = "bad_json"
        else:
            if not isinstance(obj, dict):
                reason = "bad_json"
            else:
                record, normalize_reason = normalize_record(obj)
                reason = None if record is not None else normalize_reason
        if record is not None:
            # The silver gate keeps ingest accounting and store
            # accounting structurally identical: anything the store
            # would refuse is dropped here too, under one bucket.
            silver_reason = reason = validate_sighting(
                record.domain, record.time
            )
            if silver_reason is not None:
                record = None
                stats.invalid_sighting += 1
        elif reason == "bad_json":
            stats.bad_json += 1
        else:
            assert reason is not None
            setattr(stats, reason, getattr(stats, reason) + 1)
        if writer is not None:
            writer.land_raw(
                name,
                line,
                record.domain if record is not None else None,
                record.time if record is not None else None,
                reject_reason=reason,
            )
        if record is not None:
            stats.accepted += 1
            records.append(record)
    obs.add("ingest.accepted", stats.accepted)
    obs.add("ingest.dropped", stats.total - stats.accepted)
    if writer is not None:
        writer.finish()
    dataset = FeedDataset(name, feed_type, records, has_volume)
    return dataset, stats


def ingest_url_file(
    path: str,
    name: str,
    feed_type: FeedType = FeedType.MX_HONEYPOT,
    has_volume: bool = True,
    store: Optional[SightingStore] = None,
) -> Tuple[FeedDataset, IngestStats]:
    """Normalize a raw URL-feed file into a dataset plus statistics.

    With a *store*, the file's records land under a content-derived
    run key, so re-ingesting the same file into the same store is a
    no-op while a changed file lands as a new run.
    """
    with open(path, "r", encoding="utf-8") as handle:
        content = handle.read()
    writer = None
    if store is not None:
        content_fingerprint = fingerprint(content)
        writer = store.open_run(
            f"ingest:{name}:{content_fingerprint}",
            0,
            content_fingerprint,
            "ingest",
        )
    return ingest_url_lines(
        content.splitlines(), name, feed_type, has_volume, writer=writer
    )


def dedup_within_window(
    dataset: FeedDataset, window_minutes: int
) -> FeedDataset:
    """Provider-style de-duplication (Section 2).

    Some providers collapse repeated sightings of a domain inside a
    time window into one record; this reproduces that reporting style
    so its effect on volume analyses can be studied.
    """
    if window_minutes <= 0:
        raise ValueError("window must be positive")
    last_kept: Dict[str, int] = {}
    kept: List[FeedRecord] = []
    # Sorting by time alone leaves same-minute sightings of *different*
    # domains in input-file order, so the kept-record order (and every
    # order-sensitive consumer downstream) would change with the
    # provider's line order.  The (time, domain) key makes the output a
    # pure function of the record multiset.
    for record in sorted(dataset.records, key=lambda r: (r.time, r.domain)):
        previous = last_kept.get(record.domain)
        if previous is not None and record.time - previous < window_minutes:
            continue
        last_kept[record.domain] = record.time
        kept.append(record)
    obs.add("dedup.kept", len(kept))
    obs.add("dedup.dropped", len(dataset.records) - len(kept))
    return FeedDataset(
        dataset.name, dataset.feed_type, kept, dataset.has_volume
    )
