"""First-class columnar records: one string column, one int64 column.

PR 3 introduced the packed ``(joined-string, int64-array)`` blob as a
transport format for parallel workers; this module promotes it to the
canonical in-memory layout for sighting data.  A :class:`ColumnBlock`
holds a domain column (``list`` of ``str``) and a time column
(``array('q')``), and every hot per-record operation -- window
filtering, time sorting, uniques, per-domain counts, first/last
sightings -- is an *array-at-a-time kernel* built from C-speed
primitives (``zip`` into ``dict``, ``Counter``, ``set``, slice copies),
with zero third-party dependencies.

Determinism contract: dict-returning kernels reproduce not just the
mapping but the **insertion order** of the per-record loops they
replace (first-appearance order), because downstream consumers iterate
those dicts and their output order is part of the byte-identical
guarantee.  The fast first/last kernels additionally require the time
column to be non-decreasing; :func:`first_last_seen` checks and falls
back to the straight loop otherwise.
"""

from __future__ import annotations

from array import array
from collections import Counter
from itertools import compress
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Set, Tuple

#: The array typecode of the time column: signed 64-bit, matching the
#: on-disk/pipe blob layout.
TIME_TYPECODE = "q"


def is_time_sorted(times: Sequence[int]) -> bool:
    """True when *times* is non-decreasing.

    Implemented as a compare against a sorted copy: Timsort detects an
    already-sorted run in one C pass, which is far cheaper than a
    per-element Python loop at the million-record scale.
    """
    values = list(times)
    return values == sorted(values)


def value_counts(domains: Sequence[str]) -> Dict[str, float]:
    """Per-domain record counts as floats, in first-appearance order.

    ``Counter`` iterates the column in C and preserves first-encounter
    insertion order; values are floats because the record-backed
    accumulation historically produced ``5.0``, and the distinction
    can leak into serialized artifacts.
    """
    return {domain: float(n) for domain, n in Counter(domains).items()}


def first_last_seen(
    domains: Sequence[str],
    times: Sequence[int],
    chronological: Optional[bool] = None,
) -> Tuple[Dict[str, int], Dict[str, int]]:
    """(first-seen, last-seen) time per domain, first-appearance order.

    Fast path (time-sorted columns): ``dict(zip(domains, times))``
    keeps the *first* insertion position of every key but the *last*
    value written -- exactly last-seen in first-appearance order.  The
    same zip over the reversed columns yields first-seen values, which
    are then re-keyed in the last-seen dict's order.  Both passes run
    entirely in C.  Unsorted columns take the original per-record loop.
    """
    if chronological is None:
        chronological = is_time_sorted(times)
    if not chronological:
        first: Dict[str, int] = {}
        last: Dict[str, int] = {}
        for domain, t in zip(domains, times):
            prev = first.get(domain)
            if prev is None or t < prev:
                first[domain] = t
            prev = last.get(domain)
            if prev is None or t > prev:
                last[domain] = t
        return first, last
    last_sorted = dict(zip(domains, times))
    by_last_occurrence = dict(zip(reversed(domains), reversed(times)))
    first_sorted = {d: by_last_occurrence[d] for d in last_sorted}
    return first_sorted, last_sorted


class PackedBlock(NamedTuple):
    """A :class:`ColumnBlock` flattened to two blobs for transport.

    Pickling one joined string and one int64 array is close to a
    memcpy; pickling hundreds of thousands of small string and int
    objects is not.  Domain names cannot contain the newline separator
    (they are DNS labels), which :meth:`unpack` re-checks via
    column-length agreement.
    """

    n_records: int
    domain_blob: bytes
    time_blob: bytes

    def unpack(self) -> "ColumnBlock":
        """Restore the columns; raises on any length mismatch."""
        domains = (
            self.domain_blob.decode("utf-8").split("\n")
            if self.domain_blob
            else []
        )
        times = array(TIME_TYPECODE)
        times.frombytes(self.time_blob)
        if len(domains) != self.n_records or len(times) != self.n_records:
            raise ValueError(
                "packed columns do not round-trip to "
                f"{self.n_records} records"
            )
        return ColumnBlock(domains, times)


class ColumnBlock:
    """An aligned (domain, time) column pair with columnar kernels.

    Treat instances as immutable: kernels return new blocks (or
    ``self`` when a no-op), and the chronological flag is computed once
    and cached.  Construction validates column alignment; a known
    time-sortedness can be passed to skip the check that the fast
    first/last kernels would otherwise run.
    """

    __slots__ = ("domains", "times", "_chronological")

    def __init__(
        self,
        domains: List[str],
        times: "array[int]",
        chronological: Optional[bool] = None,
    ):
        if len(domains) != len(times):
            raise ValueError("domain and time columns differ in length")
        self.domains = domains
        self.times = times
        self._chronological = chronological

    @classmethod
    def from_pairs(
        cls, domains: Iterable[str], times: Iterable[int]
    ) -> "ColumnBlock":
        """Build a block from two parallel iterables."""
        return cls(list(domains), array(TIME_TYPECODE, times))

    @classmethod
    def from_records(
        cls, records: Sequence[Tuple[str, int]]
    ) -> "ColumnBlock":
        """Decompose (domain, time) tuples into columns (one C pass)."""
        if not records:
            return cls([], array(TIME_TYPECODE))
        domains, times = zip(*records)
        return cls(list(domains), array(TIME_TYPECODE, times))

    def __len__(self) -> int:
        return len(self.times)

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------

    def is_chronological(self) -> bool:
        """True when the time column is non-decreasing (cached)."""
        if self._chronological is None:
            self._chronological = is_time_sorted(self.times)
        return self._chronological

    def window(self, start: int, end: int) -> "ColumnBlock":
        """Records with ``start <= time < end`` (relative order kept)."""
        times = self.times
        if not times:
            return self
        if start <= min(times) and max(times) < end:
            return self  # common case: nothing to drop
        mask = [start <= t < end for t in times]
        return ColumnBlock(
            list(compress(self.domains, mask)),
            array(TIME_TYPECODE, compress(times, mask)),
            # Dropping records cannot unsort a sorted column; an
            # unknown or unsorted input stays unknown.
            chronological=True if self._chronological else None,
        )

    def sorted_by_time(self) -> "ColumnBlock":
        """A stable time-sort of the block (ties keep input order).

        Skips the work only when sortedness is already *known*: probing
        an unknown block would cost a full throwaway sort, while
        Timsort on input that happens to be sorted is near-linear
        anyway.
        """
        if self._chronological:
            return self
        times = self.times
        order = sorted(range(len(times)), key=times.__getitem__)
        return ColumnBlock(
            list(map(self.domains.__getitem__, order)),
            array(TIME_TYPECODE, map(times.__getitem__, order)),
            chronological=True,
        )

    def unique_domains(self) -> Set[str]:
        """Distinct domains in the block."""
        return set(self.domains)

    def value_counts(self) -> Dict[str, float]:
        """Per-domain record counts (first-appearance order, floats)."""
        return value_counts(self.domains)

    def first_last_seen(self) -> Tuple[Dict[str, int], Dict[str, int]]:
        """(first-seen, last-seen) maps in first-appearance order."""
        return first_last_seen(
            self.domains, self.times, self.is_chronological()
        )

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def pack(self) -> PackedBlock:
        """Flatten to two byte blobs (see :class:`PackedBlock`)."""
        return PackedBlock(
            n_records=len(self.domains),
            domain_blob="\n".join(self.domains).encode("utf-8"),
            time_blob=self.times.tobytes()
            if self.times.typecode == TIME_TYPECODE
            else array(TIME_TYPECODE, self.times).tobytes(),
        )


class ColumnBuilder:
    """Append-only accumulator that grows a :class:`ColumnBlock`.

    Collectors accumulate sightings here instead of building a
    ``FeedRecord`` tuple per message: a burst of *n* sightings of one
    domain costs one ``[domain] * n`` list repeat and one array extend
    -- two C calls -- instead of *n* tuple allocations.
    """

    __slots__ = ("_domains", "_times")

    def __init__(self) -> None:
        self._domains: List[str] = []
        self._times: "array[int]" = array(TIME_TYPECODE)

    def __len__(self) -> int:
        return len(self._times)

    def append(self, domain: str, time: int) -> None:
        """Add one sighting."""
        self._domains.append(domain)
        self._times.append(time)

    def extend_burst(self, domain: str, times: Sequence[int]) -> None:
        """Add many sightings of one domain (the scatter hot path)."""
        self._domains += [domain] * len(times)
        self._times.extend(times)

    def extend_pairs(
        self, domains: Iterable[str], times: Iterable[int]
    ) -> None:
        """Add parallel columns of sightings."""
        before = len(self._domains)
        self._domains.extend(domains)
        self._times.extend(times)
        if len(self._domains) != len(self._times):  # pragma: no cover
            del self._domains[before:]
            raise ValueError("domain and time iterables differ in length")

    def build(self) -> ColumnBlock:
        """The accumulated block (the builder must not be reused)."""
        return ColumnBlock(self._domains, self._times)
