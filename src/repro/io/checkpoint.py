"""Versioned checkpoint files for resumable analysis runs.

A checkpoint is a single JSON document wrapped in an envelope that
records the format name and version, so a reader can fail loudly on
foreign or stale files instead of resuming from garbage:

    {"format": "repro-checkpoint", "version": 1,
     "kind": "stream-engine", "payload": {...}}

Writes are atomic (temp file + ``os.replace``) so a run killed mid-save
never leaves a truncated checkpoint behind -- the previous complete
checkpoint, if any, survives.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, Sequence, Tuple

#: Envelope format marker.
CHECKPOINT_FORMAT = "repro-checkpoint"

#: Current envelope version; bump on incompatible payload changes.
CHECKPOINT_VERSION = 1

#: Top-level payload fields of every known checkpoint kind.  This is
#: the schema contract between writers (``checkpoint_payload`` in
#: ``repro.stream.engine``) and readers: reprolint's REP006 checks
#: that each producer's payload dict matches its entry here.
CHECKPOINT_SCHEMAS: Dict[str, Tuple[str, ...]] = {
    "stream-engine": ("seed", "feed_order", "cursors", "state"),
    # Cursor-only checkpoint for store-backed streams: the accumulator
    # state lives in the sighting store, so the checkpoint shrinks to
    # the merge cursors plus a pointer at the store file and run key.
    "stream-cursor": ("seed", "feed_order", "cursors", "store"),
}

#: Fingerprint pinning (CHECKPOINT_VERSION, CHECKPOINT_SCHEMAS).
#: REP006 recomputes this from the declarations above; editing the
#: schema without bumping the version (and re-pinning) fails the lint.
#: Regenerate with ``python -m repro lint --schema-pin``.
CHECKPOINT_SCHEMA_PIN = "v1:1ad8abb2e2b2"


class CheckpointError(ValueError):
    """Raised when a checkpoint file cannot be read or validated."""


def write_checkpoint(path: str, kind: str, payload: Dict[str, Any]) -> None:
    """Atomically write *payload* as a *kind* checkpoint at *path*."""
    envelope = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "kind": kind,
        "payload": payload,
    }
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(envelope, handle, separators=(",", ":"))
            handle.write("\n")
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def read_checkpoint(path: str, kind: str) -> Dict[str, Any]:
    """Read and validate a *kind* checkpoint; returns its payload."""
    _, payload = read_checkpoint_any(path, (kind,))
    return payload


def read_checkpoint_any(
    path: str, kinds: Sequence[str]
) -> Tuple[str, Dict[str, Any]]:
    """Read a checkpoint that may be any of *kinds*.

    Returns ``(kind, payload)`` so callers that accept several
    checkpoint shapes (e.g. full stream-engine state vs. store-backed
    cursors) can dispatch on what the file actually holds.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            envelope = json.load(handle)
    except OSError as exc:
        raise CheckpointError(f"{path}: cannot read checkpoint: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"{path}: not a checkpoint file: {exc}") from exc
    if not isinstance(envelope, dict):
        raise CheckpointError(f"{path}: checkpoint envelope must be an object")
    if envelope.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"{path}: unrecognized format {envelope.get('format')!r}"
        )
    version = envelope.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path}: unsupported checkpoint version {version!r} "
            f"(expected {CHECKPOINT_VERSION})"
        )
    kind = envelope.get("kind")
    if kind not in kinds:
        expected = " or ".join(repr(k) for k in kinds)
        raise CheckpointError(
            f"{path}: checkpoint kind {kind!r} does not match expected "
            f"{expected}"
        )
    payload = envelope.get("payload")
    if not isinstance(payload, dict):
        raise CheckpointError(f"{path}: checkpoint payload must be an object")
    return str(kind), payload
