"""CSV export of analysis rows (dataclass lists)."""

from __future__ import annotations

import csv
import dataclasses
import io
from typing import Any, List, Sequence


def rows_to_csv(rows: Sequence[Any]) -> str:
    """Render a list of dataclass instances as CSV text.

    All rows must share one dataclass type; field names become the
    header.  Raises ``ValueError`` on an empty or mixed list.
    """
    if not rows:
        raise ValueError("no rows to export")
    first = rows[0]
    if not dataclasses.is_dataclass(first):
        raise ValueError("rows must be dataclass instances")
    row_type = type(first)
    for row in rows:
        if type(row) is not row_type:
            raise ValueError("mixed row types in CSV export")
    fields: List[str] = [f.name for f in dataclasses.fields(row_type)]
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(fields)
    for row in rows:
        writer.writerow([getattr(row, name) for name in fields])
    return buffer.getvalue()


def write_csv(rows: Sequence[Any], path: str) -> None:
    """Write :func:`rows_to_csv` output to *path*."""
    text = rows_to_csv(rows)
    with open(path, "w", encoding="utf-8", newline="") as handle:
        handle.write(text)
