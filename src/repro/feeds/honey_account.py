"""Seeded honey-account feeds (Ac1, Ac2).

Honey accounts are mailboxes created across many providers and seeded
onto the vectors spammers harvest (forums, web pages, mailing lists).
They capture harvest-addressed campaigns well, brute-force campaigns
partially, and -- since the accounts are not real people -- nothing that
targets purchased lists or social graphs (Section 3.2).
"""

from __future__ import annotations

import dataclasses
import math
import random

from repro.ecosystem.entities import AddressStrategy, CampaignClass
from repro.ecosystem.world import World
from repro.feeds.base import FeedCollector, FeedDataset, FeedType
from repro.feeds.capture import (
    campaign_inclusion,
    capture_campaign_into,
    poisson,
    scatter_times,
)
from repro.io.columns import ColumnBuilder
from repro.stats.rng import derive_rng


@dataclasses.dataclass(frozen=True)
class HoneyAccountConfig:
    """Tuning of one honey-account network.

    Seeding quality is the whole game: a well-seeded network
    (high ``harvested_inclusion``) lands on many harvest lists; a poorly
    seeded one sees few campaigns -- though each included campaign may
    still hammer the accounts (``catch_rate``), which is how a feed ends
    up with huge volume over very few domains (the paper's Ac2).
    """

    name: str
    harvested_inclusion: float
    brute_inclusion: float
    catch_rate: float
    #: When positive, inclusion probability is additionally scaled by
    #: ``volume / (volume + volume_bias_scale)``: a thin or oddly-seeded
    #: account network only lands on the *big* harvest lists, so it sees
    #: few campaigns -- but loud ones (the paper's Ac2 signature: huge
    #: sample count over very few domains).
    volume_bias_scale: float = 0.0
    #: Lognormal sigma of per-campaign catch-rate jitter.  A thin,
    #: oddly-churned account network over- and under-samples campaigns
    #: erratically, distorting its volume proportions (the paper's Ac2
    #: is "most unlike the rest" in Figures 7 and 8).
    catch_jitter_sigma: float = 0.0
    benign_fp_domains: int = 50
    benign_fp_volume: float = 250.0
    chaff_factor: float = 1.0
    #: Maximum list-traversal phase (see MxHoneypotConfig).
    onset_max_fraction: float = 0.10

    def __post_init__(self) -> None:
        for field in ("harvested_inclusion", "brute_inclusion"):
            value = getattr(self, field)
            if not (0.0 <= value <= 1.0):
                raise ValueError(f"{field} out of range")
        if self.catch_rate < 0:
            raise ValueError("catch_rate must be non-negative")


class HoneyAccountFeed(FeedCollector):
    """One seeded honey-account feed collector."""

    feed_type = FeedType.HONEY_ACCOUNT
    has_volume = True

    def __init__(self, config: HoneyAccountConfig, seed: int):
        self.config = config
        self.name = config.name
        self._seed = seed

    def _rng(self, label: str) -> random.Random:
        return derive_rng(self._seed, f"feed.{self.name}.{label}")

    def _inclusion_probability(self, strategy: AddressStrategy) -> float:
        if strategy is AddressStrategy.HARVESTED:
            return self.config.harvested_inclusion
        if strategy is AddressStrategy.BRUTE_FORCE:
            return self.config.brute_inclusion
        # Purchased lists and social-graph targeting never reach
        # accounts that are not real users.
        return 0.0

    def collect(self, world: World) -> FeedDataset:
        """Capture the harvest/brute-force slice of the world."""
        cfg = self.config
        builder = ColumnBuilder()
        rng_inclusion = self._rng("inclusion")
        rng_capture = self._rng("capture")

        for campaign in world.campaigns:
            if campaign.campaign_class is CampaignClass.DGA_POISON:
                continue  # honey-account domains were not on Rustock's list
            probability = self._inclusion_probability(campaign.strategy)
            if cfg.volume_bias_scale > 0:
                volume = campaign.total_volume
                probability *= volume / (volume + cfg.volume_bias_scale)
            if not campaign_inclusion(rng_inclusion, probability):
                continue
            catch = cfg.catch_rate
            if cfg.catch_jitter_sigma > 0:
                catch *= math.exp(
                    rng_capture.gauss(0.0, cfg.catch_jitter_sigma)
                )
            capture_campaign_into(
                builder,
                rng_capture,
                campaign,
                catch,
                chaff_sampler=world.benign.sample_chaff,
                chaff_probability=(
                    campaign.chaff_probability * cfg.chaff_factor
                ),
                onset_max_fraction=cfg.onset_max_fraction,
                respect_broadcast_lag=True,
            )

        self._benign_leakage(world, builder)
        return self._finalize_columns(world, builder)

    def _benign_leakage(self, world: World, builder: ColumnBuilder) -> None:
        """Username typos and list cross-contamination."""
        cfg = self.config
        rng = self._rng("benign-fp")
        pool = world.benign.alexa_ranked + world.benign.newsletter_domains
        if not pool or cfg.benign_fp_domains <= 0:
            return
        n_domains = min(cfg.benign_fp_domains, len(pool))
        chosen = rng.sample(pool, n_domains)
        tl = world.timeline
        per_domain = cfg.benign_fp_volume / n_domains
        for domain in chosen:
            n = max(1, poisson(rng, per_domain))
            builder.extend_burst(
                domain, scatter_times(rng, n, tl.start, tl.end)
            )
