"""The human-identified feed (Hu).

A very large webmail provider's users press "this is spam"; the provider
exports the advertised domains.  Three mechanisms shape this feed
(Sections 3.2 and 4.2.1):

* **Enormous net.**  With hundreds of millions of accounts, the provider
  receives essentially every campaign that targets real users --
  including the quiet, deliverability-engineered ones invisible to all
  honeypot apparatus.  This is why the smallest feed by volume is the
  biggest by coverage.
* **Volume suppression.**  Once users report a domain, it feeds the
  provider's filters and subsequent messages never reach an inbox, so
  per-domain report counts stay small regardless of campaign volume.
* **Human timescales.**  Reports happen when people read mail, adding
  hours-to-days of delay and distorting last-appearance times.

The feed's false positives are user mistakes: mis-reported newsletters
(legitimate commercial mail) and junk strings that were never domains.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict

from repro.ecosystem.entities import Campaign, CampaignClass
from repro.ecosystem.world import World
from repro.feeds.base import FeedCollector, FeedDataset, FeedType
from repro.feeds.capture import (
    REAL_USER_REACH,
    poisson,
    scatter_times,
)
from repro.io.columns import ColumnBuilder
from repro.stats.rng import derive_rng


@dataclasses.dataclass(frozen=True)
class HumanFeedConfig:
    """Tuning of the webmail provider's report pipeline."""

    name: str = "Hu"
    #: Fraction of all real-user spam deliveries landing at this provider.
    provider_share: float = 0.45
    #: Fraction of delivered (inbox) spam that users report.
    report_rate: float = 0.20
    #: Mean human report delay, in minutes (users read mail in batches).
    report_delay_mean: float = 10 * 60.0
    #: Mean of the per-domain report cap: after the first reports arrive
    #: the domain is filtered, so only a geometric handful get through.
    suppression_cap_mean: float = 1.8
    #: Reports are made on everything that reaches the mailbox --
    #: including the spam folder, which users inspect and confirm -- so
    #: the provider sees even heavily-filtered campaigns at this
    #: effective minimum evasion level.
    evasion_floor: float = 0.15
    #: Unique never-registered junk names reported by confused users.
    junk_domains: int = 1_400
    #: Unique legitimate newsletter domains users mark as spam.
    newsletter_fp_domains: int = 250
    newsletter_fp_volume: float = 800.0
    #: Users report the advertised domain, not message plumbing, so the
    #: chaff load is far lower than in full-URL feeds.
    chaff_factor: float = 0.08

    def __post_init__(self) -> None:
        if not (0.0 < self.provider_share <= 1.0):
            raise ValueError("provider_share out of range")
        if not (0.0 < self.report_rate <= 1.0):
            raise ValueError("report_rate out of range")
        if self.suppression_cap_mean < 1:
            raise ValueError("suppression_cap_mean must be >= 1")


class HumanIdentifiedFeed(FeedCollector):
    """The human-identified webmail feed collector."""

    feed_type = FeedType.HUMAN_IDENTIFIED
    #: The provider exports reported domains, not message counts; like
    #: the blacklists, this feed is excluded from the proportionality
    #: analysis (Section 4.3).
    has_volume = False

    def __init__(self, config: HumanFeedConfig, seed: int):
        self.config = config
        self.name = config.name
        self._seed = seed

    def _rng(self, label: str) -> random.Random:
        return derive_rng(self._seed, f"feed.{self.name}.{label}")

    def _report_delay(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self.config.report_delay_mean)

    def _domain_cap(self, rng: random.Random) -> int:
        """Per-domain report budget before filtering silences it."""
        mean = self.config.suppression_cap_mean
        # Geometric with the configured mean (support starting at 1).
        p = 1.0 / mean
        cap = 1
        while rng.random() > p:
            cap += 1
            if cap >= 200:
                break
        return cap

    def collect(self, world: World) -> FeedDataset:
        """Gather user reports with suppression and human delay."""
        cfg = self.config
        builder = ColumnBuilder()
        rng_capture = self._rng("capture")
        rng_caps = self._rng("caps")
        caps: Dict[str, int] = {}

        for campaign in world.campaigns:
            if campaign.campaign_class is CampaignClass.DGA_POISON:
                # DGA mail advertises dead names; filters drop nearly all
                # of it, and users who do see it have nothing to click.
                # A trickle still gets reported.
                self._capture_campaign(
                    world, campaign, 0.000_5, builder, rng_capture,
                    rng_caps, caps,
                )
                continue
            exposure = cfg.provider_share * cfg.report_rate
            self._capture_campaign(
                world, campaign, exposure, builder, rng_capture, rng_caps,
                caps,
            )

        self._junk_reports(world, builder)
        self._newsletter_reports(world, builder)
        return self._finalize_columns(world, builder)

    def _capture_campaign(
        self,
        world: World,
        campaign: Campaign,
        exposure: float,
        builder: ColumnBuilder,
        rng: random.Random,
        rng_caps: random.Random,
        caps: Dict[str, int],
    ) -> None:
        cfg = self.config
        reach = REAL_USER_REACH[campaign.strategy]
        evasion = max(campaign.filter_evasion, cfg.evasion_floor)
        for placement in campaign.placements:
            delivered = placement.volume * reach * evasion
            expected = delivered * exposure
            n = poisson(rng, expected)
            if n <= 0:
                continue
            if placement.domain not in caps:
                caps[placement.domain] = self._domain_cap(rng_caps)
            budget = caps[placement.domain]
            if budget <= 0:
                continue
            n = min(n, budget)
            caps[placement.domain] = budget - n
            times = scatter_times(
                rng,
                n,
                placement.start,
                placement.end,
                delay=self._report_delay,
            )
            builder.extend_burst(placement.domain, times)
            for t in times:
                if rng.random() < campaign.chaff_probability * cfg.chaff_factor:
                    builder.append(world.benign.sample_chaff(rng), t)

    def _junk_reports(self, world: World, builder: ColumnBuilder) -> None:
        """Junk strings users submit that were never real domains."""
        cfg = self.config
        rng = self._rng("junk")
        pool = world.junk_domains
        if not pool or cfg.junk_domains <= 0:
            return
        n_domains = min(cfg.junk_domains, len(pool))
        chosen = rng.sample(pool, n_domains)
        tl = world.timeline
        for domain in chosen:
            n = 1 + poisson(rng, 0.3)
            builder.extend_burst(
                domain, scatter_times(rng, n, tl.start, tl.end)
            )

    def _newsletter_reports(
        self, world: World, builder: ColumnBuilder
    ) -> None:
        """Legitimate commercial mail mis-reported as spam."""
        cfg = self.config
        rng = self._rng("newsletters")
        pool = world.benign.newsletter_domains + world.benign.alexa_ranked[:500]
        if not pool or cfg.newsletter_fp_domains <= 0:
            return
        n_domains = min(cfg.newsletter_fp_domains, len(pool))
        chosen = rng.sample(pool, n_domains)
        tl = world.timeline
        per_domain = cfg.newsletter_fp_volume / n_domains
        for domain in chosen:
            n = max(1, poisson(rng, per_domain))
            builder.extend_burst(
                domain, scatter_times(rng, n, tl.start, tl.end)
            )
