"""The botnet feed (Bot).

Captured bot instances run in a contained environment; everything they
try to send is recorded.  The feed is perfectly pure in the sense that
every record really was emitted by a spamming botnet -- but it only
covers the campaigns the *monitored* botnets deliver, and during the
measurement period that included Rustock's domain-poisoning episode, so
the feed is flooded with unregistered random names (Section 4.1.1).
"""

from __future__ import annotations

import dataclasses
import random

from repro.ecosystem.world import World
from repro.feeds.base import FeedCollector, FeedDataset, FeedType
from repro.feeds.capture import capture_campaign_into
from repro.io.columns import ColumnBuilder
from repro.stats.rng import derive_rng


@dataclasses.dataclass(frozen=True)
class BotnetFeedConfig:
    """Tuning of the botnet-monitoring apparatus.

    ``monitor_fraction`` is the share of a monitored botnet's total
    output the sandboxed instances represent (a handful of bots out of
    tens of thousands, but bots are interchangeable, so the sample is
    representative of the botnet's domain mix).
    """

    name: str = "Bot"
    monitor_fraction: float = 0.02
    #: The DGA episode is emitted by a monitored botnet at full tilt;
    #: its capture uses the same monitor fraction scaled by this factor
    #: (sandbox instances kept pace with the episode).
    dga_monitor_factor: float = 3.0
    chaff_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.monitor_fraction < 0:
            raise ValueError("monitor_fraction must be non-negative")
        if self.dga_monitor_factor < 0:
            raise ValueError("dga_monitor_factor must be non-negative")


class BotnetFeed(FeedCollector):
    """The monitored-botnet output feed."""

    feed_type = FeedType.BOTNET
    has_volume = True

    def __init__(self, config: BotnetFeedConfig, seed: int):
        self.config = config
        self.name = config.name
        self._seed = seed

    def _rng(self, label: str) -> random.Random:
        return derive_rng(self._seed, f"feed.{self.name}.{label}")

    def collect(self, world: World) -> FeedDataset:
        """Record the output of every monitored botnet's campaigns."""
        cfg = self.config
        monitored = world.monitored_botnet_ids()
        builder = ColumnBuilder()
        rng_capture = self._rng("capture")

        for campaign in world.campaigns:
            if campaign.botnet_id is None or campaign.botnet_id not in monitored:
                continue
            if world.dga_campaign is not None and campaign is world.dga_campaign:
                exposure = cfg.monitor_fraction * cfg.dga_monitor_factor
            else:
                exposure = cfg.monitor_fraction
            capture_campaign_into(
                builder,
                rng_capture,
                campaign,
                exposure,
                chaff_sampler=world.benign.sample_chaff,
                chaff_probability=(
                    campaign.chaff_probability * cfg.chaff_factor
                ),
                respect_broadcast_lag=True,
            )
        return self._finalize_columns(world, builder)
