"""The paper's ten-feed suite, pre-configured.

Parameter choices are calibrated so the collected datasets reproduce the
qualitative relationships of Tables 1-3 and Figures 1-12 (see
EXPERIMENTS.md for the target shapes).  All values are per-feed
apparatus properties -- portfolio sizes, seeding quality, monitoring
fractions, listing thresholds -- not per-result fudge factors.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from repro import obs
from repro.ecosystem.world import World
from repro.feeds.base import (
    ColumnarFeedDataset,
    FeedCollector,
    FeedDataset,
    PackedColumns,
)
from repro.feeds.blacklist import BlacklistConfig, BlacklistFeed
from repro.feeds.botnet import BotnetFeedConfig, BotnetFeed
from repro.feeds.honey_account import HoneyAccountConfig, HoneyAccountFeed
from repro.feeds.human import HumanFeedConfig, HumanIdentifiedFeed
from repro.feeds.hybrid import HybridFeedConfig, HybridFeed
from repro.feeds.mx_honeypot import MxHoneypotConfig, MxHoneypotFeed
from repro.parallel import fork_available, ordered_fanout, resolve_jobs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.parallel import WorkerPool
    from repro.store.sightings import RunWriter

#: Feed mnemonics in the paper's Table 1 order.
PAPER_FEED_ORDER = (
    "Hu", "uribl", "dbl", "mx1", "mx2", "mx3", "Ac1", "Ac2", "Bot", "Hyb",
)


def standard_feed_suite(seed: int = 2012) -> List[FeedCollector]:
    """Build collectors for the paper's ten feeds."""
    return [
        HumanIdentifiedFeed(HumanFeedConfig(), seed),
        BlacklistFeed(
            BlacklistConfig(
                name="uribl",
                broad_volume_scale=600.0,
                user_volume_scale=2_600.0,
                user_weight=0.4,
                latency_mean_minutes=26 * 60.0,
                benign_fp_domains=24,
            ),
            seed,
        ),
        BlacklistFeed(
            BlacklistConfig(
                name="dbl",
                broad_volume_scale=6_000.0,
                user_volume_scale=70.0,
                user_weight=1.0,
                latency_mean_minutes=12 * 60.0,
                benign_fp_domains=8,
            ),
            seed,
        ),
        MxHoneypotFeed(
            MxHoneypotConfig(
                name="mx1",
                inclusion_probability=0.80,
                harvested_inclusion=0.40,
                catch_rate=0.016,
                sees_dga=False,
                benign_fp_domains=90,
                benign_fp_volume=700.0,
            ),
            seed,
        ),
        MxHoneypotFeed(
            MxHoneypotConfig(
                name="mx2",
                inclusion_probability=0.90,
                harvested_inclusion=0.55,
                catch_rate=0.045,
                sees_dga=True,
                dga_catch_rate=0.05,
                benign_fp_domains=40,
                benign_fp_volume=500.0,
            ),
            seed,
        ),
        MxHoneypotFeed(
            MxHoneypotConfig(
                name="mx3",
                inclusion_probability=0.60,
                harvested_inclusion=0.30,
                catch_rate=0.014,
                sees_dga=False,
                benign_fp_domains=60,
                benign_fp_volume=350.0,
            ),
            seed,
        ),
        HoneyAccountFeed(
            HoneyAccountConfig(
                name="Ac1",
                harvested_inclusion=0.75,
                brute_inclusion=0.45,
                catch_rate=0.014,
                benign_fp_domains=70,
                benign_fp_volume=450.0,
            ),
            seed,
        ),
        HoneyAccountFeed(
            HoneyAccountConfig(
                name="Ac2",
                harvested_inclusion=0.55,
                brute_inclusion=0.35,
                catch_rate=0.02,
                volume_bias_scale=10_000.0,
                catch_jitter_sigma=1.4,
                benign_fp_domains=18,
                benign_fp_volume=300.0,
                chaff_factor=0.05,
            ),
            seed,
        ),
        BotnetFeed(
            BotnetFeedConfig(
                name="Bot",
                monitor_fraction=0.022,
                dga_monitor_factor=3.0,
                chaff_factor=0.15,
            ),
            seed,
        ),
        HybridFeed(HybridFeedConfig(), seed),
    ]


#: The (world, collectors) state persistent-pool collect tasks run
#: against.  Published immediately before the pool forks so workers
#: inherit it copy-on-write; tasks index into it and never mutate it.
_POOL_STATE: Optional[Tuple[World, List[FeedCollector]]] = None


def set_pool_state(
    world: World, collectors: List[FeedCollector]
) -> None:
    """Publish the collect state a persistent pool will inherit.

    Must run *before* the :class:`~repro.parallel.pool.WorkerPool` is
    constructed: pool workers receive only small task descriptors over
    a pipe, so everything heavy has to already be in the forked image.
    """
    global _POOL_STATE
    _POOL_STATE = (world, collectors)  # reprolint: disable=REP009 -- pre-fork publication point


def clear_pool_state() -> None:
    """Drop the published collect state (after the pool is closed)."""
    global _POOL_STATE
    _POOL_STATE = None  # reprolint: disable=REP009 -- clears the pre-fork publication


def pool_world() -> World:
    """The world published for the active pool (workers and parent)."""
    if _POOL_STATE is None:
        raise RuntimeError("no pool state published (set_pool_state)")
    return _POOL_STATE[0]


def _pool_collect_task(index: int) -> PackedColumns:
    """Pool task: run the *index*-th published collector, return blobs."""
    if _POOL_STATE is None:
        raise RuntimeError("no pool state published (set_pool_state)")
    world, collectors = _POOL_STATE
    return collectors[index].collect(world).packed()


def land_dataset(writer: "RunWriter", dataset: FeedDataset) -> None:
    """Land one collected dataset into a sighting-store run."""
    columns = dataset.to_columns()
    writer.land_sightings(
        dataset.name, zip(columns.domains, columns.times)
    )


def _land_columnar(
    results: Dict[str, FeedDataset], writer: Optional["RunWriter"]
) -> None:
    for dataset in results.values():
        obs.add("feeds.records", dataset.total_samples)
        if writer is not None:
            with obs.span(f"store.land:{dataset.name}"):
                land_dataset(writer, dataset)


def collect_all(
    world: World,
    collectors: Optional[Iterable[FeedCollector]] = None,
    jobs: Optional[int] = None,
    writer: Optional["RunWriter"] = None,
    pool: Optional["WorkerPool"] = None,
) -> Dict[str, FeedDataset]:
    """Run every collector against *world*; keyed by feed mnemonic.

    With ``jobs`` > 1 the collectors run on a forked worker pool.  Each
    collector draws only from its own seed-derived RNG streams and the
    results are reassembled in collector order, so the datasets are
    byte-identical to a serial run at any worker count; parallel
    results come back as column-backed datasets (cheap to transport),
    which serve the same statistics in the same order.

    A persistent *pool* (forked after :func:`set_pool_state` published
    this exact world and collector list) takes precedence over the
    per-call fan-out: collection then ships only collector indices to
    the already-forked workers, sharing the fork bill with later
    stages.  The two parallel paths and the serial path all produce
    byte-identical datasets.

    With a *writer* attached, each dataset lands in the sighting store
    as it is collected (in collector order on the parallel path, where
    children return columns and the parent lands them).  Landing is a
    store-side effect only -- the returned datasets are identical with
    or without it.
    """
    ordered = (
        list(collectors)
        if collectors is not None
        else standard_feed_suite()
    )
    seen: set = set()
    for name in (collector.name for collector in ordered):
        if name in seen:
            raise ValueError(f"duplicate feed name {name!r}")
        seen.add(name)

    labels = [f"feed.collect:{collector.name}" for collector in ordered]
    if pool is not None and not pool.closed and len(ordered) > 1:
        packed = pool.run_batch(
            _pool_collect_task, list(range(len(ordered))), labels=labels
        )
        results = {
            p.name: ColumnarFeedDataset.from_packed(p) for p in packed
        }
        _land_columnar(results, writer)
        return results

    width = min(resolve_jobs(jobs), len(ordered))
    if width > 1 and fork_available():
        # Pre-warm the shared placement index so every forked worker
        # inherits it copy-on-write instead of rebuilding it.
        world.placements_by_domain()
        packed = ordered_fanout(
            [
                (lambda c=collector: c.collect(world).packed())
                for collector in ordered
            ],
            jobs=width,
            labels=labels,
        )
        results = {
            p.name: ColumnarFeedDataset.from_packed(p) for p in packed
        }
        _land_columnar(results, writer)
        return results

    datasets: Dict[str, FeedDataset] = {}
    for collector in ordered:
        with obs.span(f"feed.collect:{collector.name}") as span:
            dataset = collector.collect(world)
            obs.add("feeds.records", dataset.total_samples)
            if span is not None:
                span.attributes["records"] = dataset.total_samples
        if writer is not None:
            with obs.span(f"store.land:{collector.name}"):
                land_dataset(writer, dataset)
        datasets[collector.name] = dataset
    return datasets
