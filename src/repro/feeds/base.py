"""Feed data model: records, datasets, and the collector interface."""

from __future__ import annotations

import abc
import enum
from array import array
from typing import (
    Dict,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Protocol,
    Set,
    Tuple,
    runtime_checkable,
)

from repro.ecosystem.world import World
from repro.simtime import SimTime
from repro.stats.distributions import EmpiricalDistribution


class FeedType(enum.Enum):
    """The five collection-methodology categories from Section 3.2."""

    HUMAN_IDENTIFIED = "human_identified"
    BLACKLIST = "blacklist"
    MX_HONEYPOT = "mx_honeypot"
    HONEY_ACCOUNT = "honey_account"
    BOTNET = "botnet"
    HYBRID = "hybrid"


class FeedRecord(NamedTuple):
    """One sighting: a registered domain observed at a simulation time."""

    domain: str
    time: SimTime


class DatasetColumns(NamedTuple):
    """A feed dataset in columnar form: cheap to pickle, cheap to load.

    One tuple and two flat lists serialize an order of magnitude faster
    than a list of per-record tuples, which is what lets datasets cross
    process boundaries (parallel collection) and live in the on-disk
    artifact cache without the transport cost eating the win.  For the
    hot transport paths :meth:`pack` flattens the columns further into
    two byte blobs (see :class:`PackedColumns`).
    """

    name: str
    feed_type: str
    has_volume: bool
    domains: List[str]
    times: List[SimTime]

    def pack(self) -> "PackedColumns":
        """Flatten the columns into two byte blobs.

        The blob layout is owned by :class:`repro.io.columns
        .ColumnBlock`: one joined string and one int64 array, which
        pickle close to a memcpy where hundreds of thousands of small
        string and int objects do not.  Domain names cannot contain the
        newline separator (they are DNS labels), which
        :meth:`PackedColumns.unpack` re-checks via column-length
        agreement.
        """
        packed = ColumnBlock(list(self.domains), array("q", self.times)).pack()
        return PackedColumns(
            name=self.name,
            feed_type=self.feed_type,
            has_volume=self.has_volume,
            n_records=packed.n_records,
            domain_blob=packed.domain_blob,
            time_blob=packed.time_blob,
        )


class PackedColumns(NamedTuple):
    """Blob-packed :class:`DatasetColumns` for process/disk transport."""

    name: str
    feed_type: str
    has_volume: bool
    n_records: int
    domain_blob: bytes
    time_blob: bytes

    def unpack(self) -> DatasetColumns:
        """Restore the columnar form; raises on any length mismatch."""
        block = PackedBlock(
            self.n_records, self.domain_blob, self.time_blob
        ).unpack()
        return DatasetColumns(
            name=self.name,
            feed_type=self.feed_type,
            has_volume=self.has_volume,
            domains=block.domains,
            times=list(block.times),
        )


@runtime_checkable
class FeedStats(Protocol):
    """The statistics surface every analysis consumes.

    Both the batch :class:`FeedDataset` (record-backed) and the
    streaming :class:`~repro.stream.state.FeedAccumulator`
    (counter-backed) satisfy this protocol, which is what lets
    :class:`~repro.analysis.context.FeedComparison` serve either path
    with identical results.
    """

    name: str
    feed_type: FeedType
    has_volume: bool

    @property
    def total_samples(self) -> int: ...

    @property
    def n_unique(self) -> int: ...

    def unique_domains(self) -> Set[str]: ...

    def domain_counts(self) -> EmpiricalDistribution: ...

    def first_seen(self) -> Dict[str, SimTime]: ...

    def last_seen(self) -> Dict[str, SimTime]: ...


class FeedDataset:
    """The collected output of one feed over the measurement window.

    For volume-bearing feeds every record corresponds to one captured
    message (sample); blacklist-style feeds carry a single record per
    listed domain, and their ``has_volume`` flag is False so the
    proportionality analysis skips them (Section 4.3).
    """

    def __init__(
        self,
        name: str,
        feed_type: FeedType,
        records: Iterable[FeedRecord],
        has_volume: bool = True,
    ):
        self.name = name
        self.feed_type = feed_type
        self.has_volume = has_volume
        self.records: List[FeedRecord] = list(records)
        self._chronological: Optional[List[FeedRecord]] = None
        self._unique: Optional[Set[str]] = None
        self._counts: Optional[EmpiricalDistribution] = None
        self._first_seen: Optional[Dict[str, SimTime]] = None
        self._last_seen: Optional[Dict[str, SimTime]] = None

    # ------------------------------------------------------------------
    # Basic statistics (Table 1)
    # ------------------------------------------------------------------

    @property
    def total_samples(self) -> int:
        """Total number of samples received (Table 1, Domains column)."""
        return len(self.records)

    def unique_domains(self) -> Set[str]:
        """Distinct registered domains in the feed (Table 1, Unique)."""
        if self._unique is None:
            self._unique = {r.domain for r in self.records}
        return self._unique

    @property
    def n_unique(self) -> int:
        """Number of distinct registered domains."""
        return len(self.unique_domains())

    # ------------------------------------------------------------------
    # Volume and timing views
    # ------------------------------------------------------------------

    def domain_counts(self) -> EmpiricalDistribution:
        """Empirical domain-volume distribution (Section 4.3).

        Meaningful only when ``has_volume`` is True; callers enforcing
        the paper's restriction should check that flag.
        """
        if self._counts is None:
            counts: Dict[str, float] = {}
            for record in self.records:
                counts[record.domain] = counts.get(record.domain, 0.0) + 1.0
            self._counts = EmpiricalDistribution(counts)
        return self._counts

    def first_seen(self) -> Dict[str, SimTime]:
        """Earliest sighting time per domain."""
        if self._first_seen is None:
            first: Dict[str, SimTime] = {}
            for domain, t in self.records:
                prev = first.get(domain)
                if prev is None or t < prev:
                    first[domain] = t
            self._first_seen = first
        return self._first_seen

    def last_seen(self) -> Dict[str, SimTime]:
        """Latest sighting time per domain."""
        if self._last_seen is None:
            last: Dict[str, SimTime] = {}
            for domain, t in self.records:
                prev = last.get(domain)
                if prev is None or t > prev:
                    last[domain] = t
            self._last_seen = last
        return self._last_seen

    def chronological_records(self) -> List[FeedRecord]:
        """Records in non-decreasing time order (stream emission order).

        Collector output is already time-sorted (``_finalize`` sorts),
        in which case the record list itself is returned; otherwise a
        stable-sorted copy is cached, preserving the original relative
        order of same-minute sightings.  The streaming merge layer
        requires this ordering for deterministic interleaving.
        """
        if self._chronological is None:
            records = self.records
            if all(
                records[i].time <= records[i + 1].time
                for i in range(len(records) - 1)
            ):
                self._chronological = records
            else:
                self._chronological = sorted(records, key=lambda r: r.time)
        return self._chronological

    def restrict(self, domains: Iterable[str]) -> "FeedDataset":
        """A new dataset containing only records for *domains*."""
        keyset = set(domains)
        return FeedDataset(
            name=self.name,
            feed_type=self.feed_type,
            records=[r for r in self.records if r.domain in keyset],
            has_volume=self.has_volume,
        )

    def to_columns(self) -> DatasetColumns:
        """This dataset in columnar transport form (record order kept)."""
        return DatasetColumns(
            name=self.name,
            feed_type=self.feed_type.value,
            has_volume=self.has_volume,
            domains=[r.domain for r in self.records],
            times=[r.time for r in self.records],
        )

    def packed(self) -> PackedColumns:
        """This dataset blob-packed for process/disk transport."""
        return self.to_columns().pack()

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        return (
            f"FeedDataset({self.name!r}, type={self.feed_type.value}, "
            f"samples={self.total_samples}, unique={self.n_unique}, "
            f"has_volume={self.has_volume})"
        )


# Imported below FeedDataset rather than at the top: repro.io's package
# init pulls in serialization, which imports FeedDataset/FeedRecord/
# FeedType back from this module, so those names must already exist
# when the import cycle re-enters here.
from repro.io.columns import (  # noqa: E402
    ColumnBlock,
    ColumnBuilder,
    PackedBlock,
)


class ColumnarFeedDataset(FeedDataset):
    """A :class:`FeedDataset` backed by a :class:`ColumnBlock`.

    Serves the whole :class:`FeedStats` surface straight from the two
    flat columns -- the per-record ``FeedRecord`` list is materialized
    lazily, only if a consumer (streaming merge, CSV export) actually
    asks for ``.records``.  Statistics come from the array-at-a-time
    kernels in :mod:`repro.io.columns`, which reproduce every derived
    value of the record-backed path exactly -- sets, counts, first/last
    sightings *and their dict insertion orders* (first-appearance
    order), which downstream iteration orders depend on.
    """

    def __init__(
        self,
        columns: DatasetColumns,
        chronological: Optional[bool] = None,
    ):
        domains = (
            columns.domains
            if isinstance(columns.domains, list)
            else list(columns.domains)
        )
        times = (
            columns.times
            if isinstance(columns.times, array)
            else array("q", columns.times)
        )
        self._init_from_block(
            columns.name,
            FeedType(columns.feed_type),
            columns.has_volume,
            ColumnBlock(domains, times, chronological),
        )

    @classmethod
    def from_block(
        cls,
        name: str,
        feed_type: FeedType,
        has_volume: bool,
        block: ColumnBlock,
    ) -> "ColumnarFeedDataset":
        """Wrap an existing block without copying its columns."""
        self = cls.__new__(cls)
        self._init_from_block(name, feed_type, has_volume, block)
        return self

    @classmethod
    def from_packed(cls, packed: "PackedColumns") -> "ColumnarFeedDataset":
        """Unpack straight into a block (no intermediate list column)."""
        return cls.from_block(
            packed.name,
            FeedType(packed.feed_type),
            packed.has_volume,
            PackedBlock(
                packed.n_records, packed.domain_blob, packed.time_blob
            ).unpack(),
        )

    def _init_from_block(
        self,
        name: str,
        feed_type: FeedType,
        has_volume: bool,
        block: ColumnBlock,
    ) -> None:
        self.name = name
        self.feed_type = feed_type
        self.has_volume = has_volume
        self._block = block
        self._domains = block.domains
        self._times = block.times
        self._materialized: Optional[List[FeedRecord]] = None
        self._chronological: Optional[List[FeedRecord]] = None
        self._unique: Optional[Set[str]] = None
        self._counts: Optional[EmpiricalDistribution] = None
        self._first_seen: Optional[Dict[str, SimTime]] = None
        self._last_seen: Optional[Dict[str, SimTime]] = None

    @property  # type: ignore[override]
    def records(self) -> List[FeedRecord]:
        """Materialized record list (built on first access, then cached)."""
        if self._materialized is None:
            self._materialized = list(
                map(FeedRecord, self._domains, self._times)
            )
        return self._materialized

    @property
    def total_samples(self) -> int:
        return len(self._domains)

    def unique_domains(self) -> Set[str]:
        if self._unique is None:
            self._unique = self._block.unique_domains()
        return self._unique

    def domain_counts(self) -> EmpiricalDistribution:
        if self._counts is None:
            self._counts = EmpiricalDistribution(self._block.value_counts())
        return self._counts

    def first_seen(self) -> Dict[str, SimTime]:
        if self._first_seen is None:
            self._first_seen, self._last_seen = self._block.first_last_seen()
        return self._first_seen

    def last_seen(self) -> Dict[str, SimTime]:
        if self._last_seen is None:
            self._first_seen, self._last_seen = self._block.first_last_seen()
        return self._last_seen

    def chronological_records(self) -> List[FeedRecord]:
        """See :meth:`FeedDataset.chronological_records`.

        The sortedness test runs on the time column (one C pass)
        instead of scanning materialized record tuples.
        """
        if self._chronological is None:
            if self._block.is_chronological():
                self._chronological = self.records
            else:
                self._chronological = sorted(
                    self.records, key=lambda r: r.time
                )
        return self._chronological

    def to_columns(self) -> DatasetColumns:
        return DatasetColumns(
            name=self.name,
            feed_type=self.feed_type.value,
            has_volume=self.has_volume,
            domains=self._domains,
            times=list(self._times),
        )

    def packed(self) -> PackedColumns:
        """Blob-packed transport form, straight from the block."""
        packed = self._block.pack()
        return PackedColumns(
            name=self.name,
            feed_type=self.feed_type.value,
            has_volume=self.has_volume,
            n_records=packed.n_records,
            domain_blob=packed.domain_blob,
            time_blob=packed.time_blob,
        )

    def __len__(self) -> int:
        return len(self._domains)


class FeedCollector(abc.ABC):
    """Interface every feed implementation satisfies."""

    #: Feed mnemonic as used throughout the paper (e.g. ``"mx1"``).
    name: str
    feed_type: FeedType
    has_volume: bool = True

    @abc.abstractmethod
    def collect(self, world: World) -> FeedDataset:
        """Observe *world* and return this feed's dataset."""

    def _finalize(self, world: World, records: List[FeedRecord]) -> FeedDataset:
        """Clamp-drop records outside the window and build the dataset."""
        tl = world.timeline
        kept = [r for r in records if tl.start <= r.time < tl.end]
        kept.sort(key=lambda r: r.time)
        return FeedDataset(
            name=self.name,
            feed_type=self.feed_type,
            records=kept,
            has_volume=self.has_volume,
        )

    def _finalize_columns(
        self, world: World, builder: ColumnBuilder
    ) -> ColumnarFeedDataset:
        """Columnar :meth:`_finalize`: window-clamp and time-sort.

        Same semantics (drop outside [start, end), stable sort by
        time), executed as two array-at-a-time kernels instead of a
        per-record filter and a tuple sort, and the result stays
        column-backed -- no ``FeedRecord`` is ever allocated unless a
        consumer materializes ``.records``.
        """
        tl = world.timeline
        block = builder.build().window(tl.start, tl.end).sorted_by_time()
        return ColumnarFeedDataset.from_block(
            self.name, self.feed_type, self.has_volume, block
        )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
