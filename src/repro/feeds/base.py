"""Feed data model: records, datasets, and the collector interface."""

from __future__ import annotations

import abc
import enum
from array import array
from typing import (
    Dict,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Protocol,
    Set,
    Tuple,
    runtime_checkable,
)

from repro.ecosystem.world import World
from repro.simtime import SimTime
from repro.stats.distributions import EmpiricalDistribution


class FeedType(enum.Enum):
    """The five collection-methodology categories from Section 3.2."""

    HUMAN_IDENTIFIED = "human_identified"
    BLACKLIST = "blacklist"
    MX_HONEYPOT = "mx_honeypot"
    HONEY_ACCOUNT = "honey_account"
    BOTNET = "botnet"
    HYBRID = "hybrid"


class FeedRecord(NamedTuple):
    """One sighting: a registered domain observed at a simulation time."""

    domain: str
    time: SimTime


class DatasetColumns(NamedTuple):
    """A feed dataset in columnar form: cheap to pickle, cheap to load.

    One tuple and two flat lists serialize an order of magnitude faster
    than a list of per-record tuples, which is what lets datasets cross
    process boundaries (parallel collection) and live in the on-disk
    artifact cache without the transport cost eating the win.  For the
    hot transport paths :meth:`pack` flattens the columns further into
    two byte blobs (see :class:`PackedColumns`).
    """

    name: str
    feed_type: str
    has_volume: bool
    domains: List[str]
    times: List[SimTime]

    def pack(self) -> "PackedColumns":
        """Flatten the columns into two byte blobs.

        Pickling one joined string and one int64 array is close to a
        memcpy; pickling hundreds of thousands of small string and int
        objects is not.  Domain names cannot contain the newline
        separator (they are DNS labels), which :meth:`PackedColumns
        .unpack` re-checks via column-length agreement.
        """
        return PackedColumns(
            name=self.name,
            feed_type=self.feed_type,
            has_volume=self.has_volume,
            n_records=len(self.domains),
            domain_blob="\n".join(self.domains).encode("utf-8"),
            time_blob=array("q", self.times).tobytes(),
        )


class PackedColumns(NamedTuple):
    """Blob-packed :class:`DatasetColumns` for process/disk transport."""

    name: str
    feed_type: str
    has_volume: bool
    n_records: int
    domain_blob: bytes
    time_blob: bytes

    def unpack(self) -> DatasetColumns:
        """Restore the columnar form; raises on any length mismatch."""
        domains = (
            self.domain_blob.decode("utf-8").split("\n")
            if self.domain_blob
            else []
        )
        times = array("q")
        times.frombytes(self.time_blob)
        if len(domains) != self.n_records or len(times) != self.n_records:
            raise ValueError(
                "packed columns do not round-trip to "
                f"{self.n_records} records"
            )
        return DatasetColumns(
            name=self.name,
            feed_type=self.feed_type,
            has_volume=self.has_volume,
            domains=domains,
            times=list(times),
        )


@runtime_checkable
class FeedStats(Protocol):
    """The statistics surface every analysis consumes.

    Both the batch :class:`FeedDataset` (record-backed) and the
    streaming :class:`~repro.stream.state.FeedAccumulator`
    (counter-backed) satisfy this protocol, which is what lets
    :class:`~repro.analysis.context.FeedComparison` serve either path
    with identical results.
    """

    name: str
    feed_type: FeedType
    has_volume: bool

    @property
    def total_samples(self) -> int: ...

    @property
    def n_unique(self) -> int: ...

    def unique_domains(self) -> Set[str]: ...

    def domain_counts(self) -> EmpiricalDistribution: ...

    def first_seen(self) -> Dict[str, SimTime]: ...

    def last_seen(self) -> Dict[str, SimTime]: ...


class FeedDataset:
    """The collected output of one feed over the measurement window.

    For volume-bearing feeds every record corresponds to one captured
    message (sample); blacklist-style feeds carry a single record per
    listed domain, and their ``has_volume`` flag is False so the
    proportionality analysis skips them (Section 4.3).
    """

    def __init__(
        self,
        name: str,
        feed_type: FeedType,
        records: Iterable[FeedRecord],
        has_volume: bool = True,
    ):
        self.name = name
        self.feed_type = feed_type
        self.has_volume = has_volume
        self.records: List[FeedRecord] = list(records)
        self._chronological: Optional[List[FeedRecord]] = None
        self._unique: Optional[Set[str]] = None
        self._counts: Optional[EmpiricalDistribution] = None
        self._first_seen: Optional[Dict[str, SimTime]] = None
        self._last_seen: Optional[Dict[str, SimTime]] = None

    # ------------------------------------------------------------------
    # Basic statistics (Table 1)
    # ------------------------------------------------------------------

    @property
    def total_samples(self) -> int:
        """Total number of samples received (Table 1, Domains column)."""
        return len(self.records)

    def unique_domains(self) -> Set[str]:
        """Distinct registered domains in the feed (Table 1, Unique)."""
        if self._unique is None:
            self._unique = {r.domain for r in self.records}
        return self._unique

    @property
    def n_unique(self) -> int:
        """Number of distinct registered domains."""
        return len(self.unique_domains())

    # ------------------------------------------------------------------
    # Volume and timing views
    # ------------------------------------------------------------------

    def domain_counts(self) -> EmpiricalDistribution:
        """Empirical domain-volume distribution (Section 4.3).

        Meaningful only when ``has_volume`` is True; callers enforcing
        the paper's restriction should check that flag.
        """
        if self._counts is None:
            counts: Dict[str, float] = {}
            for record in self.records:
                counts[record.domain] = counts.get(record.domain, 0.0) + 1.0
            self._counts = EmpiricalDistribution(counts)
        return self._counts

    def first_seen(self) -> Dict[str, SimTime]:
        """Earliest sighting time per domain."""
        if self._first_seen is None:
            first: Dict[str, SimTime] = {}
            for domain, t in self.records:
                prev = first.get(domain)
                if prev is None or t < prev:
                    first[domain] = t
            self._first_seen = first
        return self._first_seen

    def last_seen(self) -> Dict[str, SimTime]:
        """Latest sighting time per domain."""
        if self._last_seen is None:
            last: Dict[str, SimTime] = {}
            for domain, t in self.records:
                prev = last.get(domain)
                if prev is None or t > prev:
                    last[domain] = t
            self._last_seen = last
        return self._last_seen

    def chronological_records(self) -> List[FeedRecord]:
        """Records in non-decreasing time order (stream emission order).

        Collector output is already time-sorted (``_finalize`` sorts),
        in which case the record list itself is returned; otherwise a
        stable-sorted copy is cached, preserving the original relative
        order of same-minute sightings.  The streaming merge layer
        requires this ordering for deterministic interleaving.
        """
        if self._chronological is None:
            records = self.records
            if all(
                records[i].time <= records[i + 1].time
                for i in range(len(records) - 1)
            ):
                self._chronological = records
            else:
                self._chronological = sorted(records, key=lambda r: r.time)
        return self._chronological

    def restrict(self, domains: Iterable[str]) -> "FeedDataset":
        """A new dataset containing only records for *domains*."""
        keyset = set(domains)
        return FeedDataset(
            name=self.name,
            feed_type=self.feed_type,
            records=[r for r in self.records if r.domain in keyset],
            has_volume=self.has_volume,
        )

    def to_columns(self) -> DatasetColumns:
        """This dataset in columnar transport form (record order kept)."""
        return DatasetColumns(
            name=self.name,
            feed_type=self.feed_type.value,
            has_volume=self.has_volume,
            domains=[r.domain for r in self.records],
            times=[r.time for r in self.records],
        )

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        return (
            f"FeedDataset({self.name!r}, type={self.feed_type.value}, "
            f"samples={self.total_samples}, unique={self.n_unique}, "
            f"has_volume={self.has_volume})"
        )


class ColumnarFeedDataset(FeedDataset):
    """A :class:`FeedDataset` backed by columns instead of record tuples.

    Serves the whole :class:`FeedStats` surface straight from the two
    flat columns -- the per-record ``FeedRecord`` list is materialized
    lazily, only if a consumer (streaming merge, CSV export) actually
    asks for ``.records``.  Statistics are computed by iterating the
    columns in record order, so every derived value -- sets, counts,
    first/last sightings and their dict insertion orders -- is
    identical to the record-backed path.
    """

    def __init__(self, columns: DatasetColumns):
        if len(columns.domains) != len(columns.times):
            raise ValueError("domain and time columns differ in length")
        self.name = columns.name
        self.feed_type = FeedType(columns.feed_type)
        self.has_volume = columns.has_volume
        self._domains = columns.domains
        self._times = columns.times
        self._materialized: Optional[List[FeedRecord]] = None
        self._chronological: Optional[List[FeedRecord]] = None
        self._unique: Optional[Set[str]] = None
        self._counts: Optional[EmpiricalDistribution] = None
        self._first_seen: Optional[Dict[str, SimTime]] = None
        self._last_seen: Optional[Dict[str, SimTime]] = None

    @property  # type: ignore[override]
    def records(self) -> List[FeedRecord]:
        """Materialized record list (built on first access, then cached)."""
        if self._materialized is None:
            self._materialized = [
                FeedRecord(d, t)
                for d, t in zip(self._domains, self._times)
            ]
        return self._materialized

    @property
    def total_samples(self) -> int:
        return len(self._domains)

    def unique_domains(self) -> Set[str]:
        if self._unique is None:
            self._unique = set(self._domains)
        return self._unique

    def domain_counts(self) -> EmpiricalDistribution:
        if self._counts is None:
            counts: Dict[str, float] = {}
            for domain in self._domains:
                counts[domain] = counts.get(domain, 0.0) + 1.0
            self._counts = EmpiricalDistribution(counts)
        return self._counts

    def first_seen(self) -> Dict[str, SimTime]:
        if self._first_seen is None:
            first: Dict[str, SimTime] = {}
            for domain, t in zip(self._domains, self._times):
                prev = first.get(domain)
                if prev is None or t < prev:
                    first[domain] = t
            self._first_seen = first
        return self._first_seen

    def last_seen(self) -> Dict[str, SimTime]:
        if self._last_seen is None:
            last: Dict[str, SimTime] = {}
            for domain, t in zip(self._domains, self._times):
                prev = last.get(domain)
                if prev is None or t > prev:
                    last[domain] = t
            self._last_seen = last
        return self._last_seen

    def to_columns(self) -> DatasetColumns:
        return DatasetColumns(
            name=self.name,
            feed_type=self.feed_type.value,
            has_volume=self.has_volume,
            domains=self._domains,
            times=self._times,
        )

    def __len__(self) -> int:
        return len(self._domains)


class FeedCollector(abc.ABC):
    """Interface every feed implementation satisfies."""

    #: Feed mnemonic as used throughout the paper (e.g. ``"mx1"``).
    name: str
    feed_type: FeedType
    has_volume: bool = True

    @abc.abstractmethod
    def collect(self, world: World) -> FeedDataset:
        """Observe *world* and return this feed's dataset."""

    def _finalize(self, world: World, records: List[FeedRecord]) -> FeedDataset:
        """Clamp-drop records outside the window and build the dataset."""
        tl = world.timeline
        kept = [r for r in records if tl.start <= r.time < tl.end]
        kept.sort(key=lambda r: r.time)
        return FeedDataset(
            name=self.name,
            feed_type=self.feed_type,
            records=kept,
            has_volume=self.has_volume,
        )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
