"""Spam feed collectors.

Each collector observes the ground-truth :class:`repro.ecosystem.World`
through the biases of one collection methodology (Section 3.2 of the
paper) and produces a :class:`FeedDataset` of (registered domain,
timestamp) sighting records:

* :class:`MxHoneypotFeed` -- quiescent domains accepting all SMTP;
  sees only brute-force-addressed broadcast campaigns.
* :class:`HoneyAccountFeed` -- seeded accounts across providers; sees
  harvest-vector campaigns (and some brute force).
* :class:`BotnetFeed` -- output of monitored bots; perfectly pure except
  for the DGA poisoning episode, covers few programs/affiliates.
* :class:`HumanIdentifiedFeed` -- "this is spam" reports at a huge
  webmail provider; sees nearly every campaign but suppresses volume
  (reported domains are filtered thereafter) and adds human-timescale
  delay.
* :class:`BlacklistFeed` -- operational meta-feeds (dbl/uribl analogs);
  binary listing with latency, professionally scrubbed of false
  positives.
* :class:`HybridFeed` -- a mixture of email-derived and non-email
  (web-spam) sources.

:func:`standard_feed_suite` builds the paper's ten feeds.
"""

from repro.feeds.base import (
    FeedCollector,
    FeedDataset,
    FeedRecord,
    FeedStats,
    FeedType,
)
from repro.feeds.mx_honeypot import MxHoneypotConfig, MxHoneypotFeed
from repro.feeds.honey_account import HoneyAccountConfig, HoneyAccountFeed
from repro.feeds.botnet import BotnetFeedConfig, BotnetFeed
from repro.feeds.human import HumanFeedConfig, HumanIdentifiedFeed
from repro.feeds.blacklist import BlacklistConfig, BlacklistFeed
from repro.feeds.hybrid import HybridFeedConfig, HybridFeed
from repro.feeds.suite import (
    PAPER_FEED_ORDER,
    clear_pool_state,
    collect_all,
    land_dataset,
    pool_world,
    set_pool_state,
    standard_feed_suite,
)

__all__ = [
    "BlacklistConfig",
    "BlacklistFeed",
    "BotnetFeed",
    "BotnetFeedConfig",
    "FeedCollector",
    "FeedDataset",
    "FeedRecord",
    "FeedStats",
    "FeedType",
    "HoneyAccountConfig",
    "HoneyAccountFeed",
    "HumanFeedConfig",
    "HumanIdentifiedFeed",
    "HybridFeed",
    "HybridFeedConfig",
    "MxHoneypotConfig",
    "MxHoneypotFeed",
    "PAPER_FEED_ORDER",
    "clear_pool_state",
    "collect_all",
    "land_dataset",
    "pool_world",
    "set_pool_state",
    "standard_feed_suite",
]
