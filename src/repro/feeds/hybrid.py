"""The hybrid feed (Hyb).

The paper could not learn this provider's exact methodology and believes
it mixes multiple collection methods, including non-email sources: the
feed contributes an enormous number of live domains that appear in no
other feed, yet its tagged domains cover almost none of the real mail
volume (Figures 1 and 3).  We model it as:

* an *email component* that includes domains broadly but with a penalty
  on the highest-volume placements (aggressive deduplication and odd
  trap placement under-sample the loudest head of the distribution), and
* a *web-spam component*: domains scraped from the web (link spam,
  search-engine bait) that never occur in email at all -- many of them
  dead or unregistered, dragging the feed's DNS purity down to ~64%.
"""

from __future__ import annotations

import dataclasses
import random

from repro.ecosystem.entities import CampaignClass
from repro.ecosystem.world import World
from repro.feeds.base import FeedCollector, FeedDataset, FeedType
from repro.feeds.capture import exponential_delay, poisson, scatter_times
from repro.io.columns import ColumnBuilder
from repro.stats.rng import derive_rng


@dataclasses.dataclass(frozen=True)
class HybridFeedConfig:
    """Tuning of the hybrid feed's two components."""

    name: str = "Hyb"
    #: Base per-domain inclusion probability of the email component.
    domain_inclusion: float = 0.35
    #: Placement volume above which inclusion probability decays.
    volume_penalty_scale: float = 3_000.0
    volume_penalty_exponent: float = 1.3
    #: Captured records per unit of (penalty-capped) placement volume.
    catch_rate: float = 0.05
    #: Cap on the effective volume used for record counts (dedup-like).
    volume_cap: float = 600.0
    #: Mean observation delay of the email component (this feed contains
    #: user-reported material; Section 4.4).
    delay_mean_minutes: float = 2.0 * 24 * 60
    #: Expected records per web-spam domain.
    webspam_records_mean: float = 28.0
    #: Benign (Alexa/ODP) domains swept up by the web-spam scrapers.
    webspam_benign_domains: int = 2_200
    webspam_benign_records_mean: float = 6.0
    chaff_factor: float = 0.6

    def __post_init__(self) -> None:
        if not (0.0 <= self.domain_inclusion <= 1.0):
            raise ValueError("domain_inclusion out of range")
        if self.volume_penalty_scale <= 0:
            raise ValueError("volume_penalty_scale must be positive")


class HybridFeed(FeedCollector):
    """The hybrid (multi-methodology) feed collector."""

    feed_type = FeedType.HYBRID
    #: Table 1 reports sample counts for Hyb, but the provider's records
    #: are not per-message sightings, so the paper excludes it from the
    #: proportionality analysis (Section 4.3).
    has_volume = False

    def __init__(self, config: HybridFeedConfig, seed: int):
        self.config = config
        self.name = config.name
        self._seed = seed

    def _rng(self, label: str) -> random.Random:
        return derive_rng(self._seed, f"feed.{self.name}.{label}")

    def _inclusion_probability(self, volume: float) -> float:
        """Per-placement-domain inclusion with a loud-head penalty."""
        cfg = self.config
        if volume <= cfg.volume_penalty_scale:
            return cfg.domain_inclusion
        penalty = (cfg.volume_penalty_scale / volume) ** (
            cfg.volume_penalty_exponent
        )
        return cfg.domain_inclusion * penalty

    def collect(self, world: World) -> FeedDataset:
        """Combine the email and web-spam components."""
        builder = ColumnBuilder()
        self._email_component(world, builder)
        self._webspam_component(world, builder)
        return self._finalize_columns(world, builder)

    def _email_component(self, world: World, builder: ColumnBuilder) -> None:
        cfg = self.config
        rng_inclusion = self._rng("inclusion")
        rng_capture = self._rng("capture")
        delay = exponential_delay(cfg.delay_mean_minutes)
        for campaign in world.campaigns:
            if campaign.campaign_class is CampaignClass.DGA_POISON:
                continue
            for placement in campaign.placements:
                probability = self._inclusion_probability(placement.volume)
                if rng_inclusion.random() >= probability:
                    continue
                effective = min(placement.volume, cfg.volume_cap)
                n = poisson(rng_capture, effective * cfg.catch_rate)
                if n <= 0:
                    # Inclusion means the source saw it at least once.
                    n = 1
                times = scatter_times(
                    rng_capture,
                    n,
                    placement.start,
                    placement.end,
                    delay=delay,
                )
                builder.extend_burst(placement.domain, times)
                chaff_p = campaign.chaff_probability * cfg.chaff_factor
                for t in times:
                    if rng_capture.random() < chaff_p:
                        builder.append(
                            world.benign.sample_chaff(rng_capture), t
                        )

    def _webspam_component(
        self, world: World, builder: ColumnBuilder
    ) -> None:
        cfg = self.config
        rng = self._rng("webspam")
        tl = world.timeline
        for domain in world.hyb_webspam:
            n = max(1, poisson(rng, cfg.webspam_records_mean))
            builder.extend_burst(
                domain, scatter_times(rng, n, tl.start, tl.end)
            )
        # Scrapers also sweep up plenty of ordinary benign sites, which
        # is why the paper finds ~10-12% of Hyb on the Alexa/ODP lists.
        pool = sorted(world.benign.alexa_set | world.benign.odp_domains)
        n_benign = min(cfg.webspam_benign_domains, len(pool))
        for domain in rng.sample(pool, n_benign):
            n = max(1, poisson(rng, cfg.webspam_benign_records_mean))
            builder.extend_burst(
                domain, scatter_times(rng, n, tl.start, tl.end)
            )
