"""Domain blacklist feeds (dbl, uribl analogs).

Blacklists are *meta-feeds*: operationally-maintained lists driven by
combinations of real-time spam sources (Section 3.2).  They represent a
domain in a binary fashion -- listed at time t or not -- so their
datasets carry one record per domain and no volume information.

The evidence model reflects the two source families the paper infers:

* *broad sensors* (honeypot-like): evidence grows with a domain's
  emitted volume weighted by how broadly its campaigns address mail, and
* *user reports* (webmail-like): evidence grows with volume actually
  delivered to real users, catching quiet campaigns too.

The dbl analog leans on user-style sources (huge coverage, lists quiet
domains, sub-day latency); the uribl analog leans on broad sensors
(smaller list, but nearly all of the high-volume domains -- which is why
it tops the tagged-volume coverage in Figure 3).
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Dict, Optional

from repro.ecosystem.entities import AddressStrategy
from repro.ecosystem.world import World
from repro.feeds.base import FeedCollector, FeedDataset, FeedType
from repro.feeds.capture import delivered_placement_volume
from repro.io.columns import ColumnBuilder
from repro.stats.rng import derive_rng

#: How visible each address strategy is to broad (honeypot-like) sensors.
BROAD_SENSOR_REACH: Dict[AddressStrategy, float] = {
    AddressStrategy.BRUTE_FORCE: 1.0,
    AddressStrategy.HARVESTED: 0.7,
    AddressStrategy.PURCHASED: 0.05,
    AddressStrategy.SOCIAL: 0.02,
}


@dataclasses.dataclass(frozen=True)
class BlacklistConfig:
    """Evidence thresholds and latency for one blacklist."""

    name: str
    #: Volume scale at which broad-sensor evidence saturates.
    broad_volume_scale: float
    #: Delivered-volume scale at which user-report evidence saturates.
    user_volume_scale: float
    #: Weight of the user-report component in [0, 1].
    user_weight: float
    #: Mean listing latency after a domain first appears in spam.
    latency_mean_minutes: float
    #: Expected number of benign domains erroneously listed (the paper
    #: finds <1% for dbl, ~2% for uribl).
    benign_fp_domains: int = 5

    def __post_init__(self) -> None:
        if self.broad_volume_scale <= 0 or self.user_volume_scale <= 0:
            raise ValueError("volume scales must be positive")
        if not (0.0 <= self.user_weight <= 1.0):
            raise ValueError("user_weight out of range")
        if self.latency_mean_minutes <= 0:
            raise ValueError("latency must be positive")


class BlacklistFeed(FeedCollector):
    """One operational domain blacklist."""

    feed_type = FeedType.BLACKLIST
    has_volume = False

    def __init__(self, config: BlacklistConfig, seed: int):
        self.config = config
        self.name = config.name
        self._seed = seed
        #: Listing evidence per domain, computed once per world.  A
        #: typed field (not a dynamic attribute) so mypy sees it and it
        #: survives pickling for process-pool transport.
        self._evidence: Optional[Dict[str, float]] = None

    def _rng(self, label: str) -> random.Random:
        return derive_rng(self._seed, f"feed.{self.name}.{label}")

    def _domain_evidence(self, world: World) -> Dict[str, float]:
        """Accumulate listing evidence per advertised registered domain."""
        cfg = self.config
        evidence: Dict[str, float] = {}
        for campaign in world.campaigns:
            broad_reach = BROAD_SENSOR_REACH[campaign.strategy]
            for placement in campaign.placements:
                broad = placement.volume * broad_reach / cfg.broad_volume_scale
                user = (
                    cfg.user_weight
                    * delivered_placement_volume(campaign, placement)
                    / cfg.user_volume_scale
                )
                evidence[placement.domain] = (
                    evidence.get(placement.domain, 0.0) + broad + user
                )
        return evidence

    def collect(self, world: World) -> FeedDataset:
        """List domains whose evidence crosses the operational threshold."""
        cfg = self.config
        rng = self._rng("listing")
        first_advertised: Dict[str, int] = {}
        for domain, entries in world.placements_by_domain().items():
            first_advertised[domain] = min(p.start for _, p in entries)

        builder = ColumnBuilder()
        for domain in sorted(first_advertised):
            # Professional maintenance: never list names that do not
            # resolve (this keeps the DGA flood and junk out entirely).
            if not world.registry.is_registered(domain):
                continue
            evidence = self._evidence_cache(world).get(domain, 0.0)
            probability = 1.0 - math.exp(-evidence)
            if rng.random() >= probability:
                continue
            latency = rng.expovariate(1.0 / cfg.latency_mean_minutes)
            builder.append(domain, first_advertised[domain] + int(latency))

        self._benign_false_positives(world, builder)
        return self._finalize_columns(world, builder)

    def _evidence_cache(self, world: World) -> Dict[str, float]:
        if self._evidence is None:
            self._evidence = self._domain_evidence(world)
        return self._evidence

    def _benign_false_positives(
        self, world: World, builder: ColumnBuilder
    ) -> None:
        """The occasional mistaken listing of an ordinary benign site."""
        cfg = self.config
        if cfg.benign_fp_domains <= 0:
            return
        rng = self._rng("benign-fp")
        pool = sorted(world.benign.odp_domains | world.benign.alexa_set)
        n = min(cfg.benign_fp_domains, len(pool))
        chosen = rng.sample(pool, n)
        tl = world.timeline
        for domain in chosen:
            builder.append(domain, rng.randrange(tl.start, tl.end))
