"""Shared capture machinery for feed collectors.

Feeds do not see campaigns; they see messages.  Rather than simulating
the full billion-message stream, each collector computes its *exposure*
to every campaign placement (the fraction of that placement's emitted
messages the apparatus would capture) and draws the captured count from
a Poisson distribution, scattering sighting timestamps across the
placement's active interval.  This is statistically equivalent to
thinning the underlying message process and keeps the simulation
laptop-sized while preserving cross-feed structure: all feeds observe
the same placements, so overlap, proportionality and timing relations
emerge rather than being scripted.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, List, Optional, Sequence

from repro import obs
from repro.ecosystem.entities import AddressStrategy, Campaign, DomainPlacement
from repro.ecosystem.world import World
from repro.feeds.base import FeedRecord
from repro.io.columns import ColumnBuilder
from repro.simtime import SimTime

#: Safety cap on records drawn for a single placement, to bound memory
#: against misconfigured exposures.
MAX_RECORDS_PER_PLACEMENT = 100_000

#: Relative reach of each address-list strategy into a *real-user*
#: mailbox population (used by the human feed, blacklist evidence, and
#: the incoming mail oracle).
REAL_USER_REACH: Dict[AddressStrategy, float] = {
    AddressStrategy.BRUTE_FORCE: 0.6,
    AddressStrategy.HARVESTED: 0.8,
    AddressStrategy.PURCHASED: 1.0,
    AddressStrategy.SOCIAL: 1.0,
}


def poisson(rng: random.Random, lam: float) -> int:
    """Draw a Poisson variate.

    Uses Knuth's method for small means and a normal approximation for
    large ones (exact enough for capture counts).
    """
    if lam < 0:
        raise ValueError("lambda must be non-negative")
    if lam == 0:
        return 0
    if lam > 50:
        return max(0, int(round(rng.gauss(lam, math.sqrt(lam)))))
    threshold = math.exp(-lam)
    k = 0
    product = rng.random()
    while product > threshold:
        k += 1
        product *= rng.random()
    return k


def scatter_times(
    rng: random.Random,
    n: int,
    start: SimTime,
    end: SimTime,
    delay: Optional[Callable[[random.Random], float]] = None,
) -> List[SimTime]:
    """Draw *n* sighting times uniformly over [start, end).

    The columnar capture hot path: a burst of sightings of one domain
    is fully described by its time column, so no per-record tuple is
    ever allocated.  The RNG draw order is one uniform draw per record
    (plus one delay draw when *delay* is given), identical to the
    historical record-at-a-time path.

    *delay* optionally adds per-record observation latency in minutes
    (e.g. human report delay); the resulting time may fall outside the
    window and is filtered by the collector's finalize step.
    """
    if n <= 0:
        return []
    span = max(1, end - start)
    if delay is None:
        rand = rng.random
        return [start + int(rand() * span) for _ in range(n)]
    times: List[SimTime] = []
    for _ in range(n):
        t = start + int(rng.random() * span)
        times.append(t + int(delay(rng)))
    return times


def scatter_records(
    rng: random.Random,
    domain: str,
    n: int,
    start: SimTime,
    end: SimTime,
    delay: Optional[Callable[[random.Random], float]] = None,
) -> List[FeedRecord]:
    """Record-tuple view of :func:`scatter_times` (same draws)."""
    return [
        FeedRecord(domain, t)
        for t in scatter_times(rng, n, start, end, delay)
    ]


def capture_placement_times(
    rng: random.Random,
    placement: DomainPlacement,
    exposure: float,
    delay: Optional[Callable[[random.Random], float]] = None,
    cap: Optional[int] = None,
    not_before: Optional[SimTime] = None,
) -> List[SimTime]:
    """Capture one placement at the given *exposure* fraction.

    Returns the sighting-time column (the domain is the placement's);
    *not_before* truncates the feed's observation window: a small
    apparatus sits at one position in the spammer's address-list
    traversal and starts receiving a campaign's messages only once the
    traversal reaches it, so everything the campaign advertised earlier
    is missed.  The captured count shrinks proportionally.
    """
    if exposure <= 0:
        return []
    start = placement.start
    if not_before is not None and not_before > start:
        start = not_before
    if start >= placement.end:
        return []
    visible = (placement.end - start) / placement.duration
    expected = placement.volume * exposure * visible
    n = poisson(rng, expected)
    effective_cap = cap if cap is not None else MAX_RECORDS_PER_PLACEMENT
    if n > effective_cap:
        # The cap exists to bound memory against misconfigured
        # exposures; hitting it silently would skew volume analyses
        # with no trace, so account for every record it drops.
        obs.add("feeds.truncated_records", n - effective_cap)
        obs.add("feeds.truncated_placements")
        n = effective_cap
    return scatter_times(rng, n, start, placement.end, delay)


def capture_placement(
    rng: random.Random,
    placement: DomainPlacement,
    exposure: float,
    delay: Optional[Callable[[random.Random], float]] = None,
    cap: Optional[int] = None,
    not_before: Optional[SimTime] = None,
) -> List[FeedRecord]:
    """Record-tuple view of :func:`capture_placement_times`."""
    return [
        FeedRecord(placement.domain, t)
        for t in capture_placement_times(
            rng, placement, exposure, delay, cap, not_before
        )
    ]


def capture_campaign_into(
    builder: ColumnBuilder,
    rng: random.Random,
    campaign: Campaign,
    exposure: float,
    delay: Optional[Callable[[random.Random], float]] = None,
    chaff_sampler: Optional[Callable[[random.Random], str]] = None,
    chaff_probability: float = 0.0,
    onset_max_fraction: float = 0.0,
    respect_broadcast_lag: bool = False,
) -> None:
    """Capture all placements of *campaign* into a column builder.

    Each placement contributes one domain burst (a single list repeat
    plus one array extend, no per-record tuples).  When *chaff_sampler*
    is given, every captured message also reports a co-occurring benign
    domain with probability *chaff_probability* (feeds that report all
    URLs in a message pick up image hosts, DTD references and
    deliberately-inserted legitimate links); chaff sightings follow
    their placement's burst, exactly as the record-at-a-time path
    appended them.

    With *respect_broadcast_lag* the feed only observes each placement
    from its ``broadcast_start``: honeypot-type apparatus sees a domain
    once the broad blast begins, days after the domain's first quiet
    appearance in real mail (Figure 9).  *onset_max_fraction* adds the
    apparatus's own per-placement list-traversal jitter on top.
    """
    for placement in campaign.placements:
        not_before: Optional[SimTime] = None
        if respect_broadcast_lag:
            not_before = placement.broadcast_start
        if onset_max_fraction > 0:
            base = not_before if not_before is not None else placement.start
            remaining = max(0, placement.end - base)
            not_before = base + int(
                rng.random() * onset_max_fraction * remaining
            )
        times = capture_placement_times(
            rng, placement, exposure, delay, not_before=not_before
        )
        builder.extend_burst(placement.domain, times)
        if chaff_sampler is not None and chaff_probability > 0:
            for t in times:
                if rng.random() < chaff_probability:
                    builder.append(chaff_sampler(rng), t)


def capture_campaign(
    rng: random.Random,
    campaign: Campaign,
    exposure: float,
    delay: Optional[Callable[[random.Random], float]] = None,
    chaff_sampler: Optional[Callable[[random.Random], str]] = None,
    chaff_probability: float = 0.0,
    onset_max_fraction: float = 0.0,
    respect_broadcast_lag: bool = False,
) -> List[FeedRecord]:
    """Record-tuple view of :func:`capture_campaign_into` (same draws)."""
    builder = ColumnBuilder()
    capture_campaign_into(
        builder,
        rng,
        campaign,
        exposure,
        delay,
        chaff_sampler,
        chaff_probability,
        onset_max_fraction,
        respect_broadcast_lag,
    )
    block = builder.build()
    return [
        FeedRecord(d, t) for d, t in zip(block.domains, block.times)
    ]


def campaign_inclusion(
    rng: random.Random, probability: float
) -> bool:
    """Decide once per (feed, campaign) whether the feed sees it at all.

    An MX honeypot either is or is not on a campaign's generated address
    list; a honey-account network either was or was not harvested into
    it.  This per-campaign coin toss (as opposed to per-message) is what
    produces feed-exclusive domains.
    """
    if probability <= 0:
        return False
    if probability >= 1:
        return True
    return rng.random() < probability


def delivered_real_user_volume(campaign: Campaign) -> float:
    """Messages from *campaign* that land in real-user inboxes.

    Reach models how much of the address list points at real users;
    filter evasion models how much survives provider-side filtering.
    The incoming-mail oracle and the human feed both build on this.
    """
    reach = REAL_USER_REACH[campaign.strategy]
    return campaign.total_volume * reach * campaign.filter_evasion


def delivered_placement_volume(
    campaign: Campaign, placement: DomainPlacement
) -> float:
    """Per-placement share of :func:`delivered_real_user_volume`."""
    reach = REAL_USER_REACH[campaign.strategy]
    return placement.volume * reach * campaign.filter_evasion


def incoming_placement_volume(
    campaign: Campaign, placement: DomainPlacement
) -> float:
    """Messages *arriving* at real-user mail servers for a placement.

    Unlike :func:`delivered_placement_volume` this is pre-filtering:
    the incoming mail oracle counts messages at the provider's incoming
    servers, before any spam folder or rejection (Section 4.2.2), so
    loud campaigns dominate it even though almost none of their mail
    reaches an inbox.
    """
    reach = REAL_USER_REACH[campaign.strategy]
    return placement.volume * reach


def exponential_delay(mean_minutes: float) -> Callable[[random.Random], float]:
    """Return a sampler of exponential observation delays."""
    if mean_minutes <= 0:
        raise ValueError("mean delay must be positive")

    def sample(rng: random.Random) -> float:
        return rng.expovariate(1.0 / mean_minutes)

    return sample


def total_exposure_records(
    world: World,
    exposures: Dict[int, float],
) -> float:
    """Expected record count given per-campaign exposures (diagnostics)."""
    expected = 0.0
    for campaign in world.campaigns:
        exposure = exposures.get(campaign.campaign_id, 0.0)
        expected += campaign.total_volume * exposure
    return expected
