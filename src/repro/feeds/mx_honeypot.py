"""MX honeypot feeds (mx1, mx2, mx3).

An MX honeypot points a quiescent domain's MX record at an SMTP server
that accepts everything.  Such domains receive only spam addressed by
*brute force* (popular usernames sprayed at every domain with a valid
MX), so the feed sees broad, loud campaigns and almost nothing quiet
(Section 3.2).  False positives come from sender typos against
lexically-similar domains and from users entering dummy addresses at
sign-up forms (Section 3.3).
"""

from __future__ import annotations

import dataclasses
import random

from repro.ecosystem.entities import AddressStrategy, CampaignClass
from repro.ecosystem.world import World
from repro.feeds.base import FeedCollector, FeedDataset, FeedType
from repro.feeds.capture import (
    campaign_inclusion,
    capture_campaign_into,
    poisson,
    scatter_times,
)
from repro.io.columns import ColumnBuilder
from repro.stats.rng import derive_rng


@dataclasses.dataclass(frozen=True)
class MxHoneypotConfig:
    """Tuning of one MX honeypot's apparatus.

    ``inclusion_probability`` models whether the honeypot's domain
    portfolio landed on a given campaign's brute-force list at all;
    ``catch_rate`` is the captured fraction of an included campaign's
    emitted volume (proportional to portfolio size).
    """

    name: str
    inclusion_probability: float
    catch_rate: float
    #: Inclusion probability for harvest-addressed campaigns.  Honeypots
    #: built on abandoned domains had their addresses harvested during
    #: the domain's former life, so they attract a slice of
    #: harvest-targeted broadcast spam as well (Section 3.2).
    harvested_inclusion: float = 0.0
    #: Whether the Rustock DGA episode's address list covered this
    #: honeypot's domains (true only for mx2 in the paper's data).
    sees_dga: bool = False
    #: Captured fraction of the DGA episode's volume when seen.
    dga_catch_rate: float = 0.0
    #: Unique benign domains leaking in via typos/sign-up addresses.
    benign_fp_domains: int = 60
    #: Expected total records of such benign leakage.
    benign_fp_volume: float = 300.0
    #: Multiplier on each campaign's chaff probability (MX feeds report
    #: every URL in a message, so they inherit the full chaff load).
    chaff_factor: float = 1.0
    #: Maximum list-traversal phase: the honeypot's domains occupy one
    #: position in a campaign's address list, so its first sighting of a
    #: domain lags the campaign start by up to this fraction of each
    #: placement (drives the honeypot lag in Figure 9).
    onset_max_fraction: float = 0.10

    def __post_init__(self) -> None:
        if not (0.0 <= self.inclusion_probability <= 1.0):
            raise ValueError("inclusion_probability out of range")
        if self.catch_rate < 0:
            raise ValueError("catch_rate must be non-negative")


class MxHoneypotFeed(FeedCollector):
    """One MX honeypot feed collector."""

    feed_type = FeedType.MX_HONEYPOT
    has_volume = True

    def __init__(self, config: MxHoneypotConfig, seed: int):
        self.config = config
        self.name = config.name
        self._seed = seed

    def _rng(self, label: str) -> random.Random:
        return derive_rng(self._seed, f"feed.{self.name}.{label}")

    def collect(self, world: World) -> FeedDataset:
        """Capture the brute-force-addressed slice of the world."""
        cfg = self.config
        builder = ColumnBuilder()
        rng_inclusion = self._rng("inclusion")
        rng_capture = self._rng("capture")

        for campaign in world.campaigns:
            if campaign.strategy is AddressStrategy.BRUTE_FORCE:
                inclusion = cfg.inclusion_probability
            elif campaign.strategy is AddressStrategy.HARVESTED:
                inclusion = cfg.harvested_inclusion
            else:
                continue
            if campaign.campaign_class is CampaignClass.DGA_POISON:
                if not cfg.sees_dga:
                    continue
                capture_campaign_into(
                    builder, rng_capture, campaign, cfg.dga_catch_rate
                )
                continue
            if not campaign_inclusion(rng_inclusion, inclusion):
                continue
            capture_campaign_into(
                builder,
                rng_capture,
                campaign,
                cfg.catch_rate,
                chaff_sampler=world.benign.sample_chaff,
                chaff_probability=(
                    campaign.chaff_probability * cfg.chaff_factor
                ),
                onset_max_fraction=cfg.onset_max_fraction,
                respect_broadcast_lag=True,
            )

        self._benign_leakage(world, builder)
        return self._finalize_columns(world, builder)

    def _benign_leakage(self, world: World, builder: ColumnBuilder) -> None:
        """Typo mail and sign-up dummy addresses hitting the honeypot."""
        cfg = self.config
        rng = self._rng("benign-fp")
        pool = world.benign.alexa_ranked + world.benign.newsletter_domains
        if not pool or cfg.benign_fp_domains <= 0:
            return
        n_domains = min(cfg.benign_fp_domains, len(pool))
        chosen = rng.sample(pool, n_domains)
        tl = world.timeline
        per_domain = cfg.benign_fp_volume / n_domains
        for domain in chosen:
            n = max(1, poisson(rng, per_domain))
            builder.extend_burst(
                domain, scatter_times(rng, n, tl.start, tl.end)
            )
