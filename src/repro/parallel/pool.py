"""Persistent pre-forked worker pool.

:func:`~repro.parallel.fanout.ordered_fanout` forks a fresh pool for
every fan-out, which makes each stage pay the full fork bill: a
stop-the-world ``gc.collect``, page-table setup for the whole parent
heap, and interpreter warm-up in every child.  When a run fans out more
than once (collect, then render), that overhead is paid per stage and
can exceed the parallel win -- the failure mode BENCH_pipeline.json
documented on the way here.

:class:`WorkerPool` forks **once**, immediately after the expensive
shared state (the simulated world) is built, and keeps its workers
alive across stages.  Everything that exists at construction time is
inherited copy-on-write by every worker for the lifetime of the pool;
later stages ship only *small task descriptors* down a per-worker pipe:
a module-level function (pickled by reference, a few bytes) plus a
small payload such as a collector index.  Results come back tagged
with their submission index and are reduced in that order, so -- like
``ordered_fanout`` -- worker count is pure execution width: it can
change wall time, never bytes.

The per-task accounting protocol is shared with ``ordered_fanout``:
workers report ``(index, result, pid, duration, counter-deltas)``, the
parent folds counter deltas in task-index order (ints stay ints) and
reduces pid-keyed durations into densely renumbered per-worker metrics.
Serial, legacy-fanout, and pool runs therefore produce identical
counter snapshots and byte-identical artifacts.

Crash safety: task submission and result collection multiplex over the
result pipes *and* the worker process sentinels, so a worker dying
mid-task (OOM kill, ``os._exit``) raises :class:`WorkerCrashed` naming
the lost worker and its task instead of hanging the parent forever.
"""

from __future__ import annotations

import gc
import multiprocessing
import os
import signal
from multiprocessing.connection import Connection, wait
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro import obs
from repro.obs.hosttime import Stopwatch
from repro.parallel.fanout import (
    Number,
    _counter_snapshot,
    _record_worker_stats,
    _task_label,
    fork_available,
)

#: Message opcodes on the task pipe (parent -> worker).
_OP_TASK = "task"
_OP_STOP = "stop"


class WorkerCrashed(RuntimeError):
    """A pool worker died without returning its task's result."""


class PoolClosed(RuntimeError):
    """The pool was used after :meth:`WorkerPool.close`."""


def _worker_main(
    task_conn: Connection,
    result_conn: Connection,
    parent_conns: Sequence[Connection] = (),
) -> None:
    """Worker loop: run task descriptors until told to stop.

    Every task runs under the same accounting contract as
    ``fanout._run_indexed``: the worker measures its own duration
    through the :mod:`repro.obs` clock quarantine and ships the delta
    of every tracer counter the task incremented, so the parent can
    fold them back in and keep serial and parallel counter snapshots
    identical.  Failures are shipped as ``("err", ...)`` messages --
    the worker survives a failing task; only the parent decides
    whether to keep going.
    """
    # Ctrl-C delivers SIGINT to the whole foreground process group.
    # Workers must not race the parent with their own KeyboardInterrupt
    # tracebacks: they ignore the signal and exit when the parent's
    # interrupt path closes the pool (stop message or EOF on the pipe).
    # SIGTERM must stay *fatal*: the CLI installs a handler that raises
    # SystemExit, and a forked worker inheriting it could swallow the
    # parent's terminate() inside the task error path while blocked in
    # a full result pipe -- the worker would outlive the parent.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    # The fork copied every parent-side pipe end into this process:
    # our own task pipe's *write* end (recv() could never see EOF --
    # we would be holding it open ourselves) and earlier siblings'
    # result-pipe *read* ends (their sends could never raise
    # BrokenPipeError while we live).  Close them all so "the parent
    # is gone" is always observable from inside a worker.
    for conn in parent_conns:
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
    while True:
        try:
            message = task_conn.recv()
        except EOFError:
            # Parent went away without a clean shutdown; nothing left
            # to serve.
            break
        if message[0] == _OP_STOP:
            break
        _, index, fn, payload = message
        try:
            before = _counter_snapshot()
            watch = Stopwatch()
            result = fn(payload)
            elapsed = watch.elapsed()
            deltas = {
                name: value - before.get(name, 0)
                for name, value in _counter_snapshot().items()
                if value != before.get(name, 0)
            }
            result_conn.send(
                ("ok", index, result, os.getpid(), elapsed, deltas)
            )
        except BaseException as exc:  # noqa: BLE001 - shipped to parent
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                # Shutdown, not a task failure: die now so the parent
                # sees EOF instead of this worker wedging in another
                # blocking send on an already-full result pipe.
                raise
            try:
                result_conn.send(("err", index, exc))
            except Exception:
                # The exception itself does not pickle; ship a
                # description instead of dying silently.
                result_conn.send(
                    ("err", index, RuntimeError(repr(exc)))
                )


class WorkerPool:
    """A fixed-width pool of fork-inherited, pipe-fed workers.

    Fork placement is the whole point: construct the pool *after* the
    expensive shared state exists and every worker inherits it
    copy-on-write, paying the fork exactly once per run no matter how
    many stages fan out.  The parent heap is frozen into the permanent
    GC generation for the pool's lifetime so child collections do not
    dirty the inherited pages.

    Task functions must be module-level callables (they are pickled by
    reference); per-task inputs travel as small payloads.  State that
    is created *after* the fork can be installed once per stage with
    :meth:`broadcast` instead of being re-shipped with every task.
    """

    def __init__(self, width: int):
        # Pre-seed shutdown state so close()/__del__ are safe even if
        # construction raises before any worker exists.
        self._closed = True
        self._frozen = False
        self._workers: List[Any] = []
        self._task_conns: List[Connection] = []
        self._result_conns: List[Connection] = []
        if width < 2:
            raise ValueError("a worker pool needs at least 2 workers")
        if not fork_available():
            raise WorkerCrashed(
                "fork-based worker pools are unavailable on this platform"
            )
        context = multiprocessing.get_context("fork")
        # Freeze before forking (see module docstring): inherited
        # objects move to the permanent generation so worker GCs skip
        # them and their copy-on-write pages stay shared.
        gc.collect()
        gc.freeze()
        self._frozen = True
        # Open for business *before* forking so an interrupt landing
        # mid-construction still reaps the workers already started
        # (close() is a no-op while _closed is True).
        self._closed = False
        try:
            for _ in range(width):
                # Pipe(duplex=False) returns (read-end, write-end): the
                # parent writes tasks and reads results, the worker
                # holds the opposite ends.
                task_recv, task_send = context.Pipe(duplex=False)
                result_recv, result_send = context.Pipe(duplex=False)
                # Everything parent-side the fork is about to duplicate
                # into this worker; the worker closes them on startup.
                inherited = (
                    list(self._task_conns)
                    + list(self._result_conns)
                    + [task_send, result_recv]
                )
                process = context.Process(
                    target=_worker_main,
                    args=(task_recv, result_send, inherited),
                    daemon=True,
                )
                process.start()
                # The worker holds the other ends; closing ours makes
                # its recv() raise EOFError if the parent dies
                # uncleanly.
                task_recv.close()
                result_send.close()
                self._workers.append(process)
                self._task_conns.append(task_send)
                self._result_conns.append(result_recv)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def width(self) -> int:
        """Number of workers forked at construction."""
        return len(self._workers)

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run (or the pool broke)."""
        return self._closed

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        self.close()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise PoolClosed("worker pool has been closed")

    def _crash(self, worker: int, detail: str) -> "WorkerCrashed":
        # A dead worker cannot be trusted for further tasks; tear the
        # whole pool down so the caller's next attempt starts clean.
        self.close()
        return WorkerCrashed(
            f"pool worker {worker} (pid {self._workers[worker].pid}) "
            f"died {detail}"
        )

    def run_batch(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        labels: Optional[Sequence[str]] = None,
    ) -> List[Any]:
        """Run ``fn(payload)`` for every payload; results in input order.

        Tasks are dealt one at a time to whichever worker is free
        (completion-order *scheduling* for load balance), but results
        are slotted by submission index and counter deltas are folded
        in that same index order, so scheduling never shows up in the
        output.  ``labels`` (one per payload) names the per-task spans
        in the run manifest.
        """
        self._check_open()
        if labels is not None and len(labels) != len(payloads):
            raise ValueError("labels must match payloads one-to-one")
        n = len(payloads)
        results: List[Any] = [None] * n
        if n == 0:
            return results
        with obs.span("parallel.fanout", tasks=n, width=self.width, pool=True):
            watch = Stopwatch()
            meta: List[Tuple[int, int, float]] = []
            deltas_by_index: Dict[int, Dict[str, Number]] = {}
            busy: Dict[int, int] = {}  # worker -> outstanding task index
            next_task = 0
            for worker in range(min(self.width, n)):
                self._task_conns[worker].send(
                    (_OP_TASK, next_task, fn, payloads[next_task])
                )
                busy[worker] = next_task
                next_task += 1
            while busy:
                ready = wait(
                    [self._result_conns[w] for w in busy]
                    + [self._workers[w].sentinel for w in busy]
                )
                progressed = False
                for worker in sorted(busy):
                    conn = self._result_conns[worker]
                    if conn not in ready or not conn.poll():
                        continue
                    progressed = True
                    try:
                        message = conn.recv()
                    except EOFError:
                        # The worker died with its result pipe open;
                        # the EOF is the crash signal.
                        label = _task_label(labels, busy[worker])
                        raise self._crash(
                            worker, f"while running task {label!r}"
                        ) from None
                    if message[0] == "err":
                        _, index, error = message
                        del busy[worker]
                        raise error
                    _, index, result, pid, elapsed, deltas = message
                    results[index] = result
                    meta.append((index, pid, elapsed))
                    deltas_by_index[index] = deltas
                    if next_task < n:
                        self._task_conns[worker].send(
                            (_OP_TASK, next_task, fn, payloads[next_task])
                        )
                        busy[worker] = next_task
                        next_task += 1
                    else:
                        del busy[worker]
                if progressed:
                    continue
                for worker in sorted(busy):
                    if not self._workers[worker].is_alive():
                        label = _task_label(labels, busy[worker])
                        raise self._crash(
                            worker, f"while running task {label!r}"
                        )
            obs.add("fanout.tasks", n)
            # Fold worker counter increments back into the parent
            # tracer in task-index order: counters are sums, so the
            # merged totals match a serial run exactly.
            for index in range(n):
                deltas = deltas_by_index.get(index, {})
                for name in sorted(deltas):
                    obs.add(name, deltas[name])
            _record_worker_stats(meta, labels, watch.elapsed())
        return results

    def run_stream(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        labels: Optional[Sequence[str]] = None,
    ) -> "Iterator[Tuple[int, Any]]":
        """Like :meth:`run_batch`, but yield ``(index, result)`` pairs as
        they become available *in submission-index order*.

        The consumer sees results for payload 0, then 1, then 2 -- out-
        of-order completions are buffered until their turn -- so a
        downstream reduction can run incrementally (e.g. merging shard
        blobs) without holding every result at once; at most
        ``width - 1`` results are ever buffered.  Counter deltas are
        folded at emission time, in index order, keeping the counter
        fold identical to :meth:`run_batch` and to a serial run.  The
        generator must be fully consumed (or closed) before the next
        dispatch; an abandoned iterator leaves tasks in flight.
        """
        self._check_open()
        if labels is not None and len(labels) != len(payloads):
            raise ValueError("labels must match payloads one-to-one")
        n = len(payloads)
        if n == 0:
            return
        watch = Stopwatch()
        meta: List[Tuple[int, int, float]] = []
        pending: Dict[int, Any] = {}
        deltas_pending: Dict[int, Dict[str, Number]] = {}
        next_emit = 0
        busy: Dict[int, int] = {}
        next_task = 0
        for worker in range(min(self.width, n)):
            self._task_conns[worker].send(
                (_OP_TASK, next_task, fn, payloads[next_task])
            )
            busy[worker] = next_task
            next_task += 1
        while busy:
            ready = wait(
                [self._result_conns[w] for w in busy]
                + [self._workers[w].sentinel for w in busy]
            )
            progressed = False
            for worker in sorted(busy):
                conn = self._result_conns[worker]
                if conn not in ready or not conn.poll():
                    continue
                progressed = True
                try:
                    message = conn.recv()
                except EOFError:
                    label = _task_label(labels, busy[worker])
                    raise self._crash(
                        worker, f"while running task {label!r}"
                    ) from None
                if message[0] == "err":
                    _, index, error = message
                    del busy[worker]
                    raise error
                _, index, result, pid, elapsed, deltas = message
                pending[index] = result
                meta.append((index, pid, elapsed))
                deltas_pending[index] = deltas
                if next_task < n:
                    self._task_conns[worker].send(
                        (_OP_TASK, next_task, fn, payloads[next_task])
                    )
                    busy[worker] = next_task
                    next_task += 1
                else:
                    del busy[worker]
            if progressed:
                while next_emit in pending:
                    deltas = deltas_pending.pop(next_emit, {})
                    for name in sorted(deltas):
                        obs.add(name, deltas[name])
                    yield next_emit, pending.pop(next_emit)
                    next_emit += 1
                continue
            for worker in sorted(busy):
                if not self._workers[worker].is_alive():
                    label = _task_label(labels, busy[worker])
                    raise self._crash(
                        worker, f"while running task {label!r}"
                    )
        while next_emit in pending:
            deltas = deltas_pending.pop(next_emit, {})
            for name in sorted(deltas):
                obs.add(name, deltas[name])
            yield next_emit, pending.pop(next_emit)
            next_emit += 1
        obs.add("fanout.tasks", n)
        _record_worker_stats(meta, labels, watch.elapsed())

    def broadcast(self, fn: Callable[[Any], Any], payload: Any) -> List[Any]:
        """Run ``fn(payload)`` once in *every* worker; results by worker.

        This is the stage-boundary hook: state assembled after the fork
        (for example the collected feed columns) is installed into all
        workers in one shot, instead of riding along with every task.
        Broadcast effects are worker-local by design -- counter deltas
        are *not* folded back, because a serial run has no equivalent
        step -- so broadcast functions must only build caches, never
        produce results the run depends on.
        """
        self._check_open()
        with obs.span("parallel.pool.broadcast", width=self.width):
            for conn in self._task_conns:
                conn.send((_OP_TASK, 0, fn, payload))
            results = []
            for worker in range(self.width):
                conn = self._result_conns[worker]
                while not conn.poll(0.05):
                    if not self._workers[worker].is_alive():
                        raise self._crash(worker, "during a broadcast")
                try:
                    message = conn.recv()
                except EOFError:
                    raise self._crash(worker, "during a broadcast") from None
                if message[0] == "err":
                    raise message[2]
                results.append(message[2])
        return results

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------

    def close(self, timeout: float = 5.0) -> None:
        """Stop and reap all workers.  Safe to call any number of times.

        Shutdown escalates: STOP message, then SIGTERM, then SIGKILL.
        Between steps the parent drains each result pipe -- a worker
        mid-task when the pool closes may be blocked writing a large
        result into a full pipe, and it cannot notice the STOP (or be
        unblocked by the parent closing its ends: forked siblings hold
        duplicate descriptors) until someone reads.  SIGKILL is the
        backstop that makes close() unconditionally terminal, so an
        interrupted run can never leak live workers past process exit.
        """
        if self._closed:
            return
        self._closed = True
        for conn in self._task_conns:
            try:
                conn.send((_OP_STOP, None))
            except (BrokenPipeError, OSError):
                pass  # worker already gone
        for worker, process in enumerate(self._workers):
            self._drain_result(worker)
            process.join(timeout)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout)
            if process.is_alive():  # pragma: no cover - wedged in send
                process.kill()
                process.join(timeout)
        for conn in self._task_conns + self._result_conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        if self._frozen:
            self._frozen = False
            gc.unfreeze()

    def _drain_result(self, worker: int) -> None:
        """Discard buffered results so a send-blocked worker can exit."""
        conn = self._result_conns[worker]
        try:
            while self._workers[worker].is_alive() and conn.poll(0.05):
                conn.recv()
        except (EOFError, OSError):  # pragma: no cover - worker raced us
            pass
