"""Process-pool execution with index-ordered reduction.

The only state a worker receives is what it inherits at ``fork`` time
(copy-on-write) plus a task index; the only state it returns is the
task's result, keyed by that index.  Worker count is therefore pure
execution width: it can change wall time, never bytes.

Observability: every fan-out emits a ``parallel.fanout`` span with one
child span per task.  Workers measure their own task durations (the
clock read lives in :mod:`repro.obs.hosttime`, the quarantine module)
and report them alongside the result; the parent reduces them into
per-worker task counts, busy seconds, and stealable idle time — the
load-balance evidence a perf PR needs.  None of this affects results:
span metadata goes only to the manifest side channel.
"""

from __future__ import annotations

import gc
import multiprocessing
import os
import sys
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

from repro import obs
from repro.obs.hosttime import Stopwatch

T = TypeVar("T")

#: Tasks visible to forked workers.  Set immediately before the pool
#: forks and cleared after the reduction; workers index into it and
#: never mutate it.
_ACTIVE_TASKS: Optional[Sequence[Callable[[], Any]]] = None


class FanoutUnavailable(RuntimeError):
    """Raised when a caller demands parallelism the host cannot give."""


#: Whether the oversubscription warning has been printed yet; the
#: warning fires once per process so a run with many fan-outs does not
#: spam stderr.
_WARNED_OVERSUBSCRIBED = False


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value to a concrete worker count.

    ``None`` and ``1`` mean serial; ``0`` or negative mean "all cores".
    The resolved count only ever affects execution width -- results are
    reduced by task index -- which is why the ``cpu_count`` dependence
    below is legitimate.  Requesting more workers than the host has
    cores is honored (width never changes bytes) but warned about once
    on stderr and counted, since the extra workers only add contention.
    """
    global _WARNED_OVERSUBSCRIBED
    if jobs is None:
        return 1
    if jobs <= 0:
        return os.cpu_count() or 1  # reprolint: disable=REP007 -- width only
    cores = os.cpu_count() or 1  # reprolint: disable=REP007 -- warning only
    if jobs > cores:
        obs.add("parallel.oversubscribed")
        if not _WARNED_OVERSUBSCRIBED:
            # A worker that re-resolves jobs marks only its own copy of
            # the flag; the cost is at most one duplicate stderr line,
            # never a changed byte of output.
            _WARNED_OVERSUBSCRIBED = True  # reprolint: disable=REP009 -- advisory warn-once flag
            print(
                f"repro: --jobs {jobs} exceeds the {cores} available "
                "core(s); extra workers only add contention",
                file=sys.stderr,
            )
    return jobs


def fork_available() -> bool:
    """True when fork-based worker pools can be used here and now."""
    if multiprocessing.current_process().daemon:
        # Pool workers are daemonic and may not spawn children; nested
        # fan-outs inside a worker silently run serially instead.
        return False
    try:
        multiprocessing.get_context("fork")
    except ValueError:
        return False
    return True


#: A counter value: ints stay ints end-to-end so the parallel and
#: serial metric snapshots serialize identically (5, never 5.0).
Number = Union[int, float]


def _counter_snapshot() -> Dict[str, Number]:
    """Current counter values of the active tracer (empty when none)."""
    tracer = obs.current_tracer()
    if tracer is None:
        return {}
    return dict(tracer.metrics.snapshot()["counters"])


def _run_indexed(
    index: int,
) -> Tuple[int, Any, int, float, Dict[str, Number]]:
    """Worker body: run one inherited task, tag the result with its index.

    Alongside the result the worker reports its pid, the task's
    wall-clock duration (measured through the :mod:`repro.obs`
    quarantine), and the delta of every tracer counter the task
    incremented.  The worker's tracer is a copy-on-write clone of the
    parent's, so its increments would otherwise die with the process;
    shipping the per-task delta lets the parent fold them back in,
    keeping counters identical between serial and parallel runs.
    """
    tasks = _ACTIVE_TASKS
    if tasks is None:  # pragma: no cover - impossible under fork
        raise RuntimeError("no active fan-out task list in worker")
    before = _counter_snapshot()
    watch = Stopwatch()
    result = tasks[index]()
    elapsed = watch.elapsed()
    deltas = {
        name: value - before.get(name, 0)
        for name, value in _counter_snapshot().items()
        if value != before.get(name, 0)
    }
    return index, result, os.getpid(), elapsed, deltas


def _task_label(labels: Optional[Sequence[str]], index: int) -> str:
    if labels is not None:
        return labels[index]
    return f"task[{index}]"


def _record_worker_stats(
    meta: Sequence[Tuple[int, int, float]],
    labels: Optional[Sequence[str]],
    elapsed_s: float,
) -> None:
    """Reduce worker-reported (index, pid, duration) into trace data.

    Workers are renumbered densely by sorted pid so metric names do not
    depend on what pids the host handed out.
    """
    tracer = obs.current_tracer()
    if tracer is None:
        return
    by_pid: Dict[int, List[Tuple[int, float]]] = {}
    for index, pid, duration in meta:
        by_pid.setdefault(pid, []).append((index, duration))
    total_idle = 0.0
    for worker, pid in enumerate(sorted(by_pid)):
        ran = by_pid[pid]
        busy = sum(duration for _, duration in ran)
        idle = max(0.0, elapsed_s - busy)
        total_idle += idle
        tracer.metrics.add(f"worker.{worker}.tasks", len(ran))
        tracer.metrics.add(f"worker.{worker}.busy_s", busy)
        tracer.metrics.set_gauge(f"worker.{worker}.idle_s", idle)
        for index, duration in sorted(ran):
            tracer.attach_child(
                _task_label(labels, index), duration, worker=worker
            )
    tracer.metrics.add("fanout.idle_s", total_idle)
    tracer.annotate(workers=len(by_pid))


def ordered_fanout(
    tasks: Sequence[Callable[[], T]],
    jobs: Optional[int] = None,
    require: bool = False,
    labels: Optional[Sequence[str]] = None,
) -> List[T]:
    """Run *tasks* and return their results in task order.

    With ``jobs`` resolving to 1 (or without ``fork``) this is exactly
    ``[task() for task in tasks]``; otherwise the tasks run on a
    fork-based process pool and the results are reassembled by task
    index, so the output is byte-identical at any worker count.  Tasks
    may be closures or bound methods -- they are inherited through the
    fork, never pickled; only results cross the process boundary.

    ``require=True`` raises :class:`FanoutUnavailable` instead of
    degrading to serial when more than one worker was requested but the
    platform cannot fork.  ``labels`` (one per task) names the per-task
    trace spans when a tracer is active.
    """
    global _ACTIVE_TASKS
    if labels is not None and len(labels) != len(tasks):
        raise ValueError("labels must match tasks one-to-one")
    width = min(resolve_jobs(jobs), len(tasks))
    if width > 1 and not fork_available():
        if require:
            raise FanoutUnavailable(
                "parallel execution requested but fork-based worker "
                "pools are unavailable on this platform"
            )
        width = 1
    if width <= 1:
        with obs.span("parallel.fanout", tasks=len(tasks), width=1):
            results_serial: List[T] = []
            for index, task in enumerate(tasks):
                with obs.span(_task_label(labels, index), worker=0):
                    results_serial.append(task())
            obs.add("worker.0.tasks", len(tasks))
            obs.add("fanout.tasks", len(tasks))
        return results_serial

    context = multiprocessing.get_context("fork")
    # Fork-safe by construction: the parent publishes the task list
    # *before* forking so workers inherit it read-only; a nested
    # fan-out inside a (daemonic) worker takes the serial path above,
    # where its write stays process-local and is cleared in finally.
    _ACTIVE_TASKS = tasks  # reprolint: disable=REP009 -- pre-fork publication point
    # Freeze the parent heap into the permanent GC generation before
    # forking: child collections then skip the inherited objects, which
    # keeps their copy-on-write pages shared instead of being dirtied
    # by GC bookkeeping in every worker (measurably faster fan-outs
    # over a large inherited world).
    gc.collect()
    gc.freeze()
    try:
        with obs.span("parallel.fanout", tasks=len(tasks), width=width):
            watch = Stopwatch()
            with context.Pool(processes=width) as pool:
                # chunksize=1 for load balance across heavy, uneven
                # tasks.  Each worker tags its result with the task
                # index it ran; the reduction below is by that index,
                # never arrival.
                tagged = pool.map(  # reprolint: disable=REP007 -- index-tagged
                    _run_indexed, range(len(tasks)), chunksize=1
                )
            obs.add("fanout.tasks", len(tasks))
            # Fold each worker's counter increments back into the
            # parent tracer, in task-index order: counters are sums,
            # so the merged totals match a serial run exactly.
            for _, _, _, _, deltas in tagged:
                for name in sorted(deltas):
                    obs.add(name, deltas[name])
            _record_worker_stats(
                [
                    (index, pid, duration)
                    for index, _, pid, duration, _ in tagged
                ],
                labels,
                watch.elapsed(),
            )
    finally:
        _ACTIVE_TASKS = None  # reprolint: disable=REP009 -- clears the pre-fork publication
        gc.unfreeze()
    results: List[Any] = [None] * len(tasks)
    for index, value, _, _, _ in tagged:
        results[index] = value
    return results
