"""Process-pool execution with index-ordered reduction.

The only state a worker receives is what it inherits at ``fork`` time
(copy-on-write) plus a task index; the only state it returns is the
task's result, keyed by that index.  Worker count is therefore pure
execution width: it can change wall time, never bytes.
"""

from __future__ import annotations

import gc
import multiprocessing
import os
from typing import Any, Callable, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")

#: Tasks visible to forked workers.  Set immediately before the pool
#: forks and cleared after the reduction; workers index into it and
#: never mutate it.
_ACTIVE_TASKS: Optional[Sequence[Callable[[], Any]]] = None


class FanoutUnavailable(RuntimeError):
    """Raised when a caller demands parallelism the host cannot give."""


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value to a concrete worker count.

    ``None`` and ``1`` mean serial; ``0`` or negative mean "all cores".
    The resolved count only ever affects execution width -- results are
    reduced by task index -- which is why the ``cpu_count`` dependence
    below is legitimate.
    """
    if jobs is None:
        return 1
    if jobs <= 0:
        return os.cpu_count() or 1  # reprolint: disable=REP007 -- width only
    return jobs


def fork_available() -> bool:
    """True when fork-based worker pools can be used here and now."""
    if multiprocessing.current_process().daemon:
        # Pool workers are daemonic and may not spawn children; nested
        # fan-outs inside a worker silently run serially instead.
        return False
    try:
        multiprocessing.get_context("fork")
    except ValueError:
        return False
    return True


def _run_indexed(index: int) -> Tuple[int, Any]:
    """Worker body: run one inherited task, tag the result with its index."""
    tasks = _ACTIVE_TASKS
    if tasks is None:  # pragma: no cover - impossible under fork
        raise RuntimeError("no active fan-out task list in worker")
    return index, tasks[index]()


def ordered_fanout(
    tasks: Sequence[Callable[[], T]],
    jobs: Optional[int] = None,
    require: bool = False,
) -> List[T]:
    """Run *tasks* and return their results in task order.

    With ``jobs`` resolving to 1 (or without ``fork``) this is exactly
    ``[task() for task in tasks]``; otherwise the tasks run on a
    fork-based process pool and the results are reassembled by task
    index, so the output is byte-identical at any worker count.  Tasks
    may be closures or bound methods -- they are inherited through the
    fork, never pickled; only results cross the process boundary.

    ``require=True`` raises :class:`FanoutUnavailable` instead of
    degrading to serial when more than one worker was requested but the
    platform cannot fork.
    """
    global _ACTIVE_TASKS
    width = min(resolve_jobs(jobs), len(tasks))
    if width > 1 and not fork_available():
        if require:
            raise FanoutUnavailable(
                "parallel execution requested but fork-based worker "
                "pools are unavailable on this platform"
            )
        width = 1
    if width <= 1:
        return [task() for task in tasks]

    context = multiprocessing.get_context("fork")
    _ACTIVE_TASKS = tasks
    # Freeze the parent heap into the permanent GC generation before
    # forking: child collections then skip the inherited objects, which
    # keeps their copy-on-write pages shared instead of being dirtied
    # by GC bookkeeping in every worker (measurably faster fan-outs
    # over a large inherited world).
    gc.collect()
    gc.freeze()
    try:
        with context.Pool(processes=width) as pool:
            # chunksize=1 for load balance across heavy, uneven tasks.
            # Each worker tags its result with the task index it ran;
            # the reduction below is by that index, never arrival.
            pairs = pool.map(  # reprolint: disable=REP007 -- index-tagged
                _run_indexed, range(len(tasks)), chunksize=1
            )
    finally:
        _ACTIVE_TASKS = None
        gc.unfreeze()
    results: List[Any] = [None] * len(tasks)
    for index, value in pairs:
        results[index] = value
    return results
