"""Deterministic multi-core fan-out.

The pipeline's expensive stages decompose into tasks that are pure
functions of state created *before* the fan-out point: the ten feed
collectors are independent given the world (each draws from its own
``stats.rng.derive_rng(seed, label)`` stream), and every figure/table
is an independent function of the warmed analysis context.  This
package executes such task lists across worker processes under a
strict determinism contract:

* **Seeding** -- tasks never share an RNG; every stream is derived
  from the root seed plus a stable task label, so a task's draws are
  identical no matter which worker runs it, or when.
* **Ordered reduction** -- results are reassembled by *task index*,
  never completion order.  ``ordered_fanout(tasks, jobs=N)`` returns
  byte-identical output for every ``N`` (including 1).
* **Copy-on-write state** -- workers are forked, so they inherit the
  parent's world, datasets and memoized caches without serialization;
  only task results cross the process boundary.  Callers pre-warm any
  shared lazily-built index before fanning out so no worker pays the
  first-toucher cost.

On platforms without ``fork`` (or inside a daemonic worker, where
nesting pools is impossible) execution transparently degrades to the
serial path -- same results, one core.

Two executors implement the contract: :func:`ordered_fanout` forks a
throwaway pool per fan-out (simple, self-contained), and
:class:`~repro.parallel.pool.WorkerPool` forks **once** per run right
after the shared world is built and stays alive across stages, so
collect and render share a single fork bill (see the pool module
docstring for the placement rationale).
"""

from repro.parallel.fanout import (
    FanoutUnavailable,
    fork_available,
    ordered_fanout,
    resolve_jobs,
)
from repro.parallel.pool import PoolClosed, WorkerCrashed, WorkerPool

__all__ = [
    "FanoutUnavailable",
    "PoolClosed",
    "WorkerCrashed",
    "WorkerPool",
    "fork_available",
    "ordered_fanout",
    "resolve_jobs",
]
