"""Read-side queries over a persisted sighting store.

These are the answers ``python -m repro query`` renders: cross-run
first-seen lookups, per-feed gold rollups, and raw sighting listings.
Everything here is read-only and deterministic -- rows come out of the
backend in documented orders, and rendering uses the same aligned
:class:`~repro.reporting.tables.Table` style as the paper tables, so
query output is stable across backends and runs.
"""

from __future__ import annotations

from os.path import exists
from typing import List, Optional

from repro.reporting.tables import Table
from repro.simtime import MINUTES_PER_DAY
from repro.store.backend import StoreError
from repro.store.sightings import SightingStore


def open_store_file(path: str) -> SightingStore:
    """Open an existing store file for querying.

    Unlike :meth:`SightingStore.open`, this refuses to create a file:
    a query against a mistyped path should fail loudly, not
    materialize an empty database and report zero sightings.
    """
    if not exists(path):
        raise StoreError(f"{path}: no such store file")
    return SightingStore.open(path)


def _fmt_time(t: int) -> str:
    """Render a sim time as ``minute (day D)``."""
    return f"{t} (day {t // MINUTES_PER_DAY})"


def render_first_seen(store: SightingStore, domain: str) -> str:
    """Which feeds saw *domain*, ordered earliest sighting first."""
    rows = store.first_seen(domain)
    if not rows:
        return f"domain {domain!r}: no sightings in store"
    table = Table(
        ["feed", "first seen", "last seen", "sightings"],
        title=f"first-seen: {domain}",
    )
    for row in rows:
        table.add_row(
            row.feed,
            _fmt_time(row.first_seen),
            _fmt_time(row.last_seen),
            row.n_sightings,
        )
    return table.render()


def render_feed_stats(store: SightingStore) -> str:
    """Per-feed gold rollups plus bronze drop accounting."""
    summaries = store.feed_summaries()
    if not summaries:
        return "store holds no sightings"
    rejected = {
        (row.feed, row.reason): row.count
        for row in store.bronze_summary()
        if row.status != "ok"
    }
    rejected_per_feed: dict[str, int] = {}
    for (feed, _reason), count in rejected.items():
        rejected_per_feed[feed] = rejected_per_feed.get(feed, 0) + count
    table = Table(
        ["feed", "sightings", "domains", "first", "last", "rejected"],
        title="feed-stats",
    )
    for row in summaries:
        table.add_row(
            row.feed,
            row.sightings,
            row.domains,
            _fmt_time(row.first_seen),
            _fmt_time(row.last_seen),
            rejected_per_feed.get(row.feed, 0),
        )
    lines = [table.render()]
    if rejected:
        detail = Table(["feed", "reason", "count"], title="rejections")
        for feed, reason in sorted(rejected):
            detail.add_row(feed, reason, rejected[(feed, reason)])
        lines.append("")
        lines.append(detail.render())
    return "\n".join(lines)


def render_sightings(
    store: SightingStore,
    feed: Optional[str] = None,
    since_day: Optional[int] = None,
    limit: Optional[int] = None,
) -> str:
    """Silver sightings in landing order, optionally filtered."""
    since = None if since_day is None else since_day * MINUTES_PER_DAY
    rows = store.sightings(feed=feed, since=since, limit=limit)
    if not rows:
        return "no sightings match"
    table = Table(
        ["seq", "run", "feed", "domain", "time"], title="sightings"
    )
    for row in rows:
        table.add_row(
            row.seq, row.run_id, row.feed, row.domain, _fmt_time(row.time)
        )
    return table.render()


def render_runs(store: SightingStore) -> str:
    """Every run landed in the store."""
    rows = store.runs()
    if not rows:
        return "store holds no runs"
    table = Table(
        ["run", "seed", "config", "command"], title="runs"
    )
    for row in rows:
        table.add_row(
            row.run_id, row.seed, row.config_fingerprint[:12], row.command
        )
    return table.render()


__all__: List[str] = [
    "open_store_file",
    "render_feed_stats",
    "render_first_seen",
    "render_runs",
    "render_sightings",
]
