"""Silver-tier validation: the one gate between raw and stored sightings.

Every sighting that enters a :class:`~repro.store.sightings.SightingStore`
-- whether it came from a simulated feed collector, a replayed stream
batch, or an externally ingested URL feed -- passes through
:func:`validate_sighting` before it may join the silver tier.  The
checks are *structural*, not semantic: they enforce exactly the
invariants the rest of the system relies on (domains are
newline-free DNS names so the packed column transport round-trips;
times fit in a signed 64-bit integer so ``array("q")`` blobs and the
SQLite ``INTEGER`` affinity hold them losslessly).

Keeping this in one module is what lets the external-ingest path
(:mod:`repro.io.url_ingest`) and the store agree byte-for-byte on what
counts as a drop: both call the same function and report the same
reason strings.
"""

from __future__ import annotations

from typing import Optional

#: Inclusive bounds of a signed 64-bit integer -- the storage type of
#: every sighting timestamp (``array("q")`` column blobs and SQLite
#: ``INTEGER`` columns alike).
INT64_MIN = -(2**63)
INT64_MAX = 2**63 - 1

#: Rejection reasons :func:`validate_sighting` can return, in the order
#: the checks run.
REJECT_EMPTY_DOMAIN = "empty_domain"
REJECT_MALFORMED_DOMAIN = "malformed_domain"
REJECT_BAD_TIME = "bad_time"
REJECT_TIME_RANGE = "time_out_of_range"

#: Status strings for bronze-tier provenance rows.
STATUS_OK = "ok"
STATUS_REJECTED = "rejected"


def validate_sighting(domain: object, time: object) -> Optional[str]:
    """Validate one candidate sighting; returns a reason or ``None``.

    ``None`` means the sighting is silver-clean.  Otherwise the
    returned string names the first failed check (one of the
    ``REJECT_*`` constants above).
    """
    if not isinstance(domain, str) or not domain:
        return REJECT_EMPTY_DOMAIN
    # Domains are DNS labels: whitespace (newlines especially) would
    # corrupt the joined-string column blobs in feeds.base.PackedColumns
    # and the JSONL interchange format.
    if any(c.isspace() for c in domain) or not domain.isprintable():
        return REJECT_MALFORMED_DOMAIN
    # bool is an int subclass; a True timestamp is a lie, not minute 1.
    if isinstance(time, bool) or not isinstance(time, int):
        return REJECT_BAD_TIME
    if not (INT64_MIN <= time <= INT64_MAX):
        return REJECT_TIME_RANGE
    return None
