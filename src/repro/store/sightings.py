"""The sighting store: medallion-tier landing over a storage backend.

:class:`SightingStore` is the one write/read surface for durable feed
sightings.  Data moves through three tiers (the FeedSpine pattern):

* **bronze** -- every raw record exactly as received, one row each,
  whether it validated or not.  This is provenance: drops are visible,
  never silent.
* **silver** -- records that passed :func:`~repro.store.silver
  .validate_sighting`, normalized to ``(feed, domain, time)`` rows in
  landing order.  The stream layer replays these as checkpoint cursors.
* **gold** -- per-``(feed, domain)`` natural-key aggregates
  ``(n_sightings, first_seen, last_seen)``, merged commutatively
  (sum / min / max), which is why batch landing, stream landing, and
  interleaved re-landing all converge to the same gold tier.

Landing is **idempotent per run**: every run lands under a
``run_key`` (config fingerprint + seed), and a :class:`RunWriter`
skips the per-feed prefix that a previous landing of the same run
already wrote (bronze row counts are the cursors).  Running ``run
--store`` and then ``stream --store`` against the same file therefore
lands each sighting exactly once, and an interrupted stream resumes
where it stopped.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, NamedTuple, Optional, Tuple

from repro import obs
from repro.store.backend import (
    BronzeSummary,
    FeedSummary,
    GoldRow,
    MemoryBackend,
    RunRow,
    SilverRow,
    SqliteBackend,
    StorageProtocol,
)
from repro.store.silver import STATUS_OK, STATUS_REJECTED, validate_sighting


def run_key_for(config_fingerprint: str, seed: int) -> str:
    """The natural key identifying one (config, seed) run in a store."""
    return f"{config_fingerprint}:{seed}"


class LandingStats(NamedTuple):
    """What one landing call did."""

    bronze: int  #: raw rows appended this call
    silver: int  #: validated sightings appended this call
    rejected: int  #: raw rows appended with a rejection reason
    skipped: int  #: records skipped as an already-landed prefix

    def merge(self, other: "LandingStats") -> "LandingStats":
        return LandingStats(
            self.bronze + other.bronze,
            self.silver + other.silver,
            self.rejected + other.rejected,
            self.skipped + other.skipped,
        )


EMPTY_LANDING = LandingStats(0, 0, 0, 0)


class RunWriter:
    """Lands one run's sightings into a store, idempotently.

    Holds the run's identity plus per-feed cursors: how many bronze
    rows this run has already landed per feed.  Incoming records for a
    feed are matched positionally against that cursor -- deterministic
    collection order makes "same index" mean "same record" -- so
    re-landing a prefix is a cheap skip, never a duplicate.
    """

    def __init__(
        self, backend: StorageProtocol, run_id: int, created: bool
    ) -> None:
        self._backend = backend
        self.run_id = run_id
        self.created = created
        #: bronze rows already durable per feed (prefix to skip)
        self._cursors: Dict[str, int] = backend.bronze_counts(run_id)
        #: records offered per feed during this writer's lifetime
        self._positions: Dict[str, int] = {}

    def cursor(self, feed: str) -> int:
        """Bronze rows landed so far for *feed* (durable + this session)."""
        return self._cursors.get(feed, 0)

    def set_position(self, feed: str, position: int) -> None:
        """Declare where in the run's record sequence *feed* resumes.

        A writer normally assumes callers offer each feed's records
        from the start of the run (position 0) and skips the landed
        prefix.  A resumed stream starts mid-sequence instead; it
        declares its cursor here so position bookkeeping stays aligned
        with the records actually offered.
        """
        if position < 0:
            raise ValueError("position must be non-negative")
        self._positions[feed] = position

    def land_sightings(
        self,
        feed: str,
        sightings: Iterable[Tuple[str, int]],
        payloads: Optional[Iterable[str]] = None,
    ) -> LandingStats:
        """Land ``(domain, time)`` sightings for one feed.

        Every record gets a bronze row (with its validation status);
        valid records additionally get a silver row and fold into the
        gold aggregate.  Records inside the already-landed prefix are
        skipped.  *payloads*, when given, supplies the bronze raw-form
        string per record; otherwise a canonical ``"domain time"``
        rendering is stored.
        """
        bronze_rows: List[Tuple[str, str, str, str]] = []
        silver_rows: List[Tuple[str, str, int]] = []
        gold: Dict[Tuple[str, str], List[int]] = {}
        skipped = 0
        rejected = 0

        position = self._positions.get(feed, 0)
        cursor = self._cursors.get(feed, 0)
        payload_iter = iter(payloads) if payloads is not None else None
        for domain, time in sightings:
            payload = (
                next(payload_iter)
                if payload_iter is not None
                else f"{domain} {time}"
            )
            if position < cursor:
                position += 1
                skipped += 1
                continue
            position += 1
            reason = validate_sighting(domain, time)
            if reason is None:
                bronze_rows.append((feed, payload, STATUS_OK, ""))
                silver_rows.append((feed, domain, time))
                cell = gold.get((feed, domain))
                if cell is None:
                    gold[(feed, domain)] = [1, time, time]
                else:
                    cell[0] += 1
                    if time < cell[1]:
                        cell[1] = time
                    if time > cell[2]:
                        cell[2] = time
            else:
                bronze_rows.append((feed, payload, STATUS_REJECTED, reason))
                rejected += 1

        self._positions[feed] = position
        if bronze_rows:
            self._backend.append_bronze(self.run_id, bronze_rows)
            self._cursors[feed] = cursor + len(bronze_rows)
        if silver_rows:
            self._backend.append_silver(self.run_id, silver_rows)
        if gold:
            self._backend.merge_gold(
                [
                    (f, d, cell[0], cell[1], cell[2])
                    for (f, d), cell in sorted(gold.items())
                ]
            )

        stats = LandingStats(
            bronze=len(bronze_rows),
            silver=len(silver_rows),
            rejected=rejected,
            skipped=skipped,
        )
        self._note(stats)
        return stats

    def land_raw(
        self,
        feed: str,
        payload: str,
        domain: Optional[str],
        time: Optional[int],
        reject_reason: Optional[str] = None,
    ) -> Tuple[Optional[str], bool]:
        """Land one raw external record (the ingest path).

        *reject_reason* carries an upstream parse failure (the record
        never yielded a sighting); otherwise the candidate ``(domain,
        time)`` runs through silver validation here.  Returns
        ``(final_reason, landed)`` where *landed* is False when the
        record fell inside the already-landed prefix.  The reason is
        computed either way, so callers keep identical accounting on
        re-landing.
        """
        reason = reject_reason
        if reason is None:
            reason = validate_sighting(domain, time)

        position = self._positions.get(feed, 0)
        cursor = self._cursors.get(feed, 0)
        self._positions[feed] = position + 1
        if position < cursor:
            self._note(LandingStats(0, 0, 0, 1))
            return reason, False

        if reason is None:
            assert domain is not None and time is not None
            self._backend.append_bronze(
                self.run_id, [(feed, payload, STATUS_OK, "")]
            )
            self._backend.append_silver(
                self.run_id, [(feed, domain, time)]
            )
            self._backend.merge_gold([(feed, domain, 1, time, time)])
            stats = LandingStats(1, 1, 0, 0)
        else:
            self._backend.append_bronze(
                self.run_id, [(feed, payload, STATUS_REJECTED, reason)]
            )
            stats = LandingStats(1, 0, 1, 0)
        self._cursors[feed] = cursor + 1
        self._note(stats)
        return reason, True

    def finish(self) -> None:
        """Commit everything landed through this writer."""
        self._backend.flush()

    @staticmethod
    def _note(stats: LandingStats) -> None:
        if stats.bronze:
            obs.add("store.bronze_rows", stats.bronze)
        if stats.silver:
            obs.add("store.silver_rows", stats.silver)
        if stats.rejected:
            obs.add("store.rejected_rows", stats.rejected)
        if stats.skipped:
            obs.add("store.skipped_rows", stats.skipped)


class SightingStore:
    """Read/write facade over one storage backend."""

    def __init__(self, backend: StorageProtocol) -> None:
        self.backend = backend

    @classmethod
    def open(cls, path: str, cross_thread: bool = False) -> "SightingStore":
        """Open (or create) a durable SQLite-backed store at *path*.

        ``cross_thread=True`` allows the connection to be used from
        threads other than the opener's; the caller must serialize
        access (the serve daemon does, behind one lock).
        """
        return cls(SqliteBackend(path, cross_thread=cross_thread))

    @classmethod
    def in_memory(cls) -> "SightingStore":
        """An ephemeral store for tests and one-shot runs."""
        return cls(MemoryBackend())

    # -- writing -------------------------------------------------------

    def open_run(
        self,
        run_key: str,
        seed: int,
        config_fingerprint: str,
        command: str,
    ) -> RunWriter:
        """Begin (or resume) landing the run identified by *run_key*."""
        run_id, created = self.backend.begin_run(
            run_key, seed, config_fingerprint, command
        )
        if created:
            self.backend.flush()
            obs.add("store.runs_created")
        else:
            obs.add("store.runs_resumed")
        return RunWriter(self.backend, run_id, created)

    # -- reading -------------------------------------------------------

    def runs(self) -> List[RunRow]:
        return self.backend.runs()

    def run_by_key(self, run_key: str) -> Optional[RunRow]:
        return self.backend.run_by_key(run_key)

    def first_seen(self, domain: str) -> List[GoldRow]:
        """Every feed's aggregate for *domain*, earliest sighting first."""
        return self.backend.first_seen(domain)

    def gold_rows(self, feed: Optional[str] = None) -> List[GoldRow]:
        return self.backend.gold_rows(feed)

    def feed_summaries(self) -> List[FeedSummary]:
        return self.backend.feed_summaries()

    def bronze_summary(self) -> List[BronzeSummary]:
        return self.backend.bronze_summary()

    def sightings(
        self,
        feed: Optional[str] = None,
        since: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> List[SilverRow]:
        return self.backend.silver_rows(feed=feed, since=since, limit=limit)

    def silver_prefix(
        self, run_id: int, feed: str, limit: Optional[int] = None
    ) -> List[Tuple[str, int]]:
        """One run's first *limit* silver sightings for *feed*."""
        return self.backend.silver_for_feed(run_id, feed, limit)

    def close(self) -> None:
        self.backend.close()

    def __enter__(self) -> "SightingStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"SightingStore({self.backend!r})"
