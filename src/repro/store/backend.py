"""Storage backends for the sighting store.

One :class:`StorageProtocol`, two implementations with identical
observable behavior:

* :class:`MemoryBackend` -- plain dicts and lists; tests, ephemeral
  runs, and anything that should leave no file behind.
* :class:`SqliteBackend` -- one durable SQLite file; batched writes
  inside explicit transactions, so a crash mid-landing leaves the
  previous committed state intact.

The protocol is deliberately dumb: append rows, merge gold aggregates,
answer ordered queries.  All tier logic (validation, natural-key
bookkeeping, idempotent re-landing) lives one layer up in
:class:`~repro.store.sightings.SightingStore`, so backends can be
swapped -- or a server backend added -- without touching semantics.
Every query is ordered by explicit deterministic keys (never
insertion-hash order), which is what makes the two backends
observationally equivalent and keeps query output reproducible.
"""

from __future__ import annotations

import os
import sqlite3
from typing import (
    Dict,
    List,
    NamedTuple,
    Optional,
    Protocol,
    Sequence,
    Tuple,
)

#: Store format marker and version, kept in the meta tier of every
#: backend; readers fail loudly on foreign or future files.
STORE_FORMAT = "repro-sighting-store"
STORE_VERSION = 1

#: Column tuples of every store table, in CREATE TABLE order.  This is
#: the schema contract between the SQL below, the row NamedTuples
#: above, and files written by earlier runs: reprolint's REP012 checks
#: every SQL string in this module against these declarations.
STORE_SCHEMA_COLUMNS: Dict[str, Tuple[str, ...]] = {
    "meta": ("key", "value"),
    "runs": ("run_id", "run_key", "seed", "config_fingerprint", "command"),
    "bronze": ("seq", "run_id", "feed", "payload", "status", "reason"),
    "silver": ("seq", "run_id", "feed", "domain", "time"),
    "gold": ("feed", "domain", "n_sightings", "first_seen", "last_seen"),
}

#: Fingerprint pinning (STORE_VERSION, STORE_SCHEMA_COLUMNS).  REP012
#: recomputes this from the declarations above; editing a column tuple
#: without bumping the version (and re-pinning) fails the lint.
#: Regenerate with ``python -m repro lint --store-schema-pin``.
STORE_SCHEMA_PIN = "v1:01f0b9393f24"


class StoreError(ValueError):
    """Raised when a store file or payload is invalid or mismatched."""


class RunRow(NamedTuple):
    """One landed run: the provenance unit of the store."""

    run_id: int
    run_key: str
    seed: int
    config_fingerprint: str
    command: str


class BronzeRow(NamedTuple):
    """One raw record exactly as received (kept even when rejected)."""

    seq: int
    run_id: int
    feed: str
    payload: str
    status: str
    reason: str


class SilverRow(NamedTuple):
    """One validated sighting, in landing order."""

    seq: int
    run_id: int
    feed: str
    domain: str
    time: int


class GoldRow(NamedTuple):
    """Per-(feed, domain) natural-key aggregate the analyses read."""

    feed: str
    domain: str
    n_sightings: int
    first_seen: int
    last_seen: int


class FeedSummary(NamedTuple):
    """Per-feed rollup over the gold tier."""

    feed: str
    sightings: int
    domains: int
    first_seen: int
    last_seen: int


class BronzeSummary(NamedTuple):
    """Count of bronze rows per (feed, status, reason)."""

    feed: str
    status: str
    reason: str
    count: int


class StorageProtocol(Protocol):
    """What a sighting-store backend must provide.

    Write methods are batch-shaped (one call per landing batch);
    read methods return rows in documented deterministic orders.
    ``flush`` makes everything written so far durable; backends
    without durability (memory) treat it as a no-op.
    """

    # -- writes --------------------------------------------------------

    def begin_run(
        self, run_key: str, seed: int, config_fingerprint: str, command: str
    ) -> Tuple[int, bool]:
        """Find or create the run for *run_key*; returns (id, created)."""
        ...

    def append_bronze(
        self, run_id: int, rows: Sequence[Tuple[str, str, str, str]]
    ) -> None:
        """Append raw ``(feed, payload, status, reason)`` rows."""
        ...

    def append_silver(
        self, run_id: int, rows: Sequence[Tuple[str, str, int]]
    ) -> None:
        """Append validated ``(feed, domain, time)`` sightings."""
        ...

    def merge_gold(
        self, entries: Sequence[Tuple[str, str, int, int, int]]
    ) -> None:
        """Merge ``(feed, domain, n, first, last)`` aggregate deltas."""
        ...

    def flush(self) -> None:
        """Commit everything appended so far."""
        ...

    def close(self) -> None:
        """Flush and release any underlying resources."""
        ...

    # -- reads ---------------------------------------------------------

    def runs(self) -> List[RunRow]:
        """Every landed run, ordered by run id."""
        ...

    def run_by_key(self, run_key: str) -> Optional[RunRow]:
        """The run landed under *run_key*, if any."""
        ...

    def bronze_counts(self, run_id: int) -> Dict[str, int]:
        """Bronze rows per feed for one run (the landing cursors)."""
        ...

    def bronze_summary(self) -> List[BronzeSummary]:
        """Counts per (feed, status, reason), ordered by that key."""
        ...

    def silver_rows(
        self,
        feed: Optional[str] = None,
        since: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> List[SilverRow]:
        """Silver sightings in landing order, optionally filtered."""
        ...

    def silver_for_feed(
        self, run_id: int, feed: str, limit: Optional[int] = None
    ) -> List[Tuple[str, int]]:
        """One run's ``(domain, time)`` prefix for *feed*, landing order."""
        ...

    def gold_rows(self, feed: Optional[str] = None) -> List[GoldRow]:
        """Gold aggregates ordered by (feed, domain)."""
        ...

    def first_seen(self, domain: str) -> List[GoldRow]:
        """Which feeds saw *domain*, ordered by (first_seen, feed)."""
        ...

    def feed_summaries(self) -> List[FeedSummary]:
        """Per-feed gold rollups, ordered by feed."""
        ...


# ----------------------------------------------------------------------
# In-memory backend
# ----------------------------------------------------------------------


class MemoryBackend:
    """Ephemeral backend: everything in plain Python containers."""

    def __init__(self) -> None:
        self._runs: Dict[str, RunRow] = {}
        self._bronze: List[BronzeRow] = []
        self._silver: List[SilverRow] = []
        #: (feed, domain) -> [n, first, last]
        self._gold: Dict[Tuple[str, str], List[int]] = {}

    # -- writes --------------------------------------------------------

    def begin_run(
        self, run_key: str, seed: int, config_fingerprint: str, command: str
    ) -> Tuple[int, bool]:
        existing = self._runs.get(run_key)
        if existing is not None:
            return existing.run_id, False
        row = RunRow(
            run_id=len(self._runs) + 1,
            run_key=run_key,
            seed=seed,
            config_fingerprint=config_fingerprint,
            command=command,
        )
        self._runs[run_key] = row
        return row.run_id, True

    def append_bronze(
        self, run_id: int, rows: Sequence[Tuple[str, str, str, str]]
    ) -> None:
        seq = len(self._bronze)
        for offset, (feed, payload, status, reason) in enumerate(rows):
            self._bronze.append(
                BronzeRow(seq + offset + 1, run_id, feed, payload, status, reason)
            )

    def append_silver(
        self, run_id: int, rows: Sequence[Tuple[str, str, int]]
    ) -> None:
        seq = len(self._silver)
        for offset, (feed, domain, time) in enumerate(rows):
            self._silver.append(
                SilverRow(seq + offset + 1, run_id, feed, domain, time)
            )

    def merge_gold(
        self, entries: Sequence[Tuple[str, str, int, int, int]]
    ) -> None:
        for feed, domain, n, first, last in entries:
            cell = self._gold.get((feed, domain))
            if cell is None:
                self._gold[(feed, domain)] = [n, first, last]
            else:
                cell[0] += n
                if first < cell[1]:
                    cell[1] = first
                if last > cell[2]:
                    cell[2] = last

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass

    # -- reads ---------------------------------------------------------

    def runs(self) -> List[RunRow]:
        return sorted(self._runs.values(), key=lambda r: r.run_id)

    def run_by_key(self, run_key: str) -> Optional[RunRow]:
        return self._runs.get(run_key)

    def bronze_counts(self, run_id: int) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for row in self._bronze:
            if row.run_id == run_id:
                counts[row.feed] = counts.get(row.feed, 0) + 1
        return {feed: counts[feed] for feed in sorted(counts)}

    def bronze_summary(self) -> List[BronzeSummary]:
        counts: Dict[Tuple[str, str, str], int] = {}
        for row in self._bronze:
            key = (row.feed, row.status, row.reason)
            counts[key] = counts.get(key, 0) + 1
        return [
            BronzeSummary(feed, status, reason, counts[(feed, status, reason)])
            for feed, status, reason in sorted(counts)
        ]

    def silver_rows(
        self,
        feed: Optional[str] = None,
        since: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> List[SilverRow]:
        rows = [
            row
            for row in self._silver
            if (feed is None or row.feed == feed)
            and (since is None or row.time >= since)
        ]
        if limit is not None:
            rows = rows[:limit]
        return rows

    def silver_for_feed(
        self, run_id: int, feed: str, limit: Optional[int] = None
    ) -> List[Tuple[str, int]]:
        rows = [
            (row.domain, row.time)
            for row in self._silver
            if row.run_id == run_id and row.feed == feed
        ]
        if limit is not None:
            rows = rows[:limit]
        return rows

    def gold_rows(self, feed: Optional[str] = None) -> List[GoldRow]:
        keys = [
            key for key in sorted(self._gold) if feed is None or key[0] == feed
        ]
        return [
            GoldRow(f, d, self._gold[(f, d)][0], self._gold[(f, d)][1],
                    self._gold[(f, d)][2])
            for f, d in keys
        ]

    def first_seen(self, domain: str) -> List[GoldRow]:
        rows = [
            GoldRow(f, d, cell[0], cell[1], cell[2])
            for (f, d), cell in self._gold.items()
            if d == domain
        ]
        return sorted(rows, key=lambda r: (r.first_seen, r.feed))

    def feed_summaries(self) -> List[FeedSummary]:
        per_feed: Dict[str, List[int]] = {}
        for (feed, _domain), (n, first, last) in self._gold.items():
            cell = per_feed.get(feed)
            if cell is None:
                per_feed[feed] = [n, 1, first, last]
            else:
                cell[0] += n
                cell[1] += 1
                if first < cell[2]:
                    cell[2] = first
                if last > cell[3]:
                    cell[3] = last
        return [
            FeedSummary(feed, *per_feed[feed]) for feed in sorted(per_feed)
        ]

    def __repr__(self) -> str:
        return (
            f"MemoryBackend(runs={len(self._runs)}, "
            f"bronze={len(self._bronze)}, silver={len(self._silver)}, "
            f"gold={len(self._gold)})"
        )


# ----------------------------------------------------------------------
# SQLite backend
# ----------------------------------------------------------------------

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta(
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs(
    run_id INTEGER PRIMARY KEY,
    run_key TEXT NOT NULL UNIQUE,
    seed INTEGER NOT NULL,
    config_fingerprint TEXT NOT NULL,
    command TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS bronze(
    seq INTEGER PRIMARY KEY,
    run_id INTEGER NOT NULL REFERENCES runs(run_id),
    feed TEXT NOT NULL,
    payload TEXT NOT NULL,
    status TEXT NOT NULL,
    reason TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS silver(
    seq INTEGER PRIMARY KEY,
    run_id INTEGER NOT NULL REFERENCES runs(run_id),
    feed TEXT NOT NULL,
    domain TEXT NOT NULL,
    time INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS gold(
    feed TEXT NOT NULL,
    domain TEXT NOT NULL,
    n_sightings INTEGER NOT NULL,
    first_seen INTEGER NOT NULL,
    last_seen INTEGER NOT NULL,
    PRIMARY KEY(feed, domain)
);
CREATE INDEX IF NOT EXISTS idx_bronze_run_feed ON bronze(run_id, feed);
CREATE INDEX IF NOT EXISTS idx_silver_run_feed ON silver(run_id, feed, seq);
CREATE INDEX IF NOT EXISTS idx_silver_feed ON silver(feed, seq);
CREATE INDEX IF NOT EXISTS idx_gold_domain ON gold(domain);
"""

_GOLD_UPSERT = """
INSERT INTO gold(feed, domain, n_sightings, first_seen, last_seen)
VALUES(?, ?, ?, ?, ?)
ON CONFLICT(feed, domain) DO UPDATE SET
    n_sightings = n_sightings + excluded.n_sightings,
    first_seen = min(first_seen, excluded.first_seen),
    last_seen = max(last_seen, excluded.last_seen)
"""


class SqliteBackend:
    """Durable single-file backend.

    Writes accumulate inside one SQLite transaction and become visible
    (and durable) at :meth:`flush`; a process killed mid-landing rolls
    back to the previous committed state, so the file never holds a
    half-landed batch.  Opening an existing file validates the embedded
    format marker and version.
    """

    def __init__(self, path: str, cross_thread: bool = False) -> None:
        self.path = path
        existed = path != ":memory:" and os.path.exists(path)
        try:
            # cross_thread drops SQLite's same-thread check for callers
            # (the serve daemon) that open on one thread and query from
            # request threads behind their own lock; the backend itself
            # never synchronizes.
            self._conn = sqlite3.connect(
                path, check_same_thread=not cross_thread
            )
        except sqlite3.Error as exc:
            raise StoreError(f"{path}: cannot open store: {exc}") from exc
        try:
            if existed:
                self._validate_meta()
            else:
                self._conn.executescript(_SCHEMA)
                self._conn.execute(
                    "INSERT OR REPLACE INTO meta(key, value) VALUES(?, ?)",
                    ("format", STORE_FORMAT),
                )
                self._conn.execute(
                    "INSERT OR REPLACE INTO meta(key, value) VALUES(?, ?)",
                    ("version", str(STORE_VERSION)),
                )
                self._conn.commit()
        except BaseException:
            self._conn.close()
            raise

    def _validate_meta(self) -> None:
        try:
            rows = dict(
                self._conn.execute("SELECT key, value FROM meta").fetchall()
            )
        except sqlite3.Error as exc:
            raise StoreError(
                f"{self.path}: not a sighting store: {exc}"
            ) from exc
        if rows.get("format") != STORE_FORMAT:
            raise StoreError(
                f"{self.path}: unrecognized store format "
                f"{rows.get('format')!r}"
            )
        version = rows.get("version")
        if version != str(STORE_VERSION):
            raise StoreError(
                f"{self.path}: unsupported store version {version!r} "
                f"(expected {STORE_VERSION})"
            )
        # Structural check: a file can carry a plausible meta table yet
        # miss (or mangle) the data tables — e.g. a foreign SQLite file
        # or a half-converted store.  Failing here turns what would be
        # a raw OperationalError mid-query into a clean StoreError at
        # open time.
        for table, expected in STORE_SCHEMA_COLUMNS.items():
            try:
                info = self._conn.execute(
                    f"PRAGMA table_info({table})"
                ).fetchall()
            except sqlite3.Error as exc:
                raise StoreError(
                    f"{self.path}: not a sighting store: {exc}"
                ) from exc
            present = tuple(row[1] for row in info)
            if not info:
                raise StoreError(
                    f"{self.path}: not a sighting store: missing "
                    f"table {table!r}"
                )
            if present != expected:
                raise StoreError(
                    f"{self.path}: not a sighting store: table "
                    f"{table!r} has columns {present}, expected "
                    f"{expected}"
                )

    # -- writes --------------------------------------------------------

    def begin_run(
        self, run_key: str, seed: int, config_fingerprint: str, command: str
    ) -> Tuple[int, bool]:
        row = self._conn.execute(
            "SELECT run_id FROM runs WHERE run_key = ?", (run_key,)
        ).fetchone()
        if row is not None:
            return int(row[0]), False
        cursor = self._conn.execute(
            "INSERT INTO runs(run_key, seed, config_fingerprint, command) "
            "VALUES(?, ?, ?, ?)",
            (run_key, seed, config_fingerprint, command),
        )
        run_id = cursor.lastrowid
        assert run_id is not None
        return int(run_id), True

    def append_bronze(
        self, run_id: int, rows: Sequence[Tuple[str, str, str, str]]
    ) -> None:
        self._conn.executemany(
            "INSERT INTO bronze(run_id, feed, payload, status, reason) "
            "VALUES(?, ?, ?, ?, ?)",
            [(run_id, *row) for row in rows],
        )

    def append_silver(
        self, run_id: int, rows: Sequence[Tuple[str, str, int]]
    ) -> None:
        self._conn.executemany(
            "INSERT INTO silver(run_id, feed, domain, time) "
            "VALUES(?, ?, ?, ?)",
            [(run_id, *row) for row in rows],
        )

    def merge_gold(
        self, entries: Sequence[Tuple[str, str, int, int, int]]
    ) -> None:
        self._conn.executemany(_GOLD_UPSERT, entries)

    def flush(self) -> None:
        self._conn.commit()

    def close(self) -> None:
        self._conn.commit()
        self._conn.close()

    # -- reads ---------------------------------------------------------

    def runs(self) -> List[RunRow]:
        rows = self._conn.execute(
            "SELECT run_id, run_key, seed, config_fingerprint, command "
            "FROM runs ORDER BY run_id"
        ).fetchall()
        return [RunRow(int(r[0]), r[1], int(r[2]), r[3], r[4]) for r in rows]

    def run_by_key(self, run_key: str) -> Optional[RunRow]:
        row = self._conn.execute(
            "SELECT run_id, run_key, seed, config_fingerprint, command "
            "FROM runs WHERE run_key = ?",
            (run_key,),
        ).fetchone()
        if row is None:
            return None
        return RunRow(int(row[0]), row[1], int(row[2]), row[3], row[4])

    def bronze_counts(self, run_id: int) -> Dict[str, int]:
        rows = self._conn.execute(
            "SELECT feed, COUNT(*) FROM bronze WHERE run_id = ? "
            "GROUP BY feed ORDER BY feed",
            (run_id,),
        ).fetchall()
        return {r[0]: int(r[1]) for r in rows}

    def bronze_summary(self) -> List[BronzeSummary]:
        rows = self._conn.execute(
            "SELECT feed, status, reason, COUNT(*) FROM bronze "
            "GROUP BY feed, status, reason ORDER BY feed, status, reason"
        ).fetchall()
        return [BronzeSummary(r[0], r[1], r[2], int(r[3])) for r in rows]

    def silver_rows(
        self,
        feed: Optional[str] = None,
        since: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> List[SilverRow]:
        clauses: List[str] = []
        params: List[object] = []
        if feed is not None:
            clauses.append("feed = ?")
            params.append(feed)
        if since is not None:
            clauses.append("time >= ?")
            params.append(since)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        tail = ""
        if limit is not None:
            tail = " LIMIT ?"
            params.append(limit)
        rows = self._conn.execute(
            "SELECT seq, run_id, feed, domain, time FROM silver"
            + where + " ORDER BY seq" + tail,
            params,
        ).fetchall()
        return [
            SilverRow(int(r[0]), int(r[1]), r[2], r[3], int(r[4]))
            for r in rows
        ]

    def silver_for_feed(
        self, run_id: int, feed: str, limit: Optional[int] = None
    ) -> List[Tuple[str, int]]:
        params: List[object] = [run_id, feed]
        tail = ""
        if limit is not None:
            tail = " LIMIT ?"
            params.append(limit)
        rows = self._conn.execute(
            "SELECT domain, time FROM silver WHERE run_id = ? AND feed = ? "
            "ORDER BY seq" + tail,
            params,
        ).fetchall()
        return [(r[0], int(r[1])) for r in rows]

    def gold_rows(self, feed: Optional[str] = None) -> List[GoldRow]:
        if feed is None:
            rows = self._conn.execute(
                "SELECT feed, domain, n_sightings, first_seen, last_seen "
                "FROM gold ORDER BY feed, domain"
            ).fetchall()
        else:
            rows = self._conn.execute(
                "SELECT feed, domain, n_sightings, first_seen, last_seen "
                "FROM gold WHERE feed = ? ORDER BY domain",
                (feed,),
            ).fetchall()
        return [
            GoldRow(r[0], r[1], int(r[2]), int(r[3]), int(r[4])) for r in rows
        ]

    def first_seen(self, domain: str) -> List[GoldRow]:
        rows = self._conn.execute(
            "SELECT feed, domain, n_sightings, first_seen, last_seen "
            "FROM gold WHERE domain = ? ORDER BY first_seen, feed",
            (domain,),
        ).fetchall()
        return [
            GoldRow(r[0], r[1], int(r[2]), int(r[3]), int(r[4])) for r in rows
        ]

    def feed_summaries(self) -> List[FeedSummary]:
        rows = self._conn.execute(
            "SELECT feed, SUM(n_sightings), COUNT(*), MIN(first_seen), "
            "MAX(last_seen) FROM gold GROUP BY feed ORDER BY feed"
        ).fetchall()
        return [
            FeedSummary(r[0], int(r[1]), int(r[2]), int(r[3]), int(r[4]))
            for r in rows
        ]

    def __repr__(self) -> str:
        return f"SqliteBackend({self.path!r})"
