"""Durable sighting store with pluggable backends (ROADMAP item 2).

The batch pipeline, the streaming engine, and the external-feed
ingester all observe *sightings* -- ``(feed, domain, time)`` facts --
but historically kept them only in process-local columns that died
with the run.  This package gives sightings a durable home:

* :mod:`repro.store.silver` -- the single validation gate between raw
  records and stored sightings.
* :mod:`repro.store.backend` -- :class:`StorageProtocol` with two
  observationally equivalent implementations, :class:`MemoryBackend`
  and :class:`SqliteBackend`.
* :mod:`repro.store.sightings` -- :class:`SightingStore` and
  :class:`RunWriter`: medallion-tier landing (bronze raw rows, silver
  validated sightings, gold per-``(feed, domain)`` aggregates) that is
  idempotent per run.
* :mod:`repro.store.query` -- the read-side answers behind
  ``python -m repro query``.

The store is an *output* of the deterministic pipeline, never an
input to analysis math: analyses keep reading in-memory
``DatasetColumns`` (the gold-tier columnar view), so a store-backed
run prints byte-identical results to a store-less one.
"""

from repro.store.backend import (
    BronzeRow,
    BronzeSummary,
    FeedSummary,
    GoldRow,
    MemoryBackend,
    RunRow,
    SilverRow,
    SqliteBackend,
    StorageProtocol,
    StoreError,
    STORE_FORMAT,
    STORE_VERSION,
)
from repro.store.sightings import (
    EMPTY_LANDING,
    LandingStats,
    RunWriter,
    SightingStore,
    run_key_for,
)
from repro.store.silver import (
    STATUS_OK,
    STATUS_REJECTED,
    validate_sighting,
)

__all__ = [
    "BronzeRow",
    "BronzeSummary",
    "EMPTY_LANDING",
    "FeedSummary",
    "GoldRow",
    "LandingStats",
    "MemoryBackend",
    "RunRow",
    "RunWriter",
    "STATUS_OK",
    "STATUS_REJECTED",
    "STORE_FORMAT",
    "STORE_VERSION",
    "SightingStore",
    "SilverRow",
    "SqliteBackend",
    "StorageProtocol",
    "StoreError",
    "run_key_for",
    "validate_sighting",
]
