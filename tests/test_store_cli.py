"""Integration tests for ``--store`` and the ``query`` subcommand.

The store is an *output*, never an input, of the analyses: a store-
backed run must print byte-identical artifacts to a store-less one, at
any seed and any worker count.  Queries against the landed store must
then agree with what the in-process timing analysis computed -- the
store is a durable second witness, not a second implementation.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.__main__ import main
from repro.analysis.timing import campaign_start_times
from repro.feeds import land_dataset
from repro.store import SightingStore


def _run(capsys, argv):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestStoreBackedRunIsByteIdentical:
    @pytest.mark.parametrize("seed", ["7", "11", "2012"])
    def test_run_store_on_off(self, seed, tmp_path, capsys):
        base = ["--small", "--seed", seed, "-q", "run"]
        code, plain, _ = _run(capsys, base)
        assert code == 0
        store_path = str(tmp_path / f"s{seed}.sqlite")
        code, stored, _ = _run(capsys, base + ["--store", store_path])
        assert code == 0
        assert stored == plain

    def test_run_store_parallel(self, tmp_path, capsys):
        base = ["--small", "--seed", "7", "-q", "run"]
        code, plain, _ = _run(capsys, base)
        assert code == 0
        code, stored, _ = _run(
            capsys,
            base + ["--jobs", "4", "--no-cache",
                    "--store", str(tmp_path / "par.sqlite")],
        )
        assert code == 0
        assert stored == plain

    def test_stream_store_on_off(self, tmp_path, capsys):
        base = ["--small", "--seed", "7", "-q", "stream"]
        code, plain, _ = _run(capsys, base)
        assert code == 0
        code, stored, _ = _run(
            capsys, base + ["--store", str(tmp_path / "st.sqlite")]
        )
        assert code == 0
        assert stored == plain

    def test_run_then_stream_lands_once(self, tmp_path, capsys):
        path = str(tmp_path / "both.sqlite")
        assert _run(
            capsys,
            ["--small", "--seed", "7", "-q", "run", "--store", path],
        )[0] == 0
        with SightingStore.open(path) as store:
            once = len(store.sightings())
            assert len(store.runs()) == 1
        # the stream path lands under the same (config, seed) run key,
        # so everything it offers is an already-landed prefix
        assert _run(
            capsys,
            ["--small", "--seed", "7", "-q", "stream", "--store", path],
        )[0] == 0
        with SightingStore.open(path) as store:
            assert len(store.sightings()) == once
            assert len(store.runs()) == 1


class TestCursorCheckpoint:
    def test_resume_from_cursor_checkpoint_is_identical(
        self, tmp_path, capsys
    ):
        store_path = str(tmp_path / "ck.sqlite")
        ck = str(tmp_path / "ck.json")
        code, _, _ = _run(
            capsys,
            ["--small", "--seed", "7", "-q", "stream", "--store", store_path,
             "--until-day", "46", "--checkpoint", ck],
        )
        assert code == 0
        code, resumed, _ = _run(
            capsys,
            ["--small", "--seed", "7", "-q", "stream", "--store", store_path,
             "--resume", ck],
        )
        assert code == 0
        code, straight, _ = _run(
            capsys, ["--small", "--seed", "7", "-q", "stream"]
        )
        assert code == 0
        assert resumed == straight

    def test_cursor_checkpoint_requires_store(self, tmp_path, capsys):
        store_path = str(tmp_path / "ck.sqlite")
        ck = str(tmp_path / "ck.json")
        assert _run(
            capsys,
            ["--small", "--seed", "7", "-q", "stream", "--store", store_path,
             "--until-day", "20", "--checkpoint", ck],
        )[0] == 0
        code, _, err = _run(
            capsys, ["--small", "--seed", "7", "-q", "stream", "--resume", ck]
        )
        assert code == 2
        assert "cursor" in err and "--store" in err


class TestQueryCli:
    @pytest.fixture(scope="class")
    def landed(self, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("query") / "landed.sqlite")
        code = main(
            ["--small", "--seed", "7", "-q", "run", "--store", path]
        )
        assert code == 0
        return path

    def test_feed_stats(self, landed, capsys):
        code, out, _ = _run(capsys, ["query", "--store", landed, "feed-stats"])
        assert code == 0
        assert "feed-stats" in out
        assert "mx1" in out and "Hu" in out

    def test_first_seen(self, landed, capsys):
        with SightingStore.open(landed) as store:
            domain = store.sightings(limit=1)[0].domain
        code, out, _ = _run(
            capsys, ["query", "--store", landed, "first-seen", domain]
        )
        assert code == 0
        assert domain in out

    def test_first_seen_unknown_domain(self, landed, capsys):
        code, out, _ = _run(
            capsys,
            ["query", "--store", landed, "first-seen", "nowhere.example"],
        )
        assert code == 0
        assert "no sightings" in out

    def test_sightings_filters(self, landed, capsys):
        code, out, _ = _run(
            capsys,
            ["query", "--store", landed, "sightings",
             "--feed", "mx1", "--since", "45", "--limit", "5"],
        )
        assert code == 0
        assert "mx1" in out

    def test_runs_listing(self, landed, capsys):
        code, out, _ = _run(capsys, ["query", "--store", landed, "runs"])
        assert code == 0
        assert "runs" in out
        assert "7" in out  # the landed run's seed

    def test_missing_store_fails_cleanly(self, tmp_path, capsys):
        code, _, err = _run(
            capsys,
            ["query", "--store", str(tmp_path / "absent.sqlite"),
             "feed-stats"],
        )
        assert code == 2
        assert "error:" in err


class TestStoreAgreesWithTimingAnalysis:
    """The landed gold tier is a second witness for first-seen times."""

    @pytest.fixture(scope="class")
    def landed_store(self, small_comparison):
        store = SightingStore.in_memory()
        writer = store.open_run("test", 7, "cfg", "test")
        for name in small_comparison.datasets:
            land_dataset(writer, small_comparison.datasets[name])
        writer.finish()
        return store

    def test_per_feed_first_seen_matches(
        self, landed_store, small_comparison
    ):
        for name, dataset in small_comparison.datasets.items():
            expected = dataset.first_seen()
            got = {
                row.domain: row.first_seen
                for row in landed_store.gold_rows(name)
            }
            assert got == expected

    def test_campaign_starts_match_cross_feed_minimum(
        self, landed_store, small_comparison
    ):
        feeds = list(small_comparison.datasets)
        domains = set()
        for name in feeds:
            domains |= small_comparison.unique_domains(name)
        starts = campaign_start_times(small_comparison, feeds, domains)
        for domain in sorted(domains)[:200]:
            rows = landed_store.first_seen(domain)
            assert rows, f"store lost {domain!r}"
            assert rows[0].first_seen == starts[domain]
            # ordered earliest-first, ties broken by feed name
            times = [row.first_seen for row in rows]
            assert times == sorted(times)

    def test_sighting_totals_match(self, landed_store, small_comparison):
        for summary in landed_store.feed_summaries():
            dataset = small_comparison.datasets[summary.feed]
            assert summary.sightings == dataset.total_samples
            assert summary.domains == len(dataset.unique_domains())


class TestTruncationWarning:
    def test_truncation_counter_surfaces_in_stderr(self, capsys):
        import argparse

        from repro.__main__ import _finish_observability
        from repro.ecosystem import small_config

        tracer = obs.Tracer()
        with obs.activate(tracer):
            obs.add("feeds.truncated_records", 123)
            obs.add("feeds.truncated_placements", 2)
        args = argparse.Namespace(
            quiet=False, trace=None, metrics=False, seed=7
        )
        _finish_observability(args, tracer, "run", small_config())
        err = capsys.readouterr().err
        assert "123" in err and "placement" in err

    def test_no_warning_when_nothing_truncated(self, capsys):
        import argparse

        from repro.__main__ import _finish_observability
        from repro.ecosystem import small_config

        tracer = obs.Tracer()
        args = argparse.Namespace(
            quiet=False, trace=None, metrics=False, seed=7
        )
        _finish_observability(args, tracer, "run", small_config())
        assert "warning" not in capsys.readouterr().err


class TestQueryRejectsMalformedStores:
    """``query`` against anything that is not a sighting store: a clean
    two-line error and exit code 2, never a traceback -- whatever shape
    the corruption takes."""

    def _query(self, capsys, path, *args):
        code = main(["query", "--store", path, *(args or ("runs",))])
        captured = capsys.readouterr()
        return code, captured.err

    def test_missing_path(self, tmp_path, capsys):
        code, err = self._query(capsys, str(tmp_path / "absent.sqlite"))
        assert code == 2
        assert "error:" in err

    def test_garbage_file(self, tmp_path, capsys):
        path = tmp_path / "garbage.bin"
        path.write_bytes(b"\x00" * 128)
        code, err = self._query(capsys, str(path))
        assert code == 2
        assert "not a sighting store" in err

    def test_foreign_sqlite_file(self, tmp_path, capsys):
        import sqlite3

        path = str(tmp_path / "foreign.sqlite")
        conn = sqlite3.connect(path)
        conn.execute("CREATE TABLE users(id INTEGER PRIMARY KEY)")
        conn.commit()
        conn.close()
        code, err = self._query(capsys, path)
        assert code == 2
        assert "not a sighting store" in err

    def test_valid_meta_but_missing_data_tables(self, tmp_path, capsys):
        """The regression this PR fixes: a file carrying a plausible
        meta table but none of the data tables used to escape as a raw
        ``sqlite3.OperationalError`` traceback (exit 1)."""
        import sqlite3

        path = str(tmp_path / "meta-only.sqlite")
        conn = sqlite3.connect(path)
        conn.execute(
            "CREATE TABLE meta(key TEXT PRIMARY KEY, value TEXT NOT NULL)"
        )
        conn.execute(
            "INSERT INTO meta VALUES('format', 'repro-sighting-store')"
        )
        conn.execute("INSERT INTO meta VALUES('version', '1')")
        conn.commit()
        conn.close()
        for sub in (
            ("runs",),
            ("feed-stats",),
            ("sightings",),
            ("first-seen", "x.example"),
        ):
            code, err = self._query(capsys, path, *sub)
            assert code == 2, sub
            assert "not a sighting store" in err
            assert "Traceback" not in err

    def test_wrong_columns(self, tmp_path, capsys):
        import sqlite3

        path = str(tmp_path / "drifted.sqlite")
        conn = sqlite3.connect(path)
        conn.execute(
            "CREATE TABLE meta(key TEXT PRIMARY KEY, value TEXT NOT NULL)"
        )
        conn.execute(
            "INSERT INTO meta VALUES('format', 'repro-sighting-store')"
        )
        conn.execute("INSERT INTO meta VALUES('version', '1')")
        for table in ("runs", "bronze", "silver", "gold"):
            conn.execute(f"CREATE TABLE {table}(wrong INTEGER)")
        conn.commit()
        conn.close()
        code, err = self._query(capsys, path)
        assert code == 2
        assert "not a sighting store" in err

    def test_good_store_still_opens(self, tmp_path, capsys):
        path = str(tmp_path / "good.sqlite")
        store = SightingStore.open(path)
        store.close()
        code, err = self._query(capsys, path)
        assert code == 0, err


class TestCrossThreadOpen:
    def test_cross_thread_connection_usable_from_another_thread(
        self, tmp_path
    ):
        import threading

        path = str(tmp_path / "xt.sqlite")
        store = SightingStore.open(path, cross_thread=True)
        errors = []

        def use():
            try:
                store.runs()
                store.first_seen("x.example")
            except Exception as exc:  # noqa: BLE001 - recorded for assert
                errors.append(exc)

        thread = threading.Thread(target=use)
        thread.start()
        thread.join(timeout=30)
        store.close()
        assert errors == []

    def test_default_open_stays_thread_bound(self, tmp_path):
        import sqlite3
        import threading

        path = str(tmp_path / "bound.sqlite")
        store = SightingStore.open(path)
        errors = []

        def use():
            try:
                store.runs()
            except sqlite3.ProgrammingError as exc:
                errors.append(exc)

        thread = threading.Thread(target=use)
        thread.start()
        thread.join(timeout=30)
        store.close()
        assert len(errors) == 1
