"""Unit tests for the world builder (over the small generated world)."""

import pytest

from repro.ecosystem import WorldBuilder, build_world, small_config
from repro.ecosystem.entities import AddressStrategy, CampaignClass
from repro.ecosystem.registry import tld_of


class TestPopulations:
    def test_program_count(self, small_world):
        cfg = small_config()
        assert len(small_world.programs) == cfg.programs.total_programs

    def test_exactly_one_rx_program(self, small_world):
        embedding = [
            p for p in small_world.programs.values() if p.embeds_affiliate_id
        ]
        assert len(embedding) == 1
        assert embedding[0].program_id == 0

    def test_rx_affiliate_count(self, small_world):
        cfg = small_config()
        rx_members = [
            a for a in small_world.affiliates.values() if a.program_id == 0
        ]
        assert len(rx_members) == cfg.programs.rx_affiliates

    def test_affiliates_reference_real_programs(self, small_world):
        for affiliate in small_world.affiliates.values():
            assert affiliate.program_id in small_world.programs

    def test_monitored_botnet_count(self, small_world):
        cfg = small_config()
        monitored = small_world.monitored_botnet_ids()
        assert len(monitored) == cfg.botnets.n_monitored

    def test_rustock_exists_and_is_monitored(self, small_world):
        names = {b.name: b for b in small_world.botnets.values()}
        assert "rustock" in names
        assert names["rustock"].monitored


class TestCampaigns:
    def test_campaign_counts_match_config(self, small_world):
        cfg = small_config()
        by_class = {}
        for c in small_world.campaigns:
            by_class[c.campaign_class] = by_class.get(c.campaign_class, 0) + 1
        for cls, class_cfg in cfg.campaign_classes.items():
            assert by_class[cls] == class_cfg.count
        assert by_class[CampaignClass.DGA_POISON] == 1

    def test_campaigns_inside_window(self, small_world):
        tl = small_world.timeline
        for c in small_world.campaigns:
            assert c.start >= tl.start
            assert c.end <= tl.end

    def test_botnet_campaigns_have_botnets(self, small_world):
        for c in small_world.campaigns:
            if c.campaign_class is CampaignClass.BOTNET_BROADCAST:
                assert c.botnet_id in small_world.botnets

    def test_tagged_campaigns_have_affiliates(self, small_world):
        for c in small_world.campaigns:
            if c.program_id is not None:
                assert c.affiliate_id is not None
                affiliate = small_world.affiliates[c.affiliate_id]
                assert affiliate.program_id == c.program_id

    def test_other_goods_never_tagged(self, small_world):
        for c in small_world.campaigns:
            if c.campaign_class is CampaignClass.OTHER_GOODS:
                assert c.program_id is None

    def test_storefront_domains_registered_before_use(self, small_world):
        benign = small_world.benign.all_benign
        for c in small_world.campaigns:
            if c.campaign_class is CampaignClass.DGA_POISON:
                continue
            for domain in c.domains:
                if domain in benign:
                    continue  # abused redirectors: registered long ago
                entry = small_world.registry.entry(domain)
                assert entry is not None
                first, _ = c.domain_interval(domain)
                assert entry.registered_at <= first

    def test_broadcast_lag_present_for_loud_classes(self, small_world):
        lags = [
            p.broadcast_lag
            for c in small_world.campaigns
            if c.campaign_class is CampaignClass.BOTNET_BROADCAST
            for p in c.placements
        ]
        assert any(lag > 0 for lag in lags)
        for c in small_world.campaigns:
            for p in c.placements:
                assert p.broadcast_lag <= 0.7 * p.duration + 1


class TestDga:
    def test_dga_domains_match_config(self, small_world):
        assert len(small_world.dga_domains) == small_config().dga.n_domains

    def test_dga_campaign_uses_rustock(self, small_world):
        campaign = small_world.dga_campaign
        assert campaign is not None
        botnet = small_world.botnets[campaign.botnet_id]
        assert botnet.name == "rustock"
        assert campaign.strategy is AddressStrategy.BRUTE_FORCE

    def test_most_dga_domains_unregistered(self, small_world):
        registered = sum(
            1
            for d in small_world.dga_domains
            if small_world.registry.is_registered(d)
        )
        assert registered < 0.1 * len(small_world.dga_domains)
        # ...but the configured collision sliver exists at paper scale.

    def test_dga_collisions_hosted_untagged(self, small_world):
        for d in small_world.dga_domains:
            record = small_world.hosting.get(d)
            if record is not None:
                assert record.program_id is None


class TestSidePools:
    def test_webspam_pool_size(self, small_world):
        assert len(small_world.hyb_webspam) == small_config().hyb_webspam_pool

    def test_webspam_live_fraction(self, small_world):
        cfg = small_config()
        live = sum(
            1
            for d in small_world.hyb_webspam
            if small_world.registry.is_registered(d)
        )
        fraction = live / len(small_world.hyb_webspam)
        assert abs(fraction - cfg.hyb_webspam_live_fraction) < 0.08

    def test_junk_domains_unregistered(self, small_world):
        for d in small_world.junk_domains:
            assert not small_world.registry.is_registered(d)

    def test_benign_domains_registered(self, small_world):
        for d in list(small_world.benign.all_benign)[:100]:
            entry = small_world.registry.entry(d)
            assert entry is not None
            assert entry.registered_at < 0


class TestDeterminism:
    def test_same_seed_same_world(self):
        w1 = build_world(small_config(), seed=123)
        w2 = build_world(small_config(), seed=123)
        assert w1.summary() == w2.summary()
        assert w1.advertised_domains() == w2.advertised_domains()

    def test_different_seed_different_world(self):
        w1 = build_world(small_config(), seed=123)
        w2 = build_world(small_config(), seed=124)
        assert w1.advertised_domains() != w2.advertised_domains()

    def test_builder_rejects_bad_monitor_count(self):
        cfg = small_config()
        bad = type(cfg.botnets)(n_botnets=2, n_monitored=5)
        import dataclasses
        with pytest.raises(ValueError):
            WorldBuilder(
                dataclasses.replace(cfg, botnets=bad), seed=1
            ).build()


class TestRedirectorAbuse:
    def test_redirector_tags_point_at_real_programs(self, small_world):
        for domain, (program_id, affiliate_id) in (
            small_world.redirector_tags.items()
        ):
            assert domain in small_world.benign.alexa_set
            assert program_id in small_world.programs
            if affiliate_id is not None:
                assert affiliate_id in small_world.affiliates

    def test_redirector_domains_advertised(self, small_world):
        advertised = small_world.advertised_domains()
        for domain in small_world.redirector_tags:
            assert domain in advertised
