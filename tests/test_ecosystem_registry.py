"""Unit tests for the domain registry."""

import pytest

from repro.ecosystem.registry import (
    COVERED_TLDS,
    Registry,
    RegistryEntry,
    tld_of,
)


class TestRegistryEntry:
    def test_active_during_overlap(self):
        entry = RegistryEntry("x.com", 100, 200)
        assert entry.active_during(150, 160)
        assert entry.active_during(0, 101)
        assert entry.active_during(199, 300)

    def test_inactive_outside_lifetime(self):
        entry = RegistryEntry("x.com", 100, 200)
        assert not entry.active_during(200, 300)
        assert not entry.active_during(0, 100)

    def test_never_dropped(self):
        entry = RegistryEntry("x.com", 100)
        assert entry.active_during(1_000_000, 2_000_000)

    def test_rejects_drop_before_registration(self):
        with pytest.raises(ValueError):
            RegistryEntry("x.com", 100, 50)


class TestRegistry:
    def test_register_and_lookup(self):
        reg = Registry()
        reg.register("a.com", 10)
        assert reg.is_registered("a.com")
        assert "a.com" in reg
        assert not reg.is_registered("b.com")

    def test_reregistration_widens_lifetime(self):
        reg = Registry()
        reg.register("a.com", 100, 200)
        reg.register("a.com", 50, 150)
        entry = reg.entry("a.com")
        assert entry.registered_at == 50
        assert entry.dropped_at == 200

    def test_reregistration_none_drop_wins(self):
        reg = Registry()
        reg.register("a.com", 100, 200)
        reg.register("a.com", 150, None)
        assert reg.entry("a.com").dropped_at is None

    def test_len_and_iteration(self):
        reg = Registry()
        reg.register("a.com", 0)
        reg.register("b.net", 0)
        assert len(reg) == 2
        assert set(reg.domains()) == {"a.com", "b.net"}

    def test_missing_entry_is_none(self):
        assert Registry().entry("nope.com") is None


class TestTldOf:
    def test_simple(self):
        assert tld_of("example.com") == "com"

    def test_multi_label(self):
        assert tld_of("a.b.co.uk") == "uk"


class TestCoveredTlds:
    def test_paper_seven(self):
        assert COVERED_TLDS == {
            "com", "net", "org", "biz", "us", "aero", "info"
        }
