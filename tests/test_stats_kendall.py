"""Unit and property tests for Kendall's tau-b."""

import itertools
import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.distributions import EmpiricalDistribution
from repro.stats.kendall import kendall_tau_b, kendall_tau_distributions


def tau_b_reference(x, y):
    """O(n^2) textbook tau-b used to validate the fast implementation."""
    n = len(x)
    concordant = discordant = ties_x = ties_y = 0
    for i, j in itertools.combinations(range(n), 2):
        dx = x[i] - x[j]
        dy = y[i] - y[j]
        if dx == 0 and dy == 0:
            ties_x += 1
            ties_y += 1
        elif dx == 0:
            ties_x += 1
        elif dy == 0:
            ties_y += 1
        elif dx * dy > 0:
            concordant += 1
        else:
            discordant += 1
    n0 = n * (n - 1) // 2
    denom = math.sqrt((n0 - ties_x) * (n0 - ties_y))
    if denom == 0:
        return 0.0
    return (concordant - discordant) / denom


class TestKendallTauB:
    def test_perfect_agreement(self):
        assert kendall_tau_b([1, 2, 3, 4], [10, 20, 30, 40]) == 1.0

    def test_perfect_disagreement(self):
        assert kendall_tau_b([1, 2, 3, 4], [4, 3, 2, 1]) == -1.0

    def test_single_swap(self):
        assert math.isclose(
            kendall_tau_b([1, 2, 3, 4], [1, 3, 2, 4]), 2 / 3
        )

    def test_constant_sequence_returns_zero(self):
        assert kendall_tau_b([1, 1, 1], [1, 2, 3]) == 0.0

    def test_tie_handling_matches_reference(self):
        x = [1, 2, 2, 3, 3, 3]
        y = [2, 2, 1, 3, 1, 3]
        assert math.isclose(kendall_tau_b(x, y), tau_b_reference(x, y))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            kendall_tau_b([1, 2], [1])

    def test_too_short(self):
        with pytest.raises(ValueError):
            kendall_tau_b([1], [1])

    def test_symmetry(self):
        x = [3, 1, 4, 1, 5, 9, 2, 6]
        y = [2, 7, 1, 8, 2, 8, 1, 8]
        assert math.isclose(kendall_tau_b(x, y), kendall_tau_b(y, x))

    @given(
        st.lists(st.integers(0, 8), min_size=2, max_size=40),
        st.integers(0, 10_000),
    )
    @settings(max_examples=120)
    def test_property_matches_quadratic_reference(self, x, seed):
        rng = random.Random(seed)
        y = [rng.randint(0, 8) for _ in x]
        fast = kendall_tau_b(x, y)
        slow = tau_b_reference(x, y)
        assert math.isclose(fast, slow, abs_tol=1e-9)

    @given(st.lists(st.floats(-100, 100), min_size=2, max_size=50))
    def test_property_self_correlation(self, x):
        # A sequence against itself is perfectly correlated unless
        # it carries no rank information at all (all values tied).
        if len(set(x)) > 1:
            assert math.isclose(kendall_tau_b(x, x), 1.0)
        else:
            assert kendall_tau_b(x, x) == 0.0

    @given(
        st.lists(st.integers(0, 20), min_size=2, max_size=40),
        st.integers(0, 10_000),
    )
    def test_property_range(self, x, seed):
        rng = random.Random(seed)
        y = [rng.randint(0, 20) for _ in x]
        assert -1.0 <= kendall_tau_b(x, y) <= 1.0


class TestKendallDistributions:
    def test_common_support_only(self):
        p = EmpiricalDistribution({"a": 4, "b": 3, "c": 2, "x": 100})
        q = EmpiricalDistribution({"a": 40, "b": 30, "c": 20, "y": 1})
        # Over common keys {a, b, c} the rankings agree perfectly.
        assert kendall_tau_distributions(p, q) == 1.0

    def test_insufficient_common_support(self):
        p = EmpiricalDistribution({"a": 1})
        q = EmpiricalDistribution({"b": 1})
        assert kendall_tau_distributions(p, q) == 0.0

    def test_reversed_ranks(self):
        p = EmpiricalDistribution({"a": 3, "b": 2, "c": 1})
        q = EmpiricalDistribution({"a": 1, "b": 2, "c": 3})
        assert kendall_tau_distributions(p, q) == -1.0

    def test_support_restriction(self):
        p = EmpiricalDistribution({"a": 3, "b": 2, "c": 1})
        q = EmpiricalDistribution({"a": 1, "b": 2, "c": 3})
        # Restricted to two keys, still perfectly discordant.
        assert kendall_tau_distributions(p, q, support={"a", "c"}) == -1.0
