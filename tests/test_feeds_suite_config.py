"""Tests on the configured paper suite itself (apparatus properties)."""

from repro.feeds import standard_feed_suite
from repro.feeds.blacklist import BlacklistFeed
from repro.feeds.botnet import BotnetFeed
from repro.feeds.honey_account import HoneyAccountFeed
from repro.feeds.human import HumanIdentifiedFeed
from repro.feeds.hybrid import HybridFeed
from repro.feeds.mx_honeypot import MxHoneypotFeed


def suite_by_name(seed=1):
    return {c.name: c for c in standard_feed_suite(seed)}


class TestSuiteComposition:
    def test_counts_by_type(self):
        suite = standard_feed_suite(1)
        assert sum(isinstance(c, MxHoneypotFeed) for c in suite) == 3
        assert sum(isinstance(c, HoneyAccountFeed) for c in suite) == 2
        assert sum(isinstance(c, BlacklistFeed) for c in suite) == 2
        assert sum(isinstance(c, BotnetFeed) for c in suite) == 1
        assert sum(isinstance(c, HumanIdentifiedFeed) for c in suite) == 1
        assert sum(isinstance(c, HybridFeed) for c in suite) == 1

    def test_only_mx2_sees_dga(self):
        feeds = suite_by_name()
        assert feeds["mx2"].config.sees_dga
        assert not feeds["mx1"].config.sees_dga
        assert not feeds["mx3"].config.sees_dga

    def test_mx2_largest_portfolio(self):
        feeds = suite_by_name()
        rates = {
            name: feeds[name].config.catch_rate
            for name in ("mx1", "mx2", "mx3")
        }
        assert max(rates, key=rates.get) == "mx2"

    def test_ac2_is_the_odd_network(self):
        feeds = suite_by_name()
        ac1, ac2 = feeds["Ac1"].config, feeds["Ac2"].config
        assert ac2.volume_bias_scale > 0 and ac1.volume_bias_scale == 0
        assert ac2.catch_jitter_sigma > 0 and ac1.catch_jitter_sigma == 0
        assert ac2.harvested_inclusion < ac1.harvested_inclusion

    def test_dbl_leans_on_user_reports(self):
        feeds = suite_by_name()
        dbl, uribl = feeds["dbl"].config, feeds["uribl"].config
        assert dbl.user_weight > uribl.user_weight
        assert dbl.user_volume_scale < uribl.user_volume_scale
        assert dbl.latency_mean_minutes < uribl.latency_mean_minutes

    def test_blacklists_cleanest_fp_budget(self):
        feeds = suite_by_name()
        blacklist_fp = max(
            feeds["dbl"].config.benign_fp_domains,
            feeds["uribl"].config.benign_fp_domains,
        )
        honeypot_fp = min(
            feeds[name].config.benign_fp_domains
            for name in ("mx1", "mx3", "Ac1")
        )
        assert blacklist_fp < honeypot_fp

    def test_honeypots_respect_broadcast_lag(self):
        feeds = suite_by_name()
        for name in ("mx1", "mx2", "mx3", "Ac1", "Ac2"):
            assert 0.0 < feeds[name].config.onset_max_fraction < 0.5

    def test_seed_threaded_to_collectors(self):
        a = {c.name: c for c in standard_feed_suite(5)}
        b = {c.name: c for c in standard_feed_suite(5)}
        assert a["mx1"]._rng("x").random() == b["mx1"]._rng("x").random()
