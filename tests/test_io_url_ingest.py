"""Unit tests for URL-feed ingestion and provider-style dedup."""

import json

import pytest

from repro.feeds.base import FeedDataset, FeedRecord, FeedType
from repro.io.url_ingest import (
    IngestStats,
    dedup_within_window,
    ingest_url_file,
    ingest_url_lines,
    normalize_record,
)


def lines(*objects):
    return [json.dumps(o) for o in objects]


class TestNormalizeRecord:
    def test_url_record(self):
        record, reason = normalize_record(
            {"url": "http://www.pills.example.com/x", "t": 5}
        )
        assert reason == "ok"
        assert record == FeedRecord("example.com", 5)

    def test_host_record(self):
        record, reason = normalize_record({"host": "a.b.shop.biz", "t": 9})
        assert reason == "ok"
        assert record == FeedRecord("shop.biz", 9)

    def test_missing_time(self):
        record, reason = normalize_record({"url": "http://x.com/"})
        assert record is None
        assert reason == "missing_fields"

    def test_bad_url(self):
        record, reason = normalize_record({"url": "ftp://x.com/", "t": 1})
        assert record is None
        assert reason == "unparseable_url"

    def test_bad_host(self):
        record, reason = normalize_record({"host": "not valid", "t": 1})
        assert record is None
        assert reason == "unparseable_host"

    def test_neither_field(self):
        record, reason = normalize_record({"t": 1})
        assert record is None
        assert reason == "missing_fields"

    # Regression: non-finite floats and bools used to reach int(t) and
    # crash the whole ingest (ValueError/OverflowError) instead of
    # being counted as drops.

    @pytest.mark.parametrize(
        "t", [float("nan"), float("inf"), float("-inf")]
    )
    def test_non_finite_time_dropped(self, t):
        record, reason = normalize_record({"url": "http://x.com/", "t": t})
        assert record is None
        assert reason == "missing_fields"

    @pytest.mark.parametrize("t", [True, False])
    def test_bool_time_dropped(self, t):
        record, reason = normalize_record({"url": "http://x.com/", "t": t})
        assert record is None
        assert reason == "missing_fields"

    @pytest.mark.parametrize("t", ["5", None, [5], {"v": 5}])
    def test_non_numeric_time_dropped(self, t):
        record, reason = normalize_record({"host": "x.com", "t": t})
        assert record is None
        assert reason == "missing_fields"

    def test_float_time_truncates(self):
        record, reason = normalize_record({"host": "x.com", "t": 7.9})
        assert reason == "ok"
        assert record == FeedRecord("x.com", 7)


class TestIngestLines:
    def test_mixed_input(self):
        dataset, stats = ingest_url_lines(
            lines(
                {"url": "http://spam1.com/a", "t": 1},
                {"url": "http://spam1.com/b", "t": 2},
                {"host": "spam2.net", "t": 3},
                {"url": "http://10.0.0.1/", "t": 4},
                {"t": 5},
            )
            + ["{broken json", ""],
            name="provider-x",
        )
        assert dataset.total_samples == 3
        assert dataset.unique_domains() == {"spam1.com", "spam2.net"}
        assert stats.accepted == 3
        assert stats.unparseable_url == 1
        assert stats.missing_fields == 1
        assert stats.bad_json == 1
        assert stats.total == 6
        assert 0.0 < stats.drop_fraction < 1.0

    def test_non_dict_json(self):
        _, stats = ingest_url_lines(['["a", "list"]'], name="x")
        assert stats.bad_json == 1

    def test_bare_nan_infinity_tokens_survive_ingest(self):
        # json.loads accepts bare NaN/Infinity tokens; regression for
        # the ingest crashing on them at int(t) instead of counting
        # them as missing_fields drops.
        dataset, stats = ingest_url_lines(
            [
                '{"url": "http://a.com/", "t": NaN}',
                '{"url": "http://b.com/", "t": Infinity}',
                '{"host": "c.net", "t": -Infinity}',
                '{"host": "d.org", "t": true}',
                '{"url": "http://ok.com/", "t": 3}',
            ],
            name="x",
        )
        assert dataset.unique_domains() == {"ok.com"}
        assert stats.accepted == 1
        assert stats.missing_fields == 4
        assert stats.total == 5

    def test_empty_input(self):
        dataset, stats = ingest_url_lines([], name="x")
        assert dataset.total_samples == 0
        assert stats.total == 0
        assert stats.drop_fraction == 0.0

    def test_feed_metadata(self):
        dataset, _ = ingest_url_lines(
            lines({"url": "http://a.com/", "t": 1}),
            name="bl",
            feed_type=FeedType.BLACKLIST,
            has_volume=False,
        )
        assert dataset.feed_type is FeedType.BLACKLIST
        assert not dataset.has_volume

    def test_ingest_file(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        path.write_text(
            "\n".join(lines({"url": "http://a.example.org/", "t": 7}))
        )
        dataset, stats = ingest_url_file(str(path), name="f")
        assert dataset.unique_domains() == {"example.org"}
        assert stats.accepted == 1


class TestIngestSilverGate:
    """Ingest accounting and store accounting must never disagree."""

    def test_storable_range_enforced_at_ingest(self):
        # Regression: a timestamp beyond int64 normalized fine and was
        # accepted into a dataset the store would then refuse.  The
        # silver gate now drops it at ingest, under its own bucket.
        dataset, stats = ingest_url_lines(
            lines(
                {"host": "ok.com", "t": 1},
                {"host": "huge.net", "t": 2**63},
                {"host": "tiny.org", "t": -(2**63) - 1},
            ),
            name="x",
        )
        assert dataset.unique_domains() == {"ok.com"}
        assert stats.accepted == 1
        assert stats.invalid_sighting == 2
        assert stats.total == 3

    def test_stats_agree_with_store_bronze(self):
        from repro.store import SightingStore

        store = SightingStore.in_memory()
        writer = store.open_run("ingest-test", 0, "cfg", "ingest")
        dataset, stats = ingest_url_lines(
            lines(
                {"host": "ok.com", "t": 1},
                {"host": "huge.net", "t": 2**63},
                {"t": 3},
            )
            + ["{broken json"],
            name="x",
            writer=writer,
        )
        rejected = sum(
            row.count for row in store.bronze_summary() if row.status != "ok"
        )
        accepted = sum(
            row.count for row in store.bronze_summary() if row.status == "ok"
        )
        assert accepted == stats.accepted == 1
        assert rejected == stats.total - stats.accepted == 3
        reasons = {
            row.reason for row in store.bronze_summary() if row.reason
        }
        assert reasons == {"bad_json", "missing_fields", "time_out_of_range"}
        assert len(store.sightings()) == dataset.total_samples

    def test_reingesting_same_file_is_a_noop(self, tmp_path):
        from repro.store import SightingStore

        path = tmp_path / "feed.jsonl"
        path.write_text(
            "\n".join(
                lines(
                    {"url": "http://a.example.org/", "t": 7},
                    {"host": "b.net", "t": 8},
                )
            )
        )
        store = SightingStore.in_memory()
        _, first = ingest_url_file(str(path), name="f", store=store)
        _, second = ingest_url_file(str(path), name="f", store=store)
        assert first == second  # accounting identical on re-landing
        assert len(store.sightings()) == 2
        assert len(store.runs()) == 1

    def test_changed_file_lands_as_new_run(self, tmp_path):
        from repro.store import SightingStore

        path = tmp_path / "feed.jsonl"
        store = SightingStore.in_memory()
        path.write_text("\n".join(lines({"host": "a.com", "t": 1})))
        ingest_url_file(str(path), name="f", store=store)
        path.write_text("\n".join(lines({"host": "b.net", "t": 2})))
        ingest_url_file(str(path), name="f", store=store)
        assert len(store.runs()) == 2
        assert len(store.sightings()) == 2


class TestDedup:
    def make_dataset(self, times, domain="a.com"):
        return FeedDataset(
            "x",
            FeedType.MX_HONEYPOT,
            [FeedRecord(domain, t) for t in times],
        )

    def test_window_collapses_repeats(self):
        dataset = self.make_dataset([0, 5, 9, 20, 22])
        deduped = dedup_within_window(dataset, 10)
        assert [r.time for r in deduped.records] == [0, 20]

    def test_distinct_domains_independent(self):
        dataset = FeedDataset(
            "x",
            FeedType.MX_HONEYPOT,
            [FeedRecord("a.com", 0), FeedRecord("b.com", 1)],
        )
        deduped = dedup_within_window(dataset, 100)
        assert deduped.total_samples == 2

    def test_bad_window(self):
        with pytest.raises(ValueError):
            dedup_within_window(self.make_dataset([0]), 0)

    def test_output_independent_of_input_order(self):
        # Regression: sorting by time alone left same-minute sightings
        # of different domains in input-file order, so a provider
        # shipping the same multiset in another line order changed the
        # kept-record sequence.
        records = [
            FeedRecord("b.com", 5),
            FeedRecord("a.com", 5),
            FeedRecord("c.net", 0),
            FeedRecord("a.com", 0),
            FeedRecord("b.com", 14),
            FeedRecord("a.com", 9),
        ]
        def dedup(ordering):
            dataset = FeedDataset("x", FeedType.MX_HONEYPOT, ordering)
            return dedup_within_window(dataset, 10).records

        baseline = dedup(records)
        assert dedup(list(reversed(records))) == baseline
        assert dedup(sorted(records, key=lambda r: r.domain)) == baseline

    def test_same_minute_domains_kept_in_domain_order(self):
        dataset = FeedDataset(
            "x",
            FeedType.MX_HONEYPOT,
            [FeedRecord("z.com", 3), FeedRecord("a.com", 3)],
        )
        deduped = dedup_within_window(dataset, 10)
        assert [r.domain for r in deduped.records] == ["a.com", "z.com"]

    def test_stats_dataclass(self):
        stats = IngestStats(accepted=3, bad_json=1)
        assert stats.total == 4
        assert stats.drop_fraction == 0.25
