"""Shared fixtures.

Three worlds at three costs:

* ``toy_world`` -- a tiny hand-built world with known ground truth, for
  exact-value assertions in analysis tests.
* ``small_world`` / ``small_datasets`` / ``small_comparison`` -- the
  miniature generated world (fast, used by most module tests).
* ``paper_pipeline`` -- the full paper-scale pipeline (built once per
  session; used only by the integration shape tests).
"""

from __future__ import annotations

import pytest

from repro.ecosystem import build_world, paper_config, small_config
from repro.ecosystem.benign import BenignWorld
from repro.ecosystem.entities import (
    AddressStrategy,
    Affiliate,
    AffiliateProgram,
    Botnet,
    Campaign,
    CampaignClass,
    DomainPlacement,
    GoodsCategory,
)
from repro.ecosystem.registry import Registry
from repro.ecosystem.world import HostingRecord, World
from repro.feeds import collect_all, standard_feed_suite
from repro.analysis import FeedComparison
from repro.pipeline import PaperPipeline
from repro.simtime import Timeline, days

SMALL_SEED = 7


@pytest.fixture(scope="session")
def small_world():
    """The generated miniature world."""
    return build_world(small_config(), seed=SMALL_SEED)


@pytest.fixture(scope="session")
def small_datasets(small_world):
    """All ten feeds collected over the miniature world."""
    return collect_all(small_world, standard_feed_suite(SMALL_SEED))


@pytest.fixture(scope="session")
def small_comparison(small_world, small_datasets):
    """Analysis context over the miniature world."""
    return FeedComparison(small_world, small_datasets, seed=SMALL_SEED)


@pytest.fixture(scope="session")
def paper_pipeline():
    """The full paper-scale pipeline (expensive; built once)."""
    pipeline = PaperPipeline(paper_config(), seed=2012)
    pipeline.run()
    return pipeline


def build_toy_world() -> World:
    """A two-campaign world with fully-known ground truth.

    * Campaign 0: tagged (program 0 / affiliate 0), loud brute-force,
      two domains, delivered by monitored botnet 0.
    * Campaign 1: tagged (program 1 / affiliate 1), quiet purchased
      list, one domain, direct sending.
    * Benign world: 3 Alexa domains (one a redirector), 2 ODP-only.
    """
    timeline = Timeline()
    programs = {
        0: AffiliateProgram(0, "rx-promotion", GoodsCategory.PHARMA, 1.0,
                            embeds_affiliate_id=True),
        1: AffiliateProgram(1, "replica-co", GoodsCategory.REPLICA, 0.5),
    }
    affiliates = {
        0: Affiliate(0, 0, 100_000.0),
        1: Affiliate(1, 1, 5_000.0),
    }
    botnets = {0: Botnet(0, "rustock", 1.0, monitored=True)}

    c0 = Campaign(
        campaign_id=0,
        campaign_class=CampaignClass.BOTNET_BROADCAST,
        strategy=AddressStrategy.BRUTE_FORCE,
        placements=[
            DomainPlacement("loudpills.com", days(10), days(20), 50_000.0,
                            broadcast_lag=days(1)),
            DomainPlacement("loudpills2.net", days(18), days(30), 60_000.0,
                            broadcast_lag=days(2)),
        ],
        affiliate_id=0,
        program_id=0,
        botnet_id=0,
        filter_evasion=0.05,
    )
    c1 = Campaign(
        campaign_id=1,
        campaign_class=CampaignClass.QUIET_TARGETED,
        strategy=AddressStrategy.PURCHASED,
        placements=[
            DomainPlacement("quietwatch.biz", days(40), days(50), 400.0),
        ],
        affiliate_id=1,
        program_id=1,
        filter_evasion=0.9,
    )

    registry = Registry()
    for name, reg_at in [
        ("loudpills.com", days(9)),
        ("loudpills2.net", days(16)),
        ("quietwatch.biz", days(38)),
    ]:
        registry.register(name, reg_at)

    alexa = ["megaportal.com", "shortlink.us", "bignews.org"]
    odp = {"bignews.org", "dirlisted.net", "dirlisted2.info"}
    benign = BenignWorld(
        alexa_ranked=alexa,
        odp_domains=odp,
        redirectors=["shortlink.us"],
        chaff_pool=["megaportal.com"],
        newsletter_domains=["newsweekly.com"],
    )
    for domain in benign.all_benign:
        registry.register(domain, -days(500))

    hosting = {
        "loudpills.com": HostingRecord(
            "loudpills.com", days(9), days(40), 0, 0
        ),
        "loudpills2.net": HostingRecord(
            "loudpills2.net", days(16), days(60), 0, 0
        ),
        "quietwatch.biz": HostingRecord(
            "quietwatch.biz", days(38), days(55), 1, 1
        ),
    }

    return World(
        timeline=timeline,
        programs=programs,
        affiliates=affiliates,
        botnets=botnets,
        campaigns=[c0, c1],
        registry=registry,
        benign=benign,
        hosting=hosting,
        dga_domains=set(),
        dga_campaign=None,
        redirector_tags={"shortlink.us": (0, 0)},
        hyb_webspam=[],
        junk_domains=["qwxkzj.com"],
    )


@pytest.fixture()
def toy_world():
    """Fresh hand-built world per test (cheap to construct)."""
    return build_toy_world()
