"""Unit tests for the report writer and the CLI."""

import pytest

from repro.__main__ import main
from repro.ecosystem import small_config
from repro.pipeline import PaperPipeline
from repro.reporting.report import write_report


@pytest.fixture(scope="module")
def pipeline():
    p = PaperPipeline(small_config(), seed=7)
    p.run()
    return p


class TestWriteReport:
    def test_all_artifacts_written(self, pipeline, tmp_path):
        files = write_report(pipeline, str(tmp_path / "out"))
        names = set(files)
        for i in range(1, 13):
            assert f"figure{i}.txt" in names
        for i in (1, 2, 3):
            assert f"table{i}.txt" in names
        assert "report.txt" in names
        assert "table2.csv" in names
        assert "figure3_live.csv" in names

    def test_artifact_contents(self, pipeline, tmp_path):
        directory = tmp_path / "out"
        write_report(pipeline, str(directory))
        table2 = (directory / "table2.txt").read_text()
        assert "Table 2" in table2
        csv_text = (directory / "table2.csv").read_text()
        assert csv_text.startswith("feed,")

    def test_directory_created(self, pipeline, tmp_path):
        nested = tmp_path / "a" / "b"
        files = write_report(pipeline, str(nested))
        assert files
        assert nested.is_dir()


class TestCli:
    def test_run_to_directory(self, tmp_path, capsys):
        code = main(
            ["--small", "--seed", "7", "run", "-o", str(tmp_path / "r")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "artifacts" in out
        assert (tmp_path / "r" / "report.txt").exists()

    def test_run_to_stdout(self, capsys):
        code = main(["--small", "--seed", "7", "run"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Figure 12" in out

    def test_recommend(self, capsys):
        code = main(["--small", "--seed", "7", "recommend", "coverage"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Feed ranking" in out
        assert " 1. " in out

    def test_filter(self, capsys):
        code = main(["--small", "--seed", "7", "filter"])
        assert code == 0
        out = capsys.readouterr().out
        assert "blocking oracles" in out
        assert "dbl" in out

    def test_bad_question_rejected(self):
        with pytest.raises(SystemExit):
            main(["recommend", "telepathy"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])


class TestObservabilityCli:
    def run_traced(self, tmp_path, capsys, *extra):
        trace = tmp_path / "manifest.json"
        code = main(
            ["--small", "--seed", "7", "run", "--no-cache",
             "--trace", str(trace), *extra]
        )
        captured = capsys.readouterr()
        return code, trace, captured

    def test_trace_writes_manifest_without_touching_stdout(
        self, tmp_path, capsys
    ):
        code, trace, traced = self.run_traced(tmp_path, capsys)
        assert code == 0
        assert trace.exists()
        assert "Run manifest written" in traced.err

        code = main(["--small", "--seed", "7", "run", "--no-cache"])
        assert code == 0
        untraced = capsys.readouterr()
        assert traced.out == untraced.out

    def test_metrics_summary_on_stderr(self, tmp_path, capsys):
        code, _, captured = self.run_traced(tmp_path, capsys, "--metrics")
        assert code == 0
        assert "Run stages" in captured.err
        assert "Run metrics" in captured.err
        assert "Run stages" not in captured.out

    def test_manifest_subcommand_validates(self, tmp_path, capsys):
        _, trace, _ = self.run_traced(tmp_path, capsys)
        code = main(["manifest", str(trace), "--min-stages", "6"])
        assert code == 0
        out = capsys.readouterr().out
        assert "valid repro-run-manifest" in out

    def test_manifest_subcommand_summary(self, tmp_path, capsys):
        _, trace, _ = self.run_traced(tmp_path, capsys)
        code = main(["manifest", str(trace), "--summary"])
        assert code == 0
        assert "Run stages" in capsys.readouterr().out

    def test_manifest_min_stages_failure(self, tmp_path, capsys):
        _, trace, _ = self.run_traced(tmp_path, capsys)
        code = main(["manifest", str(trace), "--min-stages", "1000"])
        assert code == 1
        assert "need at least 1000" in capsys.readouterr().err

    def test_manifest_rejects_invalid_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        code = main(["manifest", str(bad)])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_stream_trace_writes_manifest(self, tmp_path, capsys):
        trace = tmp_path / "stream.json"
        code = main(
            ["--small", "--seed", "7", "stream", "--no-cache",
             "--trace", str(trace)]
        )
        assert code == 0
        capsys.readouterr()
        assert trace.exists()
        code = main(["manifest", str(trace), "--min-stages", "4"])
        assert code == 0
