"""Unit tests for the report writer and the CLI."""

import pytest

from repro.__main__ import main
from repro.ecosystem import small_config
from repro.pipeline import PaperPipeline
from repro.reporting.report import write_report


@pytest.fixture(scope="module")
def pipeline():
    p = PaperPipeline(small_config(), seed=7)
    p.run()
    return p


class TestWriteReport:
    def test_all_artifacts_written(self, pipeline, tmp_path):
        files = write_report(pipeline, str(tmp_path / "out"))
        names = set(files)
        for i in range(1, 13):
            assert f"figure{i}.txt" in names
        for i in (1, 2, 3):
            assert f"table{i}.txt" in names
        assert "report.txt" in names
        assert "table2.csv" in names
        assert "figure3_live.csv" in names

    def test_artifact_contents(self, pipeline, tmp_path):
        directory = tmp_path / "out"
        write_report(pipeline, str(directory))
        table2 = (directory / "table2.txt").read_text()
        assert "Table 2" in table2
        csv_text = (directory / "table2.csv").read_text()
        assert csv_text.startswith("feed,")

    def test_directory_created(self, pipeline, tmp_path):
        nested = tmp_path / "a" / "b"
        files = write_report(pipeline, str(nested))
        assert files
        assert nested.is_dir()


class TestCli:
    def test_run_to_directory(self, tmp_path, capsys):
        code = main(
            ["--small", "--seed", "7", "run", "-o", str(tmp_path / "r")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "artifacts" in out
        assert (tmp_path / "r" / "report.txt").exists()

    def test_run_to_stdout(self, capsys):
        code = main(["--small", "--seed", "7", "run"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Figure 12" in out

    def test_recommend(self, capsys):
        code = main(["--small", "--seed", "7", "recommend", "coverage"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Feed ranking" in out
        assert " 1. " in out

    def test_filter(self, capsys):
        code = main(["--small", "--seed", "7", "filter"])
        assert code == 0
        out = capsys.readouterr().out
        assert "blocking oracles" in out
        assert "dbl" in out

    def test_bad_question_rejected(self):
        with pytest.raises(SystemExit):
            main(["recommend", "telepathy"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])
