"""Unit tests for bootstrap confidence intervals."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.bootstrap import (
    BootstrapInterval,
    bootstrap_coverage,
    bootstrap_fraction,
)


class TestBootstrapFraction:
    def test_full_membership(self):
        interval = bootstrap_fraction({"a", "b"}, ["a", "b"], replicates=200)
        assert interval.estimate == 1.0
        assert interval.low == 1.0
        assert interval.high == 1.0

    def test_no_membership(self):
        interval = bootstrap_fraction(set(), ["a", "b"], replicates=200)
        assert interval.estimate == 0.0
        assert interval.width == 0.0

    def test_interval_brackets_estimate(self):
        universe = [f"d{i}" for i in range(200)]
        members = set(universe[:80])
        interval = bootstrap_fraction(members, universe, replicates=400)
        assert interval.estimate == pytest.approx(0.4)
        assert interval.low <= interval.estimate <= interval.high
        assert interval.contains(0.4)
        assert 0.0 < interval.width < 0.3

    def test_deterministic(self):
        universe = [f"d{i}" for i in range(50)]
        a = bootstrap_fraction(universe[:10], universe, seed=3)
        b = bootstrap_fraction(universe[:10], universe, seed=3)
        assert a == b

    def test_higher_confidence_wider(self):
        universe = [f"d{i}" for i in range(100)]
        members = set(universe[:50])
        narrow = bootstrap_fraction(
            members, universe, confidence=0.5, replicates=500
        )
        wide = bootstrap_fraction(
            members, universe, confidence=0.99, replicates=500
        )
        assert wide.width >= narrow.width

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_fraction(set(), [], replicates=10)
        with pytest.raises(ValueError):
            bootstrap_fraction(set(), ["a"], replicates=0)
        with pytest.raises(ValueError):
            bootstrap_fraction(set(), ["a"], confidence=1.5)

    @given(
        st.sets(st.integers(0, 40), min_size=1, max_size=40),
        st.integers(0, 1000),
    )
    @settings(max_examples=30)
    def test_property_interval_ordering(self, universe, seed):
        members = {u for u in universe if u % 2 == 0}
        interval = bootstrap_fraction(
            members, sorted(universe), replicates=100, seed=seed
        )
        assert 0.0 <= interval.low <= interval.high <= 1.0
        assert interval.low <= interval.estimate <= interval.high

    def test_str(self):
        interval = BootstrapInterval(0.5, 0.4, 0.6, 0.95, 100)
        assert "0.500" in str(interval)


class TestBootstrapCoverage:
    def test_against_toy_comparison(self, toy_world):
        from repro.analysis import FeedComparison
        from tests.test_analysis_context import make_feeds

        comparison = FeedComparison(toy_world, make_feeds(), seed=0)
        interval = bootstrap_coverage(
            comparison, "Hu", kind="tagged", replicates=300
        )
        # Hu covers 2 of the 3 tagged domains.
        assert interval.estimate == pytest.approx(2 / 3)
        assert interval.contains(interval.estimate)
