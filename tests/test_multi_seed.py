"""Robustness across seeds: structural invariants must hold for any world.

The calibrated shape tests pin seed 2012; these tests build several
miniature worlds with different seeds and assert the invariants that
must hold regardless of randomness -- the difference between a
calibration artifact and a structural property.
"""

import pytest

from repro.analysis import FeedComparison, purity_table
from repro.analysis.coverage import coverage_table
from repro.ecosystem import build_world, small_config
from repro.feeds import collect_all, standard_feed_suite

SEEDS = (11, 222, 3333)


@pytest.fixture(scope="module", params=SEEDS)
def seeded_comparison(request):
    seed = request.param
    world = build_world(small_config(), seed=seed)
    datasets = collect_all(world, standard_feed_suite(seed))
    return world, FeedComparison(world, datasets, seed=seed)


class TestStructuralInvariants:
    def test_blacklists_subset_of_base_union(self, seeded_comparison):
        _, comparison = seeded_comparison
        base_union = comparison.union_domains(comparison.base_feed_names)
        for blacklist in comparison.blacklist_names:
            assert comparison.unique_domains(blacklist) <= base_union

    def test_tagged_subset_of_live_subset_of_all(self, seeded_comparison):
        _, comparison = seeded_comparison
        for feed in comparison.feed_names:
            tagged = comparison.tagged_domains(feed)
            live = comparison.live_domains(feed)
            assert tagged <= live <= comparison.unique_domains(feed)

    def test_purity_fractions_bounded(self, seeded_comparison):
        _, comparison = seeded_comparison
        for row in purity_table(comparison):
            for value in (row.dns, row.http, row.tagged, row.odp, row.alexa):
                assert 0.0 <= value <= 1.0
            assert row.tagged <= row.http + 1e-9

    def test_exclusive_counts_consistent(self, seeded_comparison):
        _, comparison = seeded_comparison
        rows = coverage_table(comparison)
        union_live = comparison.all_live()
        total_exclusive = sum(r.exclusive_live for r in rows)
        assert total_exclusive <= len(union_live)

    def test_live_domains_really_crawled_alive(self, seeded_comparison):
        _, comparison = seeded_comparison
        results = comparison.crawl_results()
        for feed in comparison.feed_names:
            for domain in comparison.live_domains(feed):
                assert results[domain].http_ok

    def test_tagged_domains_have_truth_program(self, seeded_comparison):
        world, comparison = seeded_comparison
        results = comparison.crawl_results()
        for feed in comparison.feed_names:
            for domain in comparison.tagged_domains(feed):
                program = results[domain].program_id
                assert program is not None
                assert program in world.programs

    def test_dga_never_live(self, seeded_comparison):
        world, comparison = seeded_comparison
        results = comparison.crawl_results()
        for domain, verdict in results.items():
            if world.is_dga(domain) and verdict.http_ok:
                # Only the parked-collision sliver may be live, and it
                # must never be tagged.
                assert world.registry.is_registered(domain)
                assert not verdict.tagged

    def test_record_times_inside_window(self, seeded_comparison):
        world, comparison = seeded_comparison
        tl = world.timeline
        for feed in comparison.feed_names:
            for record in comparison.datasets[feed].records:
                assert tl.start <= record.time < tl.end

    def test_mail_oracle_normalization(self, seeded_comparison):
        _, comparison = seeded_comparison
        domains = sorted(comparison.all_live())[:200]
        if not domains:
            pytest.skip("no live domains in this seed")
        report = comparison.mail.query(domains)
        assert max(report.values()) <= 1.0
        assert all(v >= 0.0 for v in report.values())
