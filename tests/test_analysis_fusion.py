"""Unit tests for feed fusion (toy world + small generated world)."""

import pytest

from repro.analysis import FeedComparison
from repro.analysis.fusion import (
    FusedInterval,
    evaluate_fusion,
    fuse_timelines,
)
from repro.simtime import days

from tests.test_analysis_context import make_feeds


@pytest.fixture()
def comparison(toy_world):
    return FeedComparison(toy_world, make_feeds(), seed=0)


class TestFusedInterval:
    def test_duration(self):
        interval = FusedInterval("x.com", 10, 40)
        assert interval.duration == 30

    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            FusedInterval("x.com", 40, 10)


class TestFuseTimelines:
    def test_fuses_common_domains(self, comparison):
        fused = fuse_timelines(
            comparison,
            onset_feeds=("Hu", "dbl"),
            end_feeds=("mx1",),
            kind="tagged",
        )
        # loudpills.com: onset from Hu (day 11), end from mx1 (day 13).
        assert "loudpills.com" in fused
        interval = fused["loudpills.com"]
        assert interval.start == days(11)
        assert interval.end == days(13)

    def test_onset_only_domains_excluded(self, comparison):
        fused = fuse_timelines(
            comparison,
            onset_feeds=("Hu", "dbl"),
            end_feeds=("mx1",),
            kind="tagged",
        )
        # quietwatch.biz never appears in mx1 -> no fused end.
        assert "quietwatch.biz" not in fused

    def test_collapses_rather_than_inverts(self, comparison):
        # With roles swapped, an "end" feed may have only earlier
        # sightings; the interval must collapse, not invert.
        fused = fuse_timelines(
            comparison,
            onset_feeds=("mx1",),
            end_feeds=("Hu",),
            kind="tagged",
        )
        for interval in fused.values():
            assert interval.end >= interval.start

    def test_requires_both_roles(self, comparison):
        with pytest.raises(ValueError):
            fuse_timelines(
                comparison, onset_feeds=("absent",), end_feeds=("mx1",)
            )


class TestEvaluateFusion:
    def test_toy_errors_exact(self, comparison):
        evaluation = evaluate_fusion(
            comparison,
            onset_feeds=("Hu", "dbl"),
            end_feeds=("mx1",),
            kind="tagged",
        )
        # Only loudpills.com is fusable: loudpills2.net has no onset
        # feed sighting, quietwatch.biz no end-feed sighting.  Its
        # fused onset (Hu, day 11) and end (mx1, day 13) coincide with
        # the aggregate, so both errors are zero.
        assert evaluation.n_domains == 1
        assert evaluation.onset_error.median == 0.0
        assert evaluation.end_error.median == 0.0

    def test_fusion_beats_honeypot_onset(self, small_comparison):
        evaluation = evaluate_fusion(small_comparison)
        # The fused onset (from Hu/blacklists) must be earlier than the
        # best single honeypot's onset latency.
        from repro.analysis.timing import first_appearance_latencies

        honeypots = first_appearance_latencies(
            small_comparison,
            ["mx1", "mx3", "Ac1"],
            reference_feeds=small_comparison.feed_names,
        )
        worst_fused = evaluation.onset_error.median
        best_honeypot = min(s.median for s in honeypots.values())
        assert worst_fused <= best_honeypot

    def test_fusion_duration_less_biased_than_single_feeds(
        self, small_comparison
    ):
        evaluation = evaluate_fusion(small_comparison)
        assert evaluation.duration_error.median >= 0.0
        assert evaluation.n_domains > 10
        assert evaluation.best_single_onset_feed in (
            small_comparison.feed_names
        )
