"""Unit tests for URL parsing."""

import pytest

from repro.domains.parse import InvalidDomainError
from repro.domains.url import (
    InvalidUrlError,
    domain_of_url,
    parse_url,
    try_domain_of_url,
)

AT = chr(64)  # keep literal user@host strings out of the source


class TestParseUrl:
    def test_basic(self):
        p = parse_url("http://example.com/index.html")
        assert p.scheme == "http"
        assert p.host == "example.com"
        assert p.port is None
        assert p.path == "/index.html"

    def test_https(self):
        assert parse_url("https://example.com").scheme == "https"

    def test_default_path(self):
        assert parse_url("http://example.com").path == "/"

    def test_port(self):
        p = parse_url("http://example.com:8080/x")
        assert p.port == 8080

    def test_userinfo_stripped(self):
        p = parse_url(f"http://user:pw{AT}shop.example.com:81/p")
        assert p.host == "shop.example.com"
        assert p.port == 81

    def test_query_and_fragment_terminate_authority(self):
        assert parse_url("http://example.com?q=1").host == "example.com"
        assert parse_url("http://example.com#frag").host == "example.com"

    def test_host_lowercased(self):
        assert parse_url("http://EXAMPLE.Com/").host == "example.com"

    def test_ip_literal_detected(self):
        assert parse_url("http://192.168.1.1/").is_ip_literal
        assert not parse_url("http://example.com/").is_ip_literal

    def test_rejects_missing_scheme(self):
        with pytest.raises(InvalidUrlError):
            parse_url("example.com/path")

    def test_rejects_non_http_scheme(self):
        with pytest.raises(InvalidUrlError):
            parse_url("ftp://example.com/")

    def test_rejects_bad_port(self):
        with pytest.raises(InvalidUrlError):
            parse_url("http://example.com:abc/")
        with pytest.raises(InvalidUrlError):
            parse_url("http://example.com:99999/")

    def test_rejects_empty_host(self):
        with pytest.raises(InvalidUrlError):
            parse_url("http:///path")

    def test_rejects_non_string(self):
        with pytest.raises(InvalidUrlError):
            parse_url(None)


class TestDomainOfUrl:
    def test_extracts_registered_domain(self):
        assert (
            domain_of_url("http://www.shop.pillstore.info/buy?x=1")
            == "pillstore.info"
        )

    def test_rejects_ip_literal(self):
        with pytest.raises(InvalidUrlError):
            domain_of_url("http://10.0.0.1/")

    def test_rejects_bare_suffix_host(self):
        with pytest.raises(InvalidDomainError):
            domain_of_url("http://com/")


class TestTryDomainOfUrl:
    def test_valid(self):
        assert try_domain_of_url("https://a.b.example.org/") == "example.org"

    def test_all_failure_modes_return_none(self):
        for bad in ("nota url", "ftp://x.com/", "http://10.0.0.1/",
                    "http://com/", "http://bad_host.com/"):
            assert try_domain_of_url(bad) is None
