"""Unit and property tests for the capture machinery."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecosystem.entities import (
    AddressStrategy,
    Campaign,
    CampaignClass,
    DomainPlacement,
)
from repro.feeds.capture import (
    REAL_USER_REACH,
    campaign_inclusion,
    capture_campaign,
    capture_placement,
    delivered_placement_volume,
    delivered_real_user_volume,
    exponential_delay,
    incoming_placement_volume,
    poisson,
    scatter_records,
)


def make_campaign(volume=1000.0, start=0, end=1000, lag=0, evasion=0.5,
                  strategy=AddressStrategy.BRUTE_FORCE, chaff=0.0):
    return Campaign(
        campaign_id=0,
        campaign_class=CampaignClass.DIRECT_BROADCAST,
        strategy=strategy,
        placements=[
            DomainPlacement("x.com", start, end, volume, broadcast_lag=lag)
        ],
        filter_evasion=evasion,
        chaff_probability=chaff,
    )


class TestPoisson:
    def test_zero_lambda(self):
        assert poisson(random.Random(0), 0.0) == 0

    def test_negative_lambda_rejected(self):
        with pytest.raises(ValueError):
            poisson(random.Random(0), -1.0)

    def test_small_mean_accuracy(self):
        rng = random.Random(1)
        draws = [poisson(rng, 2.5) for _ in range(4000)]
        mean = sum(draws) / len(draws)
        assert 2.3 < mean < 2.7

    def test_large_mean_accuracy(self):
        rng = random.Random(2)
        draws = [poisson(rng, 400.0) for _ in range(500)]
        mean = sum(draws) / len(draws)
        assert 390 < mean < 410

    @given(st.floats(0.0, 200.0), st.integers(0, 2**32 - 1))
    @settings(max_examples=80)
    def test_property_non_negative(self, lam, seed):
        assert poisson(random.Random(seed), lam) >= 0


class TestScatterRecords:
    def test_count_and_interval(self):
        records = scatter_records(random.Random(3), "a.com", 50, 100, 200)
        assert len(records) == 50
        for record in records:
            assert record.domain == "a.com"
            assert 100 <= record.time < 200

    def test_zero_count(self):
        assert scatter_records(random.Random(0), "a.com", 0, 0, 10) == []

    def test_delay_applied(self):
        records = scatter_records(
            random.Random(4), "a.com", 20, 100, 101, delay=lambda r: 1000.0
        )
        assert all(r.time >= 1100 for r in records)


class TestCapturePlacement:
    def test_zero_exposure(self):
        p = DomainPlacement("a.com", 0, 100, 1000.0)
        assert capture_placement(random.Random(0), p, 0.0) == []

    def test_expected_count_scales_with_exposure(self):
        p = DomainPlacement("a.com", 0, 1000, 10_000.0)
        rng = random.Random(5)
        n = len(capture_placement(rng, p, 0.1))
        assert 900 < n < 1100

    def test_cap_respected(self):
        p = DomainPlacement("a.com", 0, 1000, 10_000.0)
        records = capture_placement(random.Random(6), p, 1.0, cap=17)
        assert len(records) == 17

    def test_truncation_is_counted_not_silent(self):
        # Regression: hitting the safety cap used to drop records with
        # no trace; now every dropped record lands in an obs counter.
        from repro import obs

        p = DomainPlacement("a.com", 0, 1000, 10_000.0)
        tracer = obs.Tracer()
        with obs.activate(tracer):
            records = capture_placement(random.Random(6), p, 1.0, cap=17)
        assert len(records) == 17
        dropped = tracer.metrics.counter("feeds.truncated_records")
        assert dropped > 0
        assert tracer.metrics.counter("feeds.truncated_placements") == 1

    def test_uncapped_capture_counts_nothing(self):
        from repro import obs

        p = DomainPlacement("a.com", 0, 1000, 1000.0)
        tracer = obs.Tracer()
        with obs.activate(tracer):
            capture_placement(random.Random(6), p, 0.5)
        assert tracer.metrics.counter("feeds.truncated_records") == 0
        assert tracer.metrics.counter("feeds.truncated_placements") == 0

    def test_not_before_truncates(self):
        p = DomainPlacement("a.com", 0, 1000, 10_000.0)
        records = capture_placement(
            random.Random(7), p, 0.1, not_before=900
        )
        assert all(r.time >= 900 for r in records)
        # Visible fraction is 10%, so roughly 100 records, not 1000.
        assert len(records) < 200

    def test_not_before_past_end_skips(self):
        p = DomainPlacement("a.com", 0, 100, 1000.0)
        assert capture_placement(
            random.Random(8), p, 1.0, not_before=100
        ) == []


class TestCaptureCampaign:
    def test_basic_capture(self):
        records = capture_campaign(
            random.Random(9), make_campaign(volume=5000), 0.1
        )
        assert 400 < len(records) < 600

    def test_broadcast_lag_respected(self):
        campaign = make_campaign(volume=5000, start=0, end=1000, lag=500)
        records = capture_campaign(
            random.Random(10), campaign, 0.1, respect_broadcast_lag=True
        )
        assert records
        assert all(r.time >= 500 for r in records)

    def test_broadcast_lag_ignored_by_default(self):
        campaign = make_campaign(volume=5000, start=0, end=1000, lag=500)
        records = capture_campaign(random.Random(11), campaign, 0.1)
        assert any(r.time < 500 for r in records)

    def test_chaff_added(self):
        campaign = make_campaign(volume=5000, chaff=1.0)
        records = capture_campaign(
            random.Random(12),
            campaign,
            0.05,
            chaff_sampler=lambda rng: "chaff.org",
            chaff_probability=1.0,
        )
        domains = {r.domain for r in records}
        assert domains == {"x.com", "chaff.org"}
        chaff_count = sum(1 for r in records if r.domain == "chaff.org")
        spam_count = len(records) - chaff_count
        assert chaff_count == spam_count

    def test_onset_fraction_shifts_start(self):
        campaign = make_campaign(volume=20_000, start=0, end=1000)
        early_times = []
        for seed in range(5):
            records = capture_campaign(
                random.Random(seed), campaign, 0.05,
                onset_max_fraction=0.9,
            )
            if records:
                early_times.append(min(r.time for r in records))
        assert any(t > 50 for t in early_times)


class TestDeliveryModels:
    def test_reach_ordering(self):
        # Purchased/social lists are all real users; brute force wastes
        # most of its addresses.
        assert (
            REAL_USER_REACH[AddressStrategy.PURCHASED]
            > REAL_USER_REACH[AddressStrategy.BRUTE_FORCE]
        )

    def test_delivered_volume_uses_evasion(self):
        campaign = make_campaign(volume=1000, evasion=0.5)
        placement = campaign.placements[0]
        delivered = delivered_placement_volume(campaign, placement)
        assert delivered == 1000 * 0.6 * 0.5

    def test_incoming_volume_ignores_evasion(self):
        campaign = make_campaign(volume=1000, evasion=0.5)
        placement = campaign.placements[0]
        assert incoming_placement_volume(campaign, placement) == 600.0

    def test_campaign_level_delivered(self):
        campaign = make_campaign(volume=1000, evasion=0.5)
        assert delivered_real_user_volume(campaign) == 300.0


class TestInclusionAndDelay:
    def test_inclusion_extremes(self):
        rng = random.Random(0)
        assert not campaign_inclusion(rng, 0.0)
        assert campaign_inclusion(rng, 1.0)

    def test_inclusion_probability(self):
        rng = random.Random(13)
        hits = sum(campaign_inclusion(rng, 0.3) for _ in range(5000))
        assert 1300 < hits < 1700

    def test_exponential_delay_mean(self):
        sampler = exponential_delay(100.0)
        rng = random.Random(14)
        draws = [sampler(rng) for _ in range(5000)]
        assert 90 < sum(draws) / len(draws) < 110

    def test_exponential_delay_rejects_bad_mean(self):
        with pytest.raises(ValueError):
            exponential_delay(0.0)
