"""Cross-module property tests (hypothesis) on core invariants."""

import random
import statistics

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.timing import _percentile
from repro.ecosystem.entities import DomainPlacement
from repro.feeds.base import FeedDataset, FeedRecord, FeedType
from repro.feeds.capture import capture_placement
from repro.io.serialization import (
    read_feed_jsonl,
    roundtrip_equal,
    write_feed_jsonl,
)
from repro.io.url_ingest import IngestStats
from repro.stats.distributions import EmpiricalDistribution
from repro.stats.kendall import kendall_tau_distributions

_domain = st.from_regex(r"[a-z]{1,8}[0-9]{0,3}\.(com|net|org|biz)",
                        fullmatch=True)


class TestCaptureInvariants:
    @given(
        st.integers(0, 10_000),   # start
        st.integers(30, 50_000),  # duration
        st.floats(1.0, 50_000.0),  # volume
        st.floats(0.0, 1.0),      # exposure
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=60)
    def test_records_confined_to_placement(
        self, start, duration, volume, exposure, seed
    ):
        placement = DomainPlacement("x.com", start, start + duration, volume)
        records = capture_placement(
            random.Random(seed), placement, exposure
        )
        for record in records:
            assert placement.start <= record.time < placement.end
            assert record.domain == "x.com"

    @given(
        st.floats(1.0, 10_000.0),
        st.floats(0.0, 0.5),
        st.floats(0.0, 0.9),
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=60)
    def test_onset_reduces_or_preserves_expected_count(
        self, volume, exposure, onset, seed
    ):
        placement = DomainPlacement("x.com", 0, 10_000, volume)
        not_before = int(onset * placement.duration)
        full = len(
            capture_placement(random.Random(seed), placement, exposure)
        )
        truncated_records = capture_placement(
            random.Random(seed), placement, exposure, not_before=not_before
        )
        for record in truncated_records:
            assert record.time >= not_before
        del full  # counts are random; confinement is the invariant


class TestDatasetInvariants:
    @given(
        st.lists(
            st.tuples(_domain, st.integers(0, 100_000)),
            max_size=60,
        )
    )
    def test_first_seen_never_after_last_seen(self, raw):
        dataset = FeedDataset(
            "t", FeedType.MX_HONEYPOT,
            [FeedRecord(d, t) for d, t in raw],
        )
        first = dataset.first_seen()
        last = dataset.last_seen()
        assert set(first) == set(last) == dataset.unique_domains()
        for domain in first:
            assert first[domain] <= last[domain]

    @given(
        st.lists(
            st.tuples(_domain, st.integers(0, 100_000)),
            max_size=60,
        )
    )
    def test_counts_sum_to_samples(self, raw):
        dataset = FeedDataset(
            "t", FeedType.MX_HONEYPOT,
            [FeedRecord(d, t) for d, t in raw],
        )
        counts = dataset.domain_counts()
        assert counts.total == dataset.total_samples

    @given(
        st.lists(
            st.tuples(_domain, st.integers(0, 100_000)),
            max_size=40,
        ),
        st.booleans(),
    )
    @settings(max_examples=40)
    def test_jsonl_roundtrip(self, raw, has_volume):
        import os
        import tempfile

        dataset = FeedDataset(
            "t", FeedType.BOTNET,
            [FeedRecord(d, t) for d, t in raw],
            has_volume=has_volume,
        )
        fd, path = tempfile.mkstemp(suffix=".jsonl")
        os.close(fd)
        try:
            write_feed_jsonl(dataset, path)
            assert roundtrip_equal(dataset, read_feed_jsonl(path))
        finally:
            os.unlink(path)


class TestRankAgreementInvariants:
    @given(
        st.dictionaries(_domain, st.integers(1, 100), min_size=2,
                        max_size=25),
        st.floats(1.1, 5.0),
    )
    @settings(max_examples=40)
    def test_scaling_preserves_perfect_rank_agreement(self, counts, factor):
        p = EmpiricalDistribution(counts)
        q = EmpiricalDistribution(
            {k: v * factor for k, v in counts.items()}
        )
        # Monotone scaling preserves ranks exactly; tau is 1 unless the
        # distribution carries no rank information (all counts tied).
        tau = kendall_tau_distributions(p, q)
        if len(set(counts.values())) > 1:
            assert tau == 1.0
        else:
            assert tau == 0.0


_samples = st.lists(
    st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=50,
)


class TestPercentileInvariants:
    @given(_samples, st.floats(0.0, 1.0))
    @settings(max_examples=80)
    def test_bounded_by_sample_extremes(self, values, q):
        ordered = sorted(values)
        result = _percentile(ordered, q)
        assert ordered[0] <= result <= ordered[-1]

    @given(_samples, st.floats(0.0, 1.0), st.floats(0.0, 1.0))
    @settings(max_examples=80)
    def test_monotone_in_q(self, values, q1, q2):
        ordered = sorted(values)
        lo, hi = min(q1, q2), max(q1, q2)
        assert _percentile(ordered, lo) <= _percentile(ordered, hi)

    @given(_samples)
    @settings(max_examples=60)
    def test_endpoints_and_median(self, values):
        ordered = sorted(values)
        assert _percentile(ordered, 0.0) == ordered[0]
        assert _percentile(ordered, 1.0) == ordered[-1]
        assert _percentile(ordered, 0.5) == pytest.approx(
            statistics.median(ordered), rel=1e-9, abs=1e-9
        )

    @given(
        st.lists(
            st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
            min_size=2,
            max_size=50,
        )
    )
    @settings(max_examples=60)
    def test_agrees_with_statistics_quantiles(self, values):
        # statistics.quantiles(n=4, method="inclusive") uses the same
        # linear interpolation over the sorted sample.
        ordered = sorted(values)
        q1, q2, q3 = statistics.quantiles(ordered, n=4, method="inclusive")
        def approx(v):
            return pytest.approx(v, rel=1e-9, abs=1e-9)

        assert _percentile(ordered, 0.25) == approx(q1)
        assert _percentile(ordered, 0.50) == approx(q2)
        assert _percentile(ordered, 0.75) == approx(q3)


class TestIngestStatsInvariants:
    @given(
        st.integers(0, 10**6),
        st.integers(0, 10**6),
        st.integers(0, 10**6),
        st.integers(0, 10**6),
        st.integers(0, 10**6),
    )
    @settings(max_examples=80)
    def test_total_and_drop_fraction(
        self, accepted, bad_json, missing, bad_url, bad_host
    ):
        stats = IngestStats(
            accepted=accepted,
            bad_json=bad_json,
            missing_fields=missing,
            unparseable_url=bad_url,
            unparseable_host=bad_host,
        )
        assert stats.total == (
            accepted + bad_json + missing + bad_url + bad_host
        )
        assert 0.0 <= stats.drop_fraction <= 1.0
        if stats.total:
            dropped = stats.total - accepted
            assert stats.drop_fraction == pytest.approx(
                dropped / stats.total, rel=1e-9, abs=1e-9
            )
        else:
            assert stats.drop_fraction == 0.0
        if accepted == stats.total:
            assert stats.drop_fraction == 0.0
