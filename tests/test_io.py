"""Unit tests for serialization."""

import dataclasses

import pytest

from repro.feeds.base import FeedDataset, FeedRecord, FeedType
from repro.io.csvexport import rows_to_csv, write_csv
from repro.io.serialization import (
    FeedFormatError,
    read_feed_jsonl,
    read_feeds_dir,
    roundtrip_equal,
    write_feed_jsonl,
    write_feeds_dir,
)


def sample_dataset(name="mx1", has_volume=True):
    return FeedDataset(
        name,
        FeedType.MX_HONEYPOT,
        [FeedRecord("a.com", 5), FeedRecord("b.com", 10)],
        has_volume=has_volume,
    )


class TestJsonlRoundtrip:
    def test_roundtrip(self, tmp_path):
        original = sample_dataset()
        path = tmp_path / "mx1.jsonl"
        write_feed_jsonl(original, str(path))
        loaded = read_feed_jsonl(str(path))
        assert roundtrip_equal(original, loaded)

    def test_has_volume_preserved(self, tmp_path):
        original = sample_dataset(has_volume=False)
        path = tmp_path / "f.jsonl"
        write_feed_jsonl(original, str(path))
        assert not read_feed_jsonl(str(path)).has_volume

    def test_empty_dataset(self, tmp_path):
        original = FeedDataset("x", FeedType.BLACKLIST, [], has_volume=False)
        path = tmp_path / "x.jsonl"
        write_feed_jsonl(original, str(path))
        loaded = read_feed_jsonl(str(path))
        assert loaded.total_samples == 0
        assert loaded.feed_type is FeedType.BLACKLIST

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "f.jsonl"
        path.write_text(
            '{"feed": "x", "type": "botnet"}\n'
            '\n'
            '{"d": "a.com", "t": 3}\n'
        )
        loaded = read_feed_jsonl(str(path))
        assert loaded.total_samples == 1


class TestJsonlErrors:
    def test_missing_header(self, tmp_path):
        path = tmp_path / "f.jsonl"
        path.write_text("")
        with pytest.raises(FeedFormatError):
            read_feed_jsonl(str(path))

    def test_bad_header_json(self, tmp_path):
        path = tmp_path / "f.jsonl"
        path.write_text("not json\n")
        with pytest.raises(FeedFormatError):
            read_feed_jsonl(str(path))

    def test_header_missing_fields(self, tmp_path):
        path = tmp_path / "f.jsonl"
        path.write_text('{"feed": "x"}\n')
        with pytest.raises(FeedFormatError):
            read_feed_jsonl(str(path))

    def test_unknown_feed_type(self, tmp_path):
        path = tmp_path / "f.jsonl"
        path.write_text('{"feed": "x", "type": "telepathy"}\n')
        with pytest.raises(FeedFormatError):
            read_feed_jsonl(str(path))

    def test_bad_record_reports_line(self, tmp_path):
        path = tmp_path / "f.jsonl"
        path.write_text(
            '{"feed": "x", "type": "botnet"}\n{"d": "a.com"}\n'
        )
        with pytest.raises(FeedFormatError, match=":2:"):
            read_feed_jsonl(str(path))


class TestDirectoryIo:
    def test_write_read_dir(self, tmp_path):
        datasets = {
            "mx1": sample_dataset("mx1"),
            "Hu": sample_dataset("Hu", has_volume=False),
        }
        write_feeds_dir(datasets, str(tmp_path / "feeds"))
        loaded = read_feeds_dir(str(tmp_path / "feeds"))
        assert set(loaded) == {"mx1", "Hu"}
        assert roundtrip_equal(datasets["mx1"], loaded["mx1"])

    def test_non_jsonl_files_ignored(self, tmp_path):
        directory = tmp_path / "feeds"
        write_feeds_dir({"mx1": sample_dataset()}, str(directory))
        (directory / "README.txt").write_text("ignore me")
        assert set(read_feeds_dir(str(directory))) == {"mx1"}


@dataclasses.dataclass(frozen=True)
class _Row:
    feed: str
    count: int


class TestCsvExport:
    def test_rows_to_csv(self):
        text = rows_to_csv([_Row("Hu", 5), _Row("mx1", 2)])
        lines = text.strip().splitlines()
        assert lines[0] == "feed,count"
        assert lines[1] == "Hu,5"

    def test_write_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        write_csv([_Row("Hu", 5)], str(path))
        assert path.read_text().startswith("feed,count")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            rows_to_csv([])

    def test_mixed_types_rejected(self):
        @dataclasses.dataclass
        class Other:
            x: int

        with pytest.raises(ValueError):
            rows_to_csv([_Row("a", 1), Other(2)])

    def test_non_dataclass_rejected(self):
        with pytest.raises(ValueError):
            rows_to_csv([{"feed": "Hu"}])
