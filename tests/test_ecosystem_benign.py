"""Unit tests for the benign web."""

import random

import pytest

from repro.ecosystem.benign import BenignWorld, build_benign_world


def small_benign(seed=1, **overrides):
    params = dict(
        alexa_size=200,
        odp_size=100,
        odp_alexa_overlap=0.5,
        n_redirectors=8,
        chaff_pool_size=30,
        n_newsletter_domains=15,
    )
    params.update(overrides)
    return build_benign_world(random.Random(seed), **params)


class TestBuildBenignWorld:
    def test_sizes(self):
        world = small_benign()
        assert len(world.alexa_ranked) == 200
        assert len(world.odp_domains) == 100
        assert len(world.redirectors) == 8
        assert len(world.newsletter_domains) == 15

    def test_odp_alexa_overlap_fraction(self):
        world = small_benign()
        overlap = world.odp_domains & world.alexa_set
        assert len(overlap) == 50

    def test_redirectors_alexa_listed(self):
        world = small_benign()
        for r in world.redirectors:
            assert r in world.alexa_set

    def test_chaff_from_listed_pools(self):
        world = small_benign()
        for domain in world.chaff_pool:
            assert domain in world.alexa_set or domain in world.odp_domains

    def test_rejects_bad_overlap(self):
        with pytest.raises(ValueError):
            small_benign(odp_alexa_overlap=1.5)

    def test_rejects_too_many_redirectors(self):
        with pytest.raises(ValueError):
            small_benign(n_redirectors=500)

    def test_deterministic(self):
        assert small_benign(3).alexa_ranked == small_benign(3).alexa_ranked


class TestBenignWorld:
    def test_duplicate_alexa_rejected(self):
        with pytest.raises(ValueError):
            BenignWorld(["a.com", "a.com"], set(), [], [], [])

    def test_unlisted_redirector_rejected(self):
        with pytest.raises(ValueError):
            BenignWorld(["a.com"], set(), ["b.com"], [], [])

    def test_is_benign(self):
        world = small_benign()
        assert world.is_benign(world.alexa_ranked[0])
        assert world.is_benign(next(iter(world.odp_domains)))
        assert world.is_benign(world.newsletter_domains[0])
        assert not world.is_benign("spammy-pills.biz")

    def test_all_benign_union(self):
        world = small_benign()
        assert world.alexa_set <= world.all_benign
        assert world.odp_domains <= world.all_benign

    def test_sample_chaff_head_heavy(self):
        world = small_benign()
        rng = random.Random(0)
        draws = [world.sample_chaff(rng) for _ in range(2000)]
        head = world.chaff_pool[0]
        tail = world.chaff_pool[-1]
        assert draws.count(head) > draws.count(tail)

    def test_sample_chaff_empty_raises(self):
        world = BenignWorld(["a.com"], set(), [], [], [])
        with pytest.raises(ValueError):
            world.sample_chaff(random.Random(0))

    def test_sample_redirector(self):
        world = small_benign()
        rng = random.Random(0)
        assert world.sample_redirector(rng) in world.redirectors

    def test_sample_redirector_empty_raises(self):
        world = BenignWorld(["a.com"], set(), [], [], [])
        with pytest.raises(ValueError):
            world.sample_redirector(random.Random(0))

    def test_sample_newsletter(self):
        world = small_benign()
        assert (
            world.sample_newsletter(random.Random(0))
            in world.newsletter_domains
        )
