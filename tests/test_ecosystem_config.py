"""Unit tests for ecosystem configuration."""

import dataclasses

import pytest

from repro.ecosystem.config import (
    BenignConfig,
    CampaignClassConfig,
    EcosystemConfig,
    ProgramConfig,
    paper_config,
    small_config,
)
from repro.ecosystem.entities import AddressStrategy, CampaignClass


def valid_class_config(**overrides):
    defaults = dict(
        count=5,
        volume_low=10.0,
        volume_high=100.0,
        volume_alpha=1.0,
        domains_low=1,
        domains_high=3,
        duration_low_days=1.0,
        duration_high_days=2.0,
        strategies=((AddressStrategy.BRUTE_FORCE, 1.0),),
    )
    defaults.update(overrides)
    return CampaignClassConfig(**defaults)


class TestCampaignClassConfig:
    def test_valid(self):
        cfg = valid_class_config()
        assert cfg.count == 5

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            valid_class_config(count=-1)

    def test_rejects_bad_volume_range(self):
        with pytest.raises(ValueError):
            valid_class_config(volume_low=100.0, volume_high=10.0)
        with pytest.raises(ValueError):
            valid_class_config(volume_low=0.0)

    def test_rejects_bad_domain_range(self):
        with pytest.raises(ValueError):
            valid_class_config(domains_low=0)
        with pytest.raises(ValueError):
            valid_class_config(domains_low=5, domains_high=2)

    def test_rejects_bad_duration(self):
        with pytest.raises(ValueError):
            valid_class_config(duration_low_days=3.0, duration_high_days=1.0)

    def test_rejects_bad_tagged_fraction(self):
        with pytest.raises(ValueError):
            valid_class_config(tagged_fraction=1.5)

    def test_rejects_empty_strategies(self):
        with pytest.raises(ValueError):
            valid_class_config(strategies=())

    def test_frozen(self):
        cfg = valid_class_config()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.count = 10


class TestProgramConfig:
    def test_total_programs_is_45_by_default(self):
        assert ProgramConfig().total_programs == 45


class TestPresets:
    def test_paper_config_has_all_classes(self):
        cfg = paper_config()
        for cls in (
            CampaignClass.BOTNET_BROADCAST,
            CampaignClass.DIRECT_BROADCAST,
            CampaignClass.QUIET_TARGETED,
            CampaignClass.OTHER_GOODS,
        ):
            assert cls in cfg.campaign_classes

    def test_small_config_is_smaller(self):
        small, paper = small_config(), paper_config()
        for cls, small_cfg in small.campaign_classes.items():
            assert small_cfg.count <= paper.campaign_classes[cls].count
        assert small.benign.alexa_size < paper.benign.alexa_size
        assert small.dga.n_domains < paper.dga.n_domains

    def test_quiet_campaigns_dominate_counts(self):
        # The structural driver of the paper's coverage result: quiet
        # campaigns vastly outnumber loud ones.
        cfg = paper_config()
        quiet = cfg.campaign_classes[CampaignClass.QUIET_TARGETED].count
        loud = cfg.campaign_classes[CampaignClass.BOTNET_BROADCAST].count
        assert quiet > 10 * loud

    def test_loud_campaigns_dominate_volume(self):
        cfg = paper_config()
        quiet = cfg.campaign_classes[CampaignClass.QUIET_TARGETED]
        loud = cfg.campaign_classes[CampaignClass.BOTNET_BROADCAST]
        assert loud.volume_high > 100 * quiet.volume_high

    def test_quiet_campaigns_evade_filters(self):
        cfg = paper_config()
        quiet = cfg.campaign_classes[CampaignClass.QUIET_TARGETED]
        loud = cfg.campaign_classes[CampaignClass.BOTNET_BROADCAST]
        assert quiet.filter_evasion_low > loud.filter_evasion_high

    def test_quiet_strategies_invisible_to_honeypots(self):
        cfg = paper_config()
        quiet = cfg.campaign_classes[CampaignClass.QUIET_TARGETED]
        strategies = dict(quiet.strategies)
        honeypot_visible = strategies.get(AddressStrategy.BRUTE_FORCE, 0.0)
        assert honeypot_visible == 0.0

    def test_class_config_lookup(self):
        cfg = paper_config()
        assert (
            cfg.class_config(CampaignClass.OTHER_GOODS)
            is cfg.campaign_classes[CampaignClass.OTHER_GOODS]
        )
        with pytest.raises(KeyError):
            EcosystemConfig().class_config(CampaignClass.OTHER_GOODS)

    def test_benign_defaults_sane(self):
        benign = BenignConfig()
        assert benign.n_redirectors < benign.alexa_size
        assert 0.0 <= benign.odp_alexa_overlap <= 1.0
