"""Order-invariance regressions for the bugs reprolint surfaced.

REP004 flagged unsorted float accumulations in volume coverage,
revenue coverage, and filter evaluation.  These tests pin the fix:
the same world and feed content, presented with every container
assembled in a different order (reversed record lists, reversed
dataset mapping), must produce *bit-identical* results.
"""

from __future__ import annotations

import pytest

from repro.analysis import FeedComparison
from repro.analysis.affiliates import revenue_coverage
from repro.analysis.filtering import evaluate_all_filters
from repro.analysis.volume import volume_coverage
from repro.feeds.base import FeedDataset

SMALL_SEED = 7


@pytest.fixture(scope="module")
def permuted_comparison(small_world, small_datasets):
    """The same feeds with every container built in reversed order."""
    permuted = {}
    for name in reversed(list(small_datasets)):
        dataset = small_datasets[name]
        permuted[name] = FeedDataset(
            name=dataset.name,
            feed_type=dataset.feed_type,
            records=list(reversed(dataset.records)),
            has_volume=dataset.has_volume,
        )
    return FeedComparison(small_world, permuted, seed=SMALL_SEED)


def as_ordered(rows):
    return sorted(rows, key=lambda row: row.feed)


class TestVolumeCoverageOrderInvariance:
    @pytest.mark.parametrize("kind", ["live", "tagged"])
    def test_bit_identical_fractions(
        self, small_comparison, permuted_comparison, kind
    ):
        baseline = as_ordered(volume_coverage(small_comparison, kind))
        shuffled = as_ordered(volume_coverage(permuted_comparison, kind))
        assert baseline == shuffled  # exact float equality, not approx


class TestRevenueCoverageOrderInvariance:
    def test_bit_identical_revenue(
        self, small_comparison, permuted_comparison
    ):
        baseline = as_ordered(revenue_coverage(small_comparison))
        shuffled = as_ordered(revenue_coverage(permuted_comparison))
        assert baseline == shuffled


class TestFilterEvaluationOrderInvariance:
    def test_bit_identical_reports(
        self, small_comparison, permuted_comparison
    ):
        baseline = evaluate_all_filters(small_comparison)
        shuffled = evaluate_all_filters(permuted_comparison)
        assert set(baseline) == set(shuffled)
        for feed, report in baseline.items():
            assert report == shuffled[feed]  # frozen dataclass equality


class TestMailOracleAssemblyOrderInvariance:
    def test_query_ignores_submission_order(self, small_comparison):
        """The oracle applies noise in sorted order (PR 1 fix)."""
        domains = sorted(small_comparison.union_domains())[:50]
        forward = small_comparison.mail.query(domains)
        backward = small_comparison.mail.query(list(reversed(domains)))
        assert forward == backward
