"""Streaming/batch equivalence: the subsystem's load-bearing guarantee.

A fully-drained :class:`StreamEngine` snapshot must reproduce the batch
:class:`PaperPipeline` results *byte-for-byte* -- same Table 1/2/3 data,
same rendered text, same figure data.  These tests assert that for the
miniature world under two different seeds and for the paper-scale world
under seed 2012, plus checkpoint/resume and windowed (as-of-day)
consistency.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.ecosystem import build_world, small_config
from repro.feeds import FeedDataset, collect_all, standard_feed_suite
from repro.analysis import FeedComparison
from repro.pipeline import PaperPipeline
from repro.simtime import MINUTES_PER_DAY
from repro.stream import StreamEngine


def _drained_snapshot(pipeline: PaperPipeline):
    engine = pipeline.stream_engine()
    engine.run()
    assert engine.exhausted
    return engine, engine.snapshot()


def _assert_snapshot_matches_batch(pipeline, snapshot):
    # Data-level equality...
    assert snapshot.table1() == pipeline.table1()
    assert snapshot.table2() == pipeline.table2()
    assert snapshot.table3() == pipeline.table3()
    for kind in ("live", "tagged"):
        assert snapshot.figure1(kind) == pipeline.figure1(kind)
        fig2_stream, fig2_batch = snapshot.figure2(kind), pipeline.figure2(kind)
        assert fig2_stream.feeds == fig2_batch.feeds
        for row in fig2_stream.feeds:
            for col in fig2_stream.columns():
                assert fig2_stream.cell(row, col) == fig2_batch.cell(row, col)
        assert snapshot.figure3(kind) == pipeline.figure3(kind)
    # ...and byte-identical rendered tables.
    assert snapshot.render_table1() == pipeline.render_table1()
    assert snapshot.render_table2() == pipeline.render_table2()
    assert snapshot.render_table3() == pipeline.render_table3()


@pytest.fixture(scope="module", params=[7, 11], ids=["seed7", "seed11"])
def small_pipeline(request):
    pipeline = PaperPipeline(small_config(), seed=request.param)
    pipeline.run()
    return pipeline


class TestSmallWorldEquivalence:
    def test_drained_stream_matches_batch(self, small_pipeline):
        _, snapshot = _drained_snapshot(small_pipeline)
        _assert_snapshot_matches_batch(small_pipeline, snapshot)

    def test_batch_size_does_not_affect_results(self, small_pipeline):
        baseline = small_pipeline.stream_engine()
        baseline.run()
        tiny = small_pipeline.stream_engine(batch_size=17)
        tiny.run()
        assert (
            tiny.snapshot().render_tables()
            == baseline.snapshot().render_tables()
        )

    def test_online_coverage_matches_snapshot_counters(self, small_pipeline):
        engine, snapshot = _drained_snapshot(small_pipeline)
        by_feed = {row.feed: row for row in engine.online_coverage()}
        for name, stats in snapshot.feeds.items():
            row = by_feed[name]
            assert row.samples == stats.total_samples
            assert row.unique == stats.n_unique
        # Exclusive counters agree with a from-scratch set recomputation.
        all_unique = {
            name: stats.unique_domains()
            for name, stats in snapshot.feeds.items()
        }
        for name, mine in all_unique.items():
            others = set()
            for other, theirs in all_unique.items():
                if other != name:
                    others |= theirs
            assert by_feed[name].exclusive == len(mine - others)

    def test_resume_from_checkpoint_matches_straight_through(
        self, small_pipeline, tmp_path
    ):
        straight = small_pipeline.stream_engine()
        straight.run()
        expected = straight.snapshot()

        # Run halfway, checkpoint, throw the engine away.
        first = small_pipeline.stream_engine()
        first.advance_to_day(46)
        path = str(tmp_path / "mid.json")
        first.save_checkpoint(path)
        midpoint = first.records_processed
        assert 0 < midpoint < expected.records_processed
        del first

        # A fresh engine resumed from the file finishes identically.
        result = small_pipeline.run()
        resumed = StreamEngine.resume(
            result.world, result.datasets, path,
        )
        assert resumed.records_processed == midpoint
        resumed.run()
        final = resumed.snapshot()
        assert final.records_processed == expected.records_processed
        assert final.render_tables() == expected.render_tables()
        assert final.table2() == expected.table2()
        assert final.table3() == expected.table3()

    def test_checkpoint_is_json_portable(self, small_pipeline, tmp_path):
        engine = small_pipeline.stream_engine()
        engine.advance_to_day(10)
        path = str(tmp_path / "early.json")
        engine.save_checkpoint(path)
        engine.run()

        result = small_pipeline.run()
        resumed = StreamEngine.resume(result.world, result.datasets, path)
        resumed.run()
        assert (
            resumed.snapshot().render_tables()
            == engine.snapshot().render_tables()
        )


class TestWindowedSnapshots:
    def test_as_of_day_matches_batch_over_truncated_datasets(
        self, small_world, small_datasets
    ):
        """Table 2/3 "as of day N" == batch analysis of a truncated world."""
        day = 46
        engine = StreamEngine(small_world, small_datasets, seed=7)
        engine.advance_to_day(day)
        snapshot = engine.snapshot()
        assert snapshot.as_of_day is not None
        assert snapshot.as_of_day < day

        boundary = small_world.timeline.start + day * MINUTES_PER_DAY
        truncated = {
            name: FeedDataset(
                ds.name,
                ds.feed_type,
                [r for r in ds.chronological_records() if r.time < boundary],
                has_volume=ds.has_volume,
            )
            for name, ds in small_datasets.items()
            if any(r.time < boundary for r in ds.records)
        }
        comparison = FeedComparison(small_world, truncated, seed=7)
        from repro.analysis.purity import purity_table
        from repro.analysis.coverage import coverage_table

        order = [n for n in engine.feed_order if n in truncated]
        assert snapshot.table2() == purity_table(comparison, order)
        assert snapshot.table3() == coverage_table(comparison, order)

    def test_daily_snapshots_are_monotone_and_end_drained(
        self, small_world, small_datasets
    ):
        engine = StreamEngine(small_world, small_datasets, seed=7)
        seen = list(engine.daily_snapshots(every_days=23))
        counts = [s.records_processed for s in seen]
        assert counts == sorted(counts)
        assert engine.exhausted
        total = sum(ds.total_samples for ds in small_datasets.values())
        assert counts[-1] == total

    def test_snapshot_is_immutable_under_further_consumption(
        self, small_world, small_datasets
    ):
        engine = StreamEngine(small_world, small_datasets, seed=7)
        engine.advance_to_day(30)
        early = engine.snapshot()
        early_table2 = early.render_table2()
        frozen = {
            name: dataclasses.replace(stats)
            for name, stats in early.feeds.items()
        }
        engine.run()
        assert early.render_table2() == early_table2
        for name, stats in early.feeds.items():
            assert stats == frozen[name]


class TestPaperScaleEquivalence:
    """The acceptance criterion: byte-identical seed-2012 output."""

    def test_drained_stream_is_byte_identical_to_batch(self, paper_pipeline):
        engine, snapshot = _drained_snapshot(paper_pipeline)
        total = sum(
            ds.total_samples for ds in paper_pipeline.run().datasets.values()
        )
        assert engine.records_processed == total
        assert snapshot.table1() == paper_pipeline.table1()
        assert snapshot.render_table1() == paper_pipeline.render_table1()
        assert snapshot.render_table2() == paper_pipeline.render_table2()
        assert snapshot.render_table3() == paper_pipeline.render_table3()

    def test_paper_scale_resume_matches(self, paper_pipeline, tmp_path):
        engine = paper_pipeline.stream_engine()
        engine.advance_to_day(46)
        path = str(tmp_path / "day46.json")
        engine.save_checkpoint(path)

        result = paper_pipeline.run()
        resumed = StreamEngine.resume(result.world, result.datasets, path)
        resumed.run()

        engine.run()
        assert resumed.records_processed == engine.records_processed
        assert (
            resumed.snapshot().render_tables()
            == engine.snapshot().render_tables()
        )
