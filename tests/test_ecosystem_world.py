"""Unit tests for World queries, using the hand-built toy world."""

import pytest

from repro.ecosystem.world import HostingRecord
from repro.simtime import days


class TestHostingRecord:
    def test_live_within_window(self):
        record = HostingRecord("x.com", 100, 200, None, None)
        assert record.live_at(100)
        assert record.live_at(199)
        assert not record.live_at(200)
        assert not record.live_at(99)

    def test_dead_site_never_live(self):
        record = HostingRecord("x.com", 100, 200, None, None, dead=True)
        assert not record.live_at(150)


class TestWorldIndexes:
    def test_placements_by_domain(self, toy_world):
        index = toy_world.placements_by_domain()
        assert set(index) == {
            "loudpills.com", "loudpills2.net", "quietwatch.biz"
        }
        campaign, placement = index["quietwatch.biz"][0]
        assert campaign.campaign_id == 1
        assert placement.volume == 400.0

    def test_emitted_volume_by_domain(self, toy_world):
        volumes = toy_world.emitted_volume_by_domain()
        assert volumes["loudpills.com"] == 50_000.0
        assert volumes["quietwatch.biz"] == 400.0

    def test_advertised_domains(self, toy_world):
        assert toy_world.advertised_domains() == {
            "loudpills.com", "loudpills2.net", "quietwatch.biz"
        }

    def test_domain_interval(self, toy_world):
        assert toy_world.domain_interval("loudpills.com") == (
            days(10), days(20)
        )

    def test_domain_interval_unknown(self, toy_world):
        with pytest.raises(KeyError):
            toy_world.domain_interval("nope.com")

    def test_campaign_by_id(self, toy_world):
        assert toy_world.campaign_by_id(1).program_id == 1
        with pytest.raises(KeyError):
            toy_world.campaign_by_id(99)


class TestGroundTruthLookups:
    def test_truth_program_of_storefront(self, toy_world):
        assert toy_world.truth_program_of("loudpills.com") == 0
        assert toy_world.truth_program_of("quietwatch.biz") == 1

    def test_truth_program_of_redirector(self, toy_world):
        assert toy_world.truth_program_of("shortlink.us") == 0

    def test_truth_program_of_benign(self, toy_world):
        assert toy_world.truth_program_of("megaportal.com") is None

    def test_truth_affiliate_of(self, toy_world):
        assert toy_world.truth_affiliate_of("loudpills.com") == 0
        assert toy_world.truth_affiliate_of("shortlink.us") == 0
        assert toy_world.truth_affiliate_of("bignews.org") is None

    def test_rx_program_id(self, toy_world):
        assert toy_world.rx_program_id() == 0

    def test_is_dga(self, toy_world):
        assert not toy_world.is_dga("loudpills.com")

    def test_monitored_botnets(self, toy_world):
        assert toy_world.monitored_botnet_ids() == {0}


class TestSummary:
    def test_summary_counts(self, toy_world):
        summary = toy_world.summary()
        assert summary["campaigns"] == 2
        assert summary["tagged_campaigns"] == 2
        assert summary["advertised_domains"] == 3
        assert summary["dga_domains"] == 0
        assert summary["total_emitted_volume"] == 110_400.0
