"""reprolint rule engine: triggers, suppressions, output, CLI.

Every REP rule gets a fixture snippet that triggers it and a
counterpart that stays clean (sorted-wrapping, pragma suppression, or
out-of-scope placement).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.devtools import (
    DEFAULT_RULES,
    LintConfig,
    Severity,
    lint_paths,
    lint_source,
    render_json,
    render_text,
)
from repro.devtools.lint import LintError, has_errors
from repro.devtools.rules import compute_schema_pin

SRC_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)


def findings_for(code, path="/fixtures/snippet.py", config=None):
    return lint_source(path, textwrap.dedent(code), config)


def rules_of(findings):
    return sorted({f.rule for f in findings})


# ----------------------------------------------------------------------
# REP001: module-level random state
# ----------------------------------------------------------------------


class TestRep001:
    def test_module_level_draw_flagged(self):
        findings = findings_for(
            """
            import random
            x = random.random()
            """
        )
        assert rules_of(findings) == ["REP001"]
        assert findings[0].line == 3

    def test_seed_and_shuffle_flagged(self):
        findings = findings_for(
            """
            import random
            random.seed(4)
            random.shuffle([1, 2])
            """
        )
        assert [f.line for f in findings] == [3, 4]

    def test_import_from_flagged(self):
        findings = findings_for("from random import shuffle, randint\n")
        assert rules_of(findings) == ["REP001"]
        assert "shuffle" in findings[0].message

    def test_random_random_instance_ok(self):
        findings = findings_for(
            """
            import random
            rng = random.Random(7)
            value = rng.random()
            """
        )
        assert findings == []


# ----------------------------------------------------------------------
# REP002: builtin hash()
# ----------------------------------------------------------------------


class TestRep002:
    def test_hash_call_flagged(self):
        findings = findings_for('seed = hash("label")\n')
        assert rules_of(findings) == ["REP002"]

    def test_hashlib_ok(self):
        findings = findings_for(
            """
            import hashlib
            digest = hashlib.sha256(b"label").digest()
            """
        )
        assert findings == []


# ----------------------------------------------------------------------
# REP003: wall clock in simulation code
# ----------------------------------------------------------------------


class TestRep003:
    def test_time_time_flagged(self):
        findings = findings_for(
            """
            import time
            started = time.time()
            """
        )
        assert rules_of(findings) == ["REP003"]

    def test_perf_counter_ok(self):
        findings = findings_for(
            """
            import time
            started = time.perf_counter()
            """
        )
        assert findings == []

    def test_datetime_now_flagged(self):
        findings = findings_for(
            """
            import datetime
            stamp = datetime.datetime.now()
            """
        )
        assert rules_of(findings) == ["REP003"]

    def test_from_time_import_flagged(self):
        findings = findings_for("from time import time\n")
        assert rules_of(findings) == ["REP003"]

    def test_scoped_to_simulation_packages(self):
        code = """
        import time
        started = time.time()
        """
        inside = findings_for(code, path="/x/repro/feeds/mod.py")
        outside = findings_for(code, path="/x/repro/reporting/mod.py")
        # Inside the package a wall-clock read also breaches the REP008
        # host-time quarantine; REP003 is the simulation-scope rule.
        assert rules_of(inside) == ["REP003", "REP008"]
        assert rules_of(outside) == ["REP008"]


# ----------------------------------------------------------------------
# REP004: unsorted float accumulation
# ----------------------------------------------------------------------


class TestRep004:
    def test_sum_over_values_flagged(self):
        findings = findings_for("total = sum(volumes.values())\n")
        assert rules_of(findings) == ["REP004"]

    def test_sorted_wrap_ok(self):
        findings = findings_for("total = sum(sorted(volumes.values()))\n")
        assert findings == []

    def test_generator_over_items_flagged(self):
        findings = findings_for(
            "total = sum(v for d, v in volumes.items() if d)\n"
        )
        assert rules_of(findings) == ["REP004"]

    def test_generator_over_sorted_items_ok(self):
        findings = findings_for(
            "total = sum(v for d, v in sorted(volumes.items()))\n"
        )
        assert findings == []

    def test_integer_counting_ok(self):
        findings = findings_for(
            "n = sum(1 for v in volumes.values() if v > 0)\n"
        )
        assert findings == []

    def test_int_cast_ok(self):
        findings = findings_for(
            "n = sum(int(c) for c in cursors.values())\n"
        )
        assert findings == []

    def test_set_intersection_flagged(self):
        findings = findings_for(
            "total = sum(w[d] for d in (listed & benign))\n"
        )
        assert rules_of(findings) == ["REP004"]

    def test_augmented_accumulation_in_set_loop_flagged(self):
        findings = findings_for(
            """
            total = 0.0
            for domain in set(domains):
                total += weights[domain]
            """
        )
        assert rules_of(findings) == ["REP004"]

    def test_augmented_accumulation_sorted_loop_ok(self):
        findings = findings_for(
            """
            total = 0.0
            for domain in sorted(set(domains)):
                total += weights[domain]
            """
        )
        assert findings == []

    def test_scoped_to_accumulation_packages(self):
        code = "total = sum(volumes.values())\n"
        inside = findings_for(code, path="/x/repro/analysis/mod.py")
        outside = findings_for(code, path="/x/repro/ecosystem/mod.py")
        assert rules_of(inside) == ["REP004"]
        assert outside == []


# ----------------------------------------------------------------------
# REP005: RNG draws over unordered iteration
# ----------------------------------------------------------------------


class TestRep005:
    def test_draw_in_set_loop_flagged(self):
        findings = findings_for(
            """
            for domain in candidates | extras:
                noise = rng.gauss(0.0, 1.0)
            """
        )
        assert rules_of(findings) == ["REP005"]

    def test_draw_in_sorted_loop_ok(self):
        findings = findings_for(
            """
            for domain in sorted(candidates | extras):
                noise = rng.gauss(0.0, 1.0)
            """
        )
        assert findings == []

    def test_draw_in_comprehension_flagged(self):
        findings = findings_for(
            "noise = [self._rng.random() for d in set(domains)]\n"
        )
        assert rules_of(findings) == ["REP005"]

    def test_non_rng_call_ok(self):
        findings = findings_for(
            """
            for domain in set(domains):
                results.append(lookup.resolve(domain))
            """
        )
        assert findings == []


# ----------------------------------------------------------------------
# REP006: checkpoint schema pin (cross-file)
# ----------------------------------------------------------------------

GOOD_SCHEMAS = {"stream-engine": ["seed", "cursors"]}


def write_schema_module(tmp_path, pin, name="checkpoint.py", schemas=None):
    schemas = GOOD_SCHEMAS if schemas is None else schemas
    path = tmp_path / name
    path.write_text(
        textwrap.dedent(
            f"""
            CHECKPOINT_VERSION = 1
            CHECKPOINT_SCHEMAS = {schemas!r}
            CHECKPOINT_SCHEMA_PIN = {pin!r}
            """
        )
    )
    return str(path)


def write_payload_module(tmp_path, keys, name="engine.py"):
    body = ", ".join(f'"{key}": 0' for key in keys)
    path = tmp_path / name
    path.write_text(
        textwrap.dedent(
            f"""
            CHECKPOINT_KIND = "stream-engine"

            def checkpoint_payload():
                return {{{body}}}
            """
        )
    )
    return str(path)


class TestRep006:
    def test_stale_pin_flagged(self, tmp_path):
        write_schema_module(tmp_path, "v1:000000000000")
        findings = lint_paths([str(tmp_path)])
        assert rules_of(findings) == ["REP006"]
        assert "version bump" in findings[0].message

    def test_fresh_pin_ok(self, tmp_path):
        write_schema_module(tmp_path, compute_schema_pin(1, GOOD_SCHEMAS))
        assert lint_paths([str(tmp_path)]) == []

    def test_payload_key_mismatch_flagged(self, tmp_path):
        write_schema_module(tmp_path, compute_schema_pin(1, GOOD_SCHEMAS))
        write_payload_module(tmp_path, ["seed", "cursors", "extra"])
        findings = lint_paths([str(tmp_path)])
        assert rules_of(findings) == ["REP006"]
        assert "extra" in findings[0].message

    def test_matching_payload_ok(self, tmp_path):
        write_schema_module(tmp_path, compute_schema_pin(1, GOOD_SCHEMAS))
        write_payload_module(tmp_path, ["seed", "cursors"])
        assert lint_paths([str(tmp_path)]) == []

    def test_unknown_kind_flagged(self, tmp_path):
        write_schema_module(tmp_path, compute_schema_pin(1, {}), schemas={})
        write_payload_module(tmp_path, ["seed"])
        findings = lint_paths([str(tmp_path)])
        assert rules_of(findings) == ["REP006"]
        assert "no entry" in findings[0].message

    def test_version_bump_changes_pin(self):
        assert compute_schema_pin(1, GOOD_SCHEMAS) != compute_schema_pin(
            2, GOOD_SCHEMAS
        )


# ----------------------------------------------------------------------
# REP007: parallel reduction order
# ----------------------------------------------------------------------


class TestRep007:
    def test_os_cpu_count_flagged(self):
        findings = findings_for(
            """
            import os
            workers = os.cpu_count()
            """
        )
        assert rules_of(findings) == ["REP007"]
        assert findings[0].line == 3

    def test_multiprocessing_cpu_count_flagged(self):
        findings = findings_for(
            """
            import multiprocessing
            workers = multiprocessing.cpu_count()
            """
        )
        assert rules_of(findings) == ["REP007"]

    def test_cpu_count_import_flagged(self):
        findings = findings_for("from os import cpu_count\n")
        assert rules_of(findings) == ["REP007"]
        assert "cpu_count" in findings[0].message

    def test_as_completed_call_flagged(self):
        findings = findings_for(
            """
            for future in as_completed(futures):
                results.append(future.result())
            """
        )
        assert rules_of(findings) == ["REP007"]
        assert "completion order" in findings[0].message

    def test_as_completed_import_flagged(self):
        findings = findings_for(
            "from concurrent.futures import as_completed\n"
        )
        assert rules_of(findings) == ["REP007"]

    def test_imap_unordered_flagged(self):
        findings = findings_for(
            """
            for result in pool.imap_unordered(work, items):
                results.append(result)
            """
        )
        assert rules_of(findings) == ["REP007"]

    def test_pool_map_flagged(self):
        findings = findings_for("results = pool.map(work, items)\n")
        assert rules_of(findings) == ["REP007"]
        assert "task index" in findings[0].message

    def test_executor_map_flagged(self):
        findings = findings_for(
            "results = list(self.executor.map(work, items))\n"
        )
        assert rules_of(findings) == ["REP007"]

    def test_plain_map_receiver_ok(self):
        findings = findings_for("points = series.map(transform)\n")
        assert findings == []

    def test_pool_map_pragma_suppresses(self):
        findings = findings_for(
            "r = pool.map(w, items)"
            "  # reprolint: disable=REP007 -- index-tagged\n"
        )
        assert findings == []


# ----------------------------------------------------------------------
# REP008: host-clock quarantine (repro.obs)
# ----------------------------------------------------------------------


class TestRep008:
    def test_perf_counter_flagged_inside_package(self):
        findings = findings_for(
            """
            import time
            started = time.perf_counter()
            """,
            path="/x/repro/pipeline/mod.py",
        )
        assert rules_of(findings) == ["REP008"]
        assert "repro.obs" in findings[0].message

    def test_monotonic_import_flagged_inside_package(self):
        findings = findings_for(
            "from time import monotonic, process_time\n",
            path="/x/repro/io/mod.py",
        )
        assert rules_of(findings) == ["REP008"]
        assert "monotonic" in findings[0].message

    def test_datetime_now_flagged_inside_package(self):
        findings = findings_for(
            """
            import datetime
            stamp = datetime.datetime.now()
            """,
            path="/x/repro/reporting/mod.py",
        )
        assert rules_of(findings) == ["REP008"]

    def test_wallclock_inside_simulation_scope_hits_both(self):
        findings = findings_for(
            "from time import time\n", path="/x/repro/stream/mod.py"
        )
        assert rules_of(findings) == ["REP003", "REP008"]

    def test_obs_package_allowlisted(self):
        findings = findings_for(
            """
            import time
            started = time.perf_counter()
            now = time.time()
            """,
            path="/x/repro/obs/hosttime.py",
        )
        assert findings == []

    def test_outside_files_unaffected(self):
        # Fixture/outside files keep exercising REP003 without the
        # quarantine rule piling on.
        findings = findings_for(
            """
            import time
            started = time.perf_counter()
            """
        )
        assert findings == []

    def test_sleep_not_flagged(self):
        findings = findings_for(
            """
            import time
            time.sleep(0.1)
            """,
            path="/x/repro/parallel/mod.py",
        )
        assert findings == []

    def test_pragma_suppresses(self):
        findings = findings_for(
            "from time import perf_counter"
            "  # reprolint: disable=REP008 -- bench harness\n",
            path="/x/repro/devtools/mod.py",
        )
        assert findings == []


# ----------------------------------------------------------------------
# Pragmas and configuration
# ----------------------------------------------------------------------


class TestSuppression:
    def test_line_pragma_suppresses(self):
        findings = findings_for(
            "t = sum(v.values())  # reprolint: disable=REP004\n"
        )
        assert findings == []

    def test_line_pragma_with_justification(self):
        findings = findings_for(
            "t = sum(v.values())  # reprolint: disable=REP004 -- ints\n"
        )
        assert findings == []

    def test_line_pragma_is_rule_specific(self):
        findings = findings_for(
            "t = sum(v.values())  # reprolint: disable=REP001\n"
        )
        assert rules_of(findings) == ["REP004"]

    def test_bare_pragma_suppresses_everything(self):
        findings = findings_for(
            "t = sum(v.values())  # reprolint: disable\n"
        )
        assert findings == []

    def test_file_pragma_in_header_suppresses_file(self):
        findings = findings_for(
            """
            # reprolint: disable=REP004
            a = sum(v.values())
            b = sum(w.values())
            """
        )
        assert findings == []

    def test_file_pragma_below_header_window_is_line_only(self):
        lines = ["x = 0"] * 6
        lines.append("# reprolint: disable=REP004")
        lines.append("a = sum(v.values())")
        findings = findings_for("\n".join(lines) + "\n")
        assert rules_of(findings) == ["REP004"]

    def test_disabled_rule_config(self):
        config = LintConfig.with_disabled(("REP004",))
        findings = findings_for("t = sum(v.values())\n", config=config)
        assert findings == []

    def test_unknown_rule_code_rejected(self):
        with pytest.raises(ValueError, match="REP999"):
            LintConfig.with_disabled(("REP999",))

    def test_severity_override(self):
        config = LintConfig(severities={"REP004": Severity.WARNING})
        findings = findings_for("t = sum(v.values())\n", config=config)
        assert findings[0].severity is Severity.WARNING
        assert not has_errors(findings)


# ----------------------------------------------------------------------
# Output formats
# ----------------------------------------------------------------------


class TestReports:
    def trigger(self):
        return findings_for(
            """
            import random
            x = random.random()
            t = sum(v.values())
            """
        )

    def test_text_report_has_anchors(self):
        text = render_text(self.trigger())
        assert "/fixtures/snippet.py:3" in text
        assert "REP001" in text and "REP004" in text
        assert "2 finding(s)" in text

    def test_empty_text_report(self):
        assert render_text([]) == "reprolint: no findings"

    def test_json_roundtrip_and_shape(self):
        document = json.loads(render_json(self.trigger()))
        assert document["format"] == "reprolint"
        assert document["version"] == 1
        assert document["summary"]["total"] == 2
        assert document["summary"]["errors"] == 2
        assert document["summary"]["by_rule"] == {"REP001": 1, "REP004": 1}
        finding = document["findings"][0]
        assert set(finding) == {
            "rule", "severity", "path", "line", "col", "message",
        }

    def test_syntax_error_raises_lint_error(self):
        with pytest.raises(LintError, match="cannot parse"):
            findings_for("def broken(:\n")


# ----------------------------------------------------------------------
# CLI: python -m repro lint
# ----------------------------------------------------------------------


def run_cli(*argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *argv],
        capture_output=True,
        text=True,
        env=env,
    )


def seed_all_rule_violations(tmp_path):
    """One file per rule, each containing exactly one seeded violation."""
    (tmp_path / "rep001.py").write_text(
        "import random\nx = random.random()\n"
    )
    (tmp_path / "rep002.py").write_text('seed = hash("label")\n')
    (tmp_path / "rep003.py").write_text(
        "import time\nstarted = time.time()\n"
    )
    (tmp_path / "rep004.py").write_text("total = sum(volumes.values())\n")
    (tmp_path / "rep005.py").write_text(
        "for d in set(domains):\n    noise = rng.random()\n"
    )
    write_schema_module(tmp_path, "v1:000000000000", name="rep006.py")
    (tmp_path / "rep007.py").write_text(
        "import os\nworkers = os.cpu_count()\n"
    )
    # REP008 fires only inside the repro package, so seed it under a
    # repro/ directory (the linter keys the scope off the path).
    pkg = tmp_path / "repro" / "pipeline"
    pkg.mkdir(parents=True)
    (pkg / "rep008.py").write_text(
        "import time\nstarted = time.perf_counter()\n"
    )
    (tmp_path / "rep009.py").write_text(
        "from repro.parallel.fanout import ordered_fanout\n"
        "\n"
        "COUNT = 0\n"
        "\n"
        "def work():\n"
        "    global COUNT\n"
        "    COUNT = COUNT + 1\n"
        "    return COUNT\n"
        "\n"
        "def run_all():\n"
        "    return ordered_fanout([work], jobs=2)\n"
    )
    (tmp_path / "rep010.py").write_text(
        "from random import Random\n"
        "from repro.parallel.fanout import ordered_fanout\n"
        "\n"
        "shared_rng = Random(7)\n"
        "\n"
        "def draw():\n"
        "    return shared_rng.random()\n"
        "\n"
        "def run_all():\n"
        "    return ordered_fanout([draw], jobs=2)\n"
    )
    (tmp_path / "rep011.py").write_text(
        "def helper():\n"
        "    return {1.5, 2.5}\n"
        "\n"
        "def total():\n"
        "    return sum(helper())\n"
    )
    (tmp_path / "rep012.py").write_text(
        "STORE_VERSION = 1\n"
        'STORE_SCHEMA_COLUMNS = {"meta": ("key", "value")}\n'
        'STORE_SCHEMA_PIN = "v1:000000000000"\n'
    )


class TestCli:
    def test_strict_fails_on_every_seeded_rule(self, tmp_path):
        seed_all_rule_violations(tmp_path)
        result = run_cli(str(tmp_path), "--strict", "--json")
        assert result.returncode != 0
        document = json.loads(result.stdout)
        flagged = {f["rule"] for f in document["findings"]}
        assert flagged == set(DEFAULT_RULES)

    def test_clean_fixture_exits_zero(self, tmp_path):
        (tmp_path / "ok.py").write_text("value = 1 + 1\n")
        result = run_cli(str(tmp_path), "--strict")
        assert result.returncode == 0
        assert "no findings" in result.stdout

    def test_disable_flag(self, tmp_path):
        (tmp_path / "rep004.py").write_text(
            "total = sum(volumes.values())\n"
        )
        result = run_cli(str(tmp_path), "--strict", "--disable", "REP004")
        assert result.returncode == 0

    def test_unknown_disable_is_usage_error(self, tmp_path):
        result = run_cli(str(tmp_path), "--disable", "REP999")
        assert result.returncode == 2

    def test_schema_pin_matches_declared(self):
        from repro.io import checkpoint

        result = run_cli("--schema-pin")
        assert result.returncode == 0
        assert result.stdout.strip() == checkpoint.CHECKPOINT_SCHEMA_PIN
