"""Unit tests for the reporting layer."""

import pytest

from repro.analysis.coverage import OverlapMatrix, ScatterPoint
from repro.analysis.timing import BoxStats
from repro.reporting.charts import (
    log10_guides,
    render_bars,
    render_box_stats,
    render_scatter,
    render_stacked_bars,
)
from repro.reporting.matrix import (
    _abbreviate,
    render_overlap_matrix,
    render_value_matrix,
)
from repro.reporting.tables import Table, format_count, format_percent


class TestFormatters:
    def test_format_count(self):
        assert format_count(1234567) == "1,234,567"
        assert format_count(0) == "0"

    def test_format_percent(self):
        assert format_percent(0.88) == "88%"
        assert format_percent(0.005) == "<1%"
        assert format_percent(0.0) == "0%"
        assert format_percent(1.0) == "100%"

    def test_abbreviate(self):
        assert _abbreviate(61_432) == "61K"
        assert _abbreviate(1_432) == "1.4K"
        assert _abbreviate(999) == "999"


class TestTable:
    def test_render_alignment(self):
        table = Table(["Feed", "Count"], title="T")
        table.add_row("Hu", "1,000")
        table.add_row("mx1", "5")
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "Feed" in lines[1]
        assert lines[3].startswith("Hu")
        # Numeric column right-aligned.
        assert lines[3].endswith("1,000")
        assert lines[4].endswith("5")

    def test_cell_count_mismatch(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            Table([])

    def test_str(self):
        table = Table(["x"])
        assert str(table) == table.render()


class TestOverlapRendering:
    def test_contains_percent_and_counts(self):
        matrix = OverlapMatrix({"A": {"x", "y"}, "B": {"y"}})
        text = render_overlap_matrix(matrix, title="M")
        assert text.startswith("M")
        assert "100%" in text
        assert "All" in text

    def test_without_all_column(self):
        matrix = OverlapMatrix({"A": {"x"}, "B": {"x"}})
        text = render_overlap_matrix(matrix, include_all_column=False)
        assert "All" not in text

    def test_value_matrix(self):
        values = {"a": {"a": 0.0, "b": 0.5}, "b": {"a": 0.5, "b": 0.0}}
        text = render_value_matrix(values)
        assert "0.50" in text
        assert text.splitlines()[0].strip().startswith("a")


class TestCharts:
    def test_render_bars(self):
        text = render_bars([("Hu", 2.0), ("mx1", 1.0)], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_render_bars_empty(self):
        assert render_bars([], title="t") == "t"

    def test_render_stacked_bars(self):
        text = render_stacked_bars([("Hu", 0.5, 0.25)], width=20)
        line = text.splitlines()[0]
        assert line.count("#") == 10
        assert line.count(":") == 5

    def test_stacked_bars_clamped(self):
        text = render_stacked_bars([("x", 0.9, 0.9)], width=10)
        line = text.splitlines()[0]
        assert line.count("#") + line.count(":") <= 10

    def test_render_scatter(self):
        points = [ScatterPoint("Hu", 100, 10), ScatterPoint("mx1", 10, 0)]
        text = render_scatter(points, title="S")
        assert "Hu" in text
        assert "2.00" in text  # log10(100)
        assert "-inf" in text  # zero exclusives

    def test_render_box_stats(self):
        stats = {"Hu": BoxStats.from_values([60.0, 120.0, 180.0])}
        text = render_box_stats(stats, divisor=60.0, unit="hours")
        assert "Hu" in text
        assert "2.00" in text  # median in hours
        assert "hours" in text

    def test_box_stats_order_respected(self):
        stats = {
            "a": BoxStats.from_values([1.0]),
            "b": BoxStats.from_values([2.0]),
        }
        text = render_box_stats(stats, order=["b", "a"])
        lines = text.splitlines()
        assert lines[1].startswith("b")
        assert lines[2].startswith("a")

    def test_log10_guides(self):
        assert log10_guides(1500) == [1, 10, 100, 1000]
        assert log10_guides(0) == []
