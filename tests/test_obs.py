"""Unit tests for repro.obs: tracing, metrics, and run manifests."""

import json

import pytest

from repro import obs
from repro.obs.hosttime import Stopwatch, monotonic_now, peak_rss_kib, wall_now
from repro.obs.manifest import (
    MANIFEST_FORMAT,
    MANIFEST_VERSION,
    ManifestError,
    build_manifest,
    manifest_stage_names,
    read_manifest,
    validate_manifest,
    write_manifest,
)
from repro.obs.trace import BASELINE_COUNTERS, Span


def make_manifest(tracer=None, **overrides):
    tracer = tracer or obs.Tracer()
    manifest = build_manifest(
        tracer, command="run", seed=2012, config_fingerprint="abc123"
    )
    manifest.update(overrides)
    return manifest


class TestHosttime:
    def test_clocks_are_numbers(self):
        assert wall_now() > 0
        assert monotonic_now() >= 0

    def test_peak_rss_positive_on_unix(self):
        rss = peak_rss_kib()
        assert rss is None or rss > 0

    def test_stopwatch_monotone(self):
        watch = Stopwatch()
        first = watch.elapsed()
        second = watch.elapsed()
        assert 0 <= first <= second
        watch.restart()
        assert watch.elapsed() <= second + 1.0


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        registry = obs.MetricsRegistry()
        registry.add("hits")
        registry.add("hits", 2)
        assert registry.counter("hits") == 3
        assert registry.counter("absent") == 0

    def test_gauges_overwrite(self):
        registry = obs.MetricsRegistry()
        registry.set_gauge("depth", 4)
        registry.set_gauge("depth", 2.5)
        assert registry.gauge("depth") == 2.5
        assert registry.gauge("absent") == 0

    def test_snapshot_sorted_and_detached(self):
        registry = obs.MetricsRegistry()
        registry.add("b")
        registry.add("a")
        registry.set_gauge("g", 1)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        snap["counters"]["a"] = 99
        assert registry.counter("a") == 1


class TestTracer:
    def test_span_tree_nesting(self):
        tracer = obs.Tracer()
        with tracer.span("outer", seed=7):
            with tracer.span("inner"):
                pass
        assert [s.name for s in tracer.roots] == ["outer"]
        outer = tracer.roots[0]
        assert outer.attributes == {"seed": 7}
        assert [c.name for c in outer.children] == ["inner"]
        assert outer.duration_s >= outer.children[0].duration_s >= 0

    def test_attach_child_and_annotate(self):
        tracer = obs.Tracer()
        with tracer.span("stage"):
            tracer.attach_child("task", 0.25, worker=1)
            tracer.annotate(workers=2)
        stage = tracer.roots[0]
        assert stage.attributes == {"workers": 2}
        assert stage.children[0].duration_s == 0.25
        assert stage.children[0].attributes == {"worker": 1}

    def test_baseline_cache_counters_present(self):
        snap = obs.Tracer().metrics.snapshot()
        for name in BASELINE_COUNTERS:
            assert snap["counters"][name] == 0

    def test_stage_names_sorted_distinct(self):
        tracer = obs.Tracer()
        with tracer.span("b"):
            with tracer.span("a"):
                pass
        with tracer.span("b"):
            pass
        assert tracer.stage_names() == ["a", "b"]

    def test_span_walk_and_payload(self):
        root = Span("r", {}, 1.0, None, [Span("c", {"k": 1}, 0.5, 2, [])])
        depths = [(depth, span.name) for depth, span in root.walk()]
        assert depths == [(0, "r"), (1, "c")]
        payload = root.to_payload()
        assert payload["children"][0] == {
            "name": "c",
            "attributes": {"k": 1},
            "duration_s": 0.5,
            "rss_delta_kib": 2,
            "children": [],
        }


class TestActivation:
    def test_helpers_noop_without_tracer(self):
        assert obs.current_tracer() is None
        obs.add("x")
        obs.set_gauge("y", 1)
        obs.annotate(k=1)
        with obs.span("stage") as node:
            assert node is None

    def test_helpers_dispatch_to_active_tracer(self):
        tracer = obs.Tracer()
        with obs.activate(tracer):
            assert obs.current_tracer() is tracer
            with obs.span("stage", seed=1) as node:
                obs.add("records", 5)
                obs.set_gauge("depth", 2)
                obs.annotate(extra=True)
            assert node is not None
        assert obs.current_tracer() is None
        assert tracer.metrics.counter("records") == 5
        assert tracer.metrics.gauge("depth") == 2
        assert tracer.roots[0].attributes == {"seed": 1, "extra": True}

    def test_activation_nests_and_restores(self):
        first, second = obs.Tracer(), obs.Tracer()
        with obs.activate(first):
            with obs.activate(second):
                obs.add("inner")
            with obs.activate(None):
                obs.add("suppressed")
            obs.add("outer")
        assert first.metrics.counter("outer") == 1
        assert first.metrics.counter("inner") == 0
        assert first.metrics.counter("suppressed") == 0
        assert second.metrics.counter("inner") == 1


class TestManifest:
    def test_build_is_schema_valid(self):
        tracer = obs.Tracer()
        with tracer.span("pipeline.run"):
            tracer.metrics.add("cache.hit")
        manifest = build_manifest(
            tracer,
            command="run",
            seed=7,
            config_fingerprint="f" * 8,
            jobs=2,
        )
        validate_manifest(manifest)
        assert manifest["format"] == MANIFEST_FORMAT
        assert manifest["version"] == MANIFEST_VERSION
        assert manifest["jobs"] == 2
        assert manifest_stage_names(manifest) == ["pipeline.run"]

    def test_roundtrip_through_disk(self, tmp_path):
        tracer = obs.Tracer()
        with tracer.span("stage"):
            pass
        manifest = build_manifest(
            tracer, command="stream", seed=11, config_fingerprint="x"
        )
        path = tmp_path / "nested" / "manifest.json"
        write_manifest(str(path), manifest)
        assert read_manifest(str(path)) == manifest

    @pytest.mark.parametrize(
        "overrides, fragment",
        [
            ({"format": "other"}, "format"),
            ({"version": 99}, "version"),
            ({"seed": "2012"}, "seed"),
            ({"seed": True}, "seed"),
            ({"jobs": "all"}, "jobs"),
            ({"metrics": {"counters": {}}}, "metrics"),
            ({"metrics": {"counters": {"c": "x"}, "gauges": {}}}, "c"),
            ({"extra_field": 1}, "unknown fields"),
        ],
    )
    def test_invalid_manifests_rejected(self, overrides, fragment):
        manifest = make_manifest(**overrides)
        with pytest.raises(ManifestError, match=fragment):
            validate_manifest(manifest)

    def test_missing_field_rejected(self):
        manifest = make_manifest()
        del manifest["spans"]
        with pytest.raises(ManifestError, match="missing fields"):
            validate_manifest(manifest)

    @pytest.mark.parametrize(
        "span_override, fragment",
        [
            ({"name": ""}, "name"),
            ({"duration_s": -1.0}, "non-negative"),
            ({"rss_delta_kib": 1.5}, "rss_delta_kib"),
            ({"attributes": {"k": [1]}}, "non-scalar"),
            ({"children": None}, "children"),
        ],
    )
    def test_invalid_spans_rejected(self, span_override, fragment):
        span = {
            "name": "s",
            "attributes": {},
            "duration_s": 0.0,
            "rss_delta_kib": None,
            "children": [],
        }
        span.update(span_override)
        manifest = make_manifest(spans=[span])
        with pytest.raises(ManifestError, match=fragment):
            validate_manifest(manifest)

    def test_read_rejects_bad_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ManifestError, match="not valid JSON"):
            read_manifest(str(path))

    def test_read_missing_file(self, tmp_path):
        with pytest.raises(ManifestError, match="cannot read"):
            read_manifest(str(tmp_path / "absent.json"))

    def test_written_file_is_pretty_sorted_json(self, tmp_path):
        path = tmp_path / "m.json"
        write_manifest(str(path), make_manifest())
        text = path.read_text()
        parsed = json.loads(text)
        assert text == json.dumps(parsed, indent=2, sort_keys=True) + "\n"
