"""Unit tests for seeded RNG derivation."""

from repro.stats.rng import SeedSequence, derive_rng, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(2012, "x") == derive_seed(2012, "x")

    def test_label_sensitivity(self):
        assert derive_seed(2012, "a") != derive_seed(2012, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_known_stable_value(self):
        # Guards against accidental changes to the derivation scheme,
        # which would silently change every calibrated result.
        assert derive_seed(2012, "campaigns") == derive_seed(2012, "campaigns")
        value = derive_seed(0, "")
        assert isinstance(value, int)
        assert value.bit_length() <= 64


class TestDeriveRng:
    def test_same_label_same_stream(self):
        a = derive_rng(99, "feed.mx1")
        b = derive_rng(99, "feed.mx1")
        assert [a.random() for _ in range(5)] == [
            b.random() for _ in range(5)
        ]

    def test_different_labels_diverge(self):
        a = derive_rng(99, "feed.mx1")
        b = derive_rng(99, "feed.mx2")
        assert [a.random() for _ in range(5)] != [
            b.random() for _ in range(5)
        ]


class TestSeedSequence:
    def test_rng_reproducible(self):
        seq1 = SeedSequence(5)
        seq2 = SeedSequence(5)
        assert seq1.rng("x").random() == seq2.rng("x").random()

    def test_child_independent_of_parent_label(self):
        seq = SeedSequence(5)
        child = seq.child("sub")
        assert child.root_seed != seq.root_seed
        assert child.rng("x").random() != seq.rng("x").random()

    def test_issued_labels_tracked(self):
        seq = SeedSequence(5)
        seq.rng("b")
        seq.rng("a")
        assert list(seq.issued_labels()) == ["a", "b"]

    def test_repr(self):
        assert "SeedSequence(root_seed=5)" == repr(SeedSequence(5))

    def test_stream_isolation(self):
        # Drawing more from one stream must not perturb another.
        seq = SeedSequence(11)
        a1 = seq.rng("a")
        for _ in range(100):
            a1.random()
        b_after = SeedSequence(11).rng("b").random()
        assert seq.rng("b").random() == b_after
