"""Byte-equivalence of parallel execution at any worker count.

The determinism contract of :mod:`repro.parallel`: worker count is
pure execution width.  Every test here compares a serial run against
parallel runs and requires *identical* values -- not statistically
similar, identical -- including dict insertion orders, which downstream
analyses iterate.
"""

from __future__ import annotations

import pytest

from repro.ecosystem import build_world, small_config
from repro.feeds import (
    clear_pool_state,
    collect_all,
    set_pool_state,
    standard_feed_suite,
)
from repro.feeds.base import ColumnarFeedDataset, FeedDataset, FeedRecord, FeedType
from repro.parallel import (
    FanoutUnavailable,
    WorkerPool,
    fork_available,
    ordered_fanout,
    resolve_jobs,
)
from repro.pipeline import PaperPipeline

EQUIVALENCE_SEEDS = (7, 11)

#: The pool contract is pinned at every seed the paper artifacts use.
POOL_SEEDS = (7, 11, 2012)


# ----------------------------------------------------------------------
# The fan-out primitive
# ----------------------------------------------------------------------


class TestOrderedFanout:
    def test_serial_matches_list_comprehension(self):
        tasks = [lambda i=i: i * i for i in range(8)]
        assert ordered_fanout(tasks) == [i * i for i in range(8)]
        assert ordered_fanout(tasks, jobs=1) == [i * i for i in range(8)]

    def test_parallel_preserves_task_order(self):
        tasks = [lambda i=i: i * i for i in range(20)]
        assert ordered_fanout(tasks, jobs=4) == [i * i for i in range(20)]

    def test_closures_cross_the_fork(self):
        payload = {"nested": [1, 2, 3]}
        tasks = [lambda k=k: (k, payload["nested"][k]) for k in range(3)]
        assert ordered_fanout(tasks, jobs=3) == [(0, 1), (1, 2), (2, 3)]

    def test_empty_task_list(self):
        assert ordered_fanout([], jobs=4) == []

    def test_resolve_jobs(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) >= 1  # all cores
        assert resolve_jobs(-1) >= 1

    def test_require_raises_without_fork(self, monkeypatch):
        import repro.parallel.fanout as fanout

        monkeypatch.setattr(fanout, "fork_available", lambda: False)
        tasks = [lambda: 1, lambda: 2]
        # Degrades to serial by default...
        assert fanout.ordered_fanout(tasks, jobs=2) == [1, 2]
        # ...but raises when the caller demands parallelism.
        with pytest.raises(FanoutUnavailable):
            fanout.ordered_fanout(tasks, jobs=2, require=True)

    def test_fork_available_on_this_platform(self):
        # The CI/test platform is Linux; the parallel paths below all
        # assume this returns True there.
        assert fork_available()

    def test_worker_counters_fold_back_into_parent(self):
        # Regression: counters incremented inside forked workers died
        # with the worker process, so a parallel run under-reported
        # everything its tasks counted (cache hits, truncated records,
        # store landings).  Workers now ship per-task deltas.
        from repro import obs

        def make(i):
            def task():
                obs.add("test.sightings", i + 1)
                obs.add("test.floaty", 0.5)
                return i

            return task

        tasks = [make(i) for i in range(6)]
        serial = obs.Tracer()
        with obs.activate(serial):
            ordered_fanout(tasks, jobs=1)
        parallel = obs.Tracer()
        with obs.activate(parallel):
            ordered_fanout(tasks, jobs=3)
        for name in ("test.sightings", "test.floaty"):
            s = serial.metrics.counter(name)
            p = parallel.metrics.counter(name)
            assert s == p
            assert type(s) is type(p)  # ints stay ints across the fork


# ----------------------------------------------------------------------
# Columnar datasets serve identical statistics
# ----------------------------------------------------------------------


class TestColumnarDataset:
    def build(self):
        records = [
            FeedRecord("b.com", 5),
            FeedRecord("a.com", 10),
            FeedRecord("b.com", 12),
            FeedRecord("c.com", 12),
            FeedRecord("a.com", 3),
        ]
        return FeedDataset("x", FeedType.MX_HONEYPOT, records)

    def test_round_trip_preserves_everything(self):
        original = self.build()
        columnar = ColumnarFeedDataset(original.to_columns())
        assert columnar.records == original.records
        assert columnar.name == original.name
        assert columnar.feed_type is original.feed_type
        assert columnar.has_volume == original.has_volume
        assert len(columnar) == len(original)
        assert columnar.total_samples == original.total_samples
        assert columnar.unique_domains() == original.unique_domains()
        assert list(columnar.domain_counts().items()) == list(
            original.domain_counts().items()
        )
        # Insertion order matters: analyses iterate these dicts.
        assert list(columnar.first_seen().items()) == list(
            original.first_seen().items()
        )
        assert list(columnar.last_seen().items()) == list(
            original.last_seen().items()
        )
        assert (
            columnar.chronological_records()
            == original.chronological_records()
        )

    def test_stats_served_without_materializing_records(self):
        columnar = ColumnarFeedDataset(self.build().to_columns())
        assert columnar.n_unique == 3
        assert columnar.total_samples == 5
        assert columnar._materialized is None

    def test_column_length_mismatch_rejected(self):
        cols = self.build().to_columns()
        bad = cols._replace(times=cols.times[:-1])
        with pytest.raises(ValueError):
            ColumnarFeedDataset(bad)


# ----------------------------------------------------------------------
# Feed collection: serial vs. worker pool
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", EQUIVALENCE_SEEDS)
def test_collect_all_byte_identical_across_jobs(seed):
    world = build_world(small_config(), seed=seed)
    serial = collect_all(world, standard_feed_suite(seed))
    for jobs in (2, 4):
        parallel = collect_all(world, standard_feed_suite(seed), jobs=jobs)
        assert list(parallel) == list(serial)  # feed order preserved
        for name in serial:
            a, b = serial[name], parallel[name]
            assert b.records == a.records, (seed, jobs, name)
            assert list(b.first_seen().items()) == list(
                a.first_seen().items()
            )
            assert b.feed_type is a.feed_type
            assert b.has_volume == a.has_volume


# ----------------------------------------------------------------------
# The persistent pool: byte-identical to serial and legacy fan-out
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", POOL_SEEDS)
def test_pool_collect_matches_serial_and_legacy_fanout(seed):
    world = build_world(small_config(), seed=seed)
    serial = collect_all(world, standard_feed_suite(seed))
    legacy = collect_all(world, standard_feed_suite(seed), jobs=2)
    collectors = standard_feed_suite(seed)
    set_pool_state(world, collectors)
    try:
        with WorkerPool(2) as pool:
            pooled = collect_all(world, collectors, pool=pool)
    finally:
        clear_pool_state()
    assert list(pooled) == list(serial) == list(legacy)
    for name in serial:
        s, f, p = serial[name], legacy[name], pooled[name]
        assert p.records == s.records == f.records, (seed, name)
        assert list(p.first_seen().items()) == list(s.first_seen().items())
        assert list(p.last_seen().items()) == list(s.last_seen().items())
        # The packed wire format is the byte-level contract.
        assert p.packed() == s.packed() == f.packed()


@pytest.mark.parametrize("seed", POOL_SEEDS)
def test_pool_pipeline_render_matches_serial(seed):
    serial = PaperPipeline(small_config(), seed=seed).render_all()
    with PaperPipeline(small_config(), seed=seed, jobs=2) as pipeline:
        pooled = pipeline.render_all()
        # The pool really carried both stages: forked once at run(),
        # still alive after render.
        assert pipeline._pool is not None
        assert not pipeline._pool.closed
    assert pooled == serial


# ----------------------------------------------------------------------
# Full pipeline rendering: serial vs. worker pool
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", EQUIVALENCE_SEEDS)
def test_render_all_byte_identical_across_jobs(seed):
    serial = PaperPipeline(small_config(), seed=seed).render_all()
    for jobs in (2, 4):
        text = PaperPipeline(
            small_config(), seed=seed, jobs=jobs
        ).render_all()
        assert text == serial, f"seed={seed} jobs={jobs}"


def test_render_all_jobs_argument_overrides_pipeline_default():
    pipeline = PaperPipeline(small_config(), seed=7, jobs=4)
    serial_reference = PaperPipeline(small_config(), seed=7).render_all()
    assert pipeline.render_all(jobs=1) == serial_reference
    assert pipeline.render_all() == serial_reference


def test_paper_scale_render_parallel_matches_serial(paper_pipeline):
    """Seed 2012 at paper scale: the fan-out changes nothing."""
    serial = paper_pipeline.render_all()
    assert paper_pipeline.render_all(jobs=2) == serial


def test_stream_engine_parallel_sources_identical():
    from repro.stream import build_stream_engine

    serial = build_stream_engine(small_config(), seed=7)
    parallel = build_stream_engine(small_config(), seed=7, jobs=4)
    serial.run()
    parallel.run()
    assert (
        parallel.snapshot().render_tables()
        == serial.snapshot().render_tables()
    )
