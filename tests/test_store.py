"""Unit and property tests for the ``repro.store`` subsystem.

Covers the silver validation gate, idempotent run-keyed landing, gold
merge convergence, SQLite durability across reopen, and -- the central
contract -- observational equivalence between :class:`MemoryBackend`
and :class:`SqliteBackend` under arbitrary landing sequences.
"""

from __future__ import annotations

import sqlite3

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store import (
    LandingStats,
    MemoryBackend,
    RunWriter,
    SightingStore,
    SqliteBackend,
    StoreError,
    run_key_for,
)
from repro.store.silver import (
    INT64_MAX,
    INT64_MIN,
    REJECT_BAD_TIME,
    REJECT_EMPTY_DOMAIN,
    REJECT_MALFORMED_DOMAIN,
    REJECT_TIME_RANGE,
    validate_sighting,
)


class TestSilverValidation:
    def test_accepts_plain_sighting(self):
        assert validate_sighting("pills.example.com", 1234) is None

    def test_accepts_extreme_but_storable_times(self):
        assert validate_sighting("a.com", INT64_MIN) is None
        assert validate_sighting("a.com", INT64_MAX) is None

    @pytest.mark.parametrize(
        "domain,reason",
        [
            ("", REJECT_EMPTY_DOMAIN),
            (None, REJECT_EMPTY_DOMAIN),
            ("has space.com", REJECT_MALFORMED_DOMAIN),
            ("line\nbreak.com", REJECT_MALFORMED_DOMAIN),
            ("tab\there.com", REJECT_MALFORMED_DOMAIN),
        ],
    )
    def test_rejects_unstorable_domains(self, domain, reason):
        assert validate_sighting(domain, 1) == reason

    @pytest.mark.parametrize(
        "time,reason",
        [
            (None, REJECT_BAD_TIME),
            (True, REJECT_BAD_TIME),
            (1.5, REJECT_BAD_TIME),
            ("7", REJECT_BAD_TIME),
            (INT64_MAX + 1, REJECT_TIME_RANGE),
            (INT64_MIN - 1, REJECT_TIME_RANGE),
        ],
    )
    def test_rejects_unstorable_times(self, time, reason):
        assert validate_sighting("a.com", time) == reason


class TestRunWriter:
    def _writer(self, store):
        return store.open_run(run_key_for("cfg", 7), 7, "cfg", "test")

    def test_landing_splits_tiers(self):
        store = SightingStore.in_memory()
        writer = self._writer(store)
        stats = writer.land_sightings(
            "mx1", [("a.com", 10), ("bad domain", 11), ("a.com", 5)]
        )
        assert (stats.bronze, stats.silver, stats.rejected) == (3, 2, 1)
        (gold,) = store.gold_rows("mx1")
        assert (gold.domain, gold.n_sightings) == ("a.com", 2)
        assert (gold.first_seen, gold.last_seen) == (5, 10)
        # the reject is provenance, never an aggregate
        (summary,) = [b for b in store.bronze_summary() if b.count == 1]
        assert summary.status == "rejected"

    def test_reland_same_run_is_a_noop(self):
        store = SightingStore.in_memory()
        records = [("a.com", 10), ("b.com", 20)]
        self._writer(store).land_sightings("mx1", records)
        stats = self._writer(store).land_sightings("mx1", records)
        assert stats == LandingStats(bronze=0, silver=0, rejected=0, skipped=2)
        assert len(store.sightings()) == 2
        (gold_a, gold_b) = store.gold_rows("mx1")
        assert gold_a.n_sightings == gold_b.n_sightings == 1

    def test_reland_extends_past_landed_prefix(self):
        store = SightingStore.in_memory()
        self._writer(store).land_sightings("mx1", [("a.com", 10)])
        stats = self._writer(store).land_sightings(
            "mx1", [("a.com", 10), ("b.com", 20)]
        )
        assert (stats.skipped, stats.bronze) == (1, 1)
        assert [row.domain for row in store.sightings()] == ["a.com", "b.com"]

    def test_set_position_offsets_the_offered_sequence(self):
        store = SightingStore.in_memory()
        self._writer(store).land_sightings("mx1", [("a.com", 10)])
        # a resumed caller offers only the suffix and declares where
        # that suffix starts; nothing is skipped, nothing duplicated
        writer = self._writer(store)
        writer.set_position("mx1", 1)
        stats = writer.land_sightings("mx1", [("b.com", 20)])
        assert (stats.skipped, stats.bronze) == (0, 1)
        assert len(store.sightings()) == 2

    def test_set_position_rejects_negative(self):
        store = SightingStore.in_memory()
        with pytest.raises(ValueError):
            self._writer(store).set_position("mx1", -1)

    def test_distinct_run_keys_land_independently(self):
        store = SightingStore.in_memory()
        store.open_run("k1", 7, "cfg", "run").land_sightings(
            "mx1", [("a.com", 10)]
        )
        store.open_run("k2", 11, "cfg", "run").land_sightings(
            "mx1", [("a.com", 10)]
        )
        assert len(store.runs()) == 2
        (gold,) = store.gold_rows("mx1")
        assert gold.n_sightings == 2  # gold aggregates across runs

    def test_land_raw_accounting_matches_on_reland(self):
        store = SightingStore.in_memory()
        lines = [
            ("good", "a.com", 10, None),
            ("junk", None, None, "bad_json"),
            ("huge", "b.com", 2**63, None),
        ]
        first_writer = self._writer(store)
        first = [first_writer.land_raw("mx1", *line) for line in lines]
        # one writer per pass; re-landing returns identical reasons
        writer = self._writer(store)
        second = [writer.land_raw("mx1", *line) for line in lines]
        assert [reason for reason, _ in first] == [
            None,
            "bad_json",
            REJECT_TIME_RANGE,
        ]
        assert [reason for reason, _ in second] == [
            reason for reason, _ in first
        ]
        assert all(landed for _, landed in first)
        assert not any(landed for _, landed in second)

    def test_gold_merge_is_batching_invariant(self):
        records = [("a.com", 30), ("b.com", 5), ("a.com", 10), ("a.com", 20)]
        one_shot = SightingStore.in_memory()
        self._writer(one_shot).land_sightings("mx1", records)
        trickle = SightingStore.in_memory()
        writer = self._writer(trickle)
        for record in records:
            writer.land_sightings("mx1", [record])
        assert one_shot.gold_rows() == trickle.gold_rows()
        assert one_shot.sightings() == trickle.sightings()


class TestSqliteDurability:
    def test_survives_reopen(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        with SightingStore.open(path) as store:
            writer = store.open_run("k", 7, "cfg", "run")
            writer.land_sightings("mx1", [("a.com", 10), ("b.com", 20)])
            writer.finish()
        with SightingStore.open(path) as store:
            assert [row.domain for row in store.sightings()] == [
                "a.com",
                "b.com",
            ]
            writer = store.open_run("k", 7, "cfg", "run")
            assert not writer.created
            assert writer.cursor("mx1") == 2

    def test_refuses_foreign_sqlite_file(self, tmp_path):
        path = str(tmp_path / "foreign.sqlite")
        conn = sqlite3.connect(path)
        conn.execute("CREATE TABLE unrelated (x)")
        conn.commit()
        conn.close()
        with pytest.raises(StoreError):
            SightingStore.open(path)

    def test_refuses_non_sqlite_file(self, tmp_path):
        path = tmp_path / "garbage.sqlite"
        path.write_text("this is not a database")
        with pytest.raises(StoreError):
            SightingStore.open(str(path))


# ----------------------------------------------------------------------
# Property: the two backends are observationally identical
# ----------------------------------------------------------------------

_DOMAINS = st.sampled_from(
    ["a.com", "b.net", "c.org", "bad domain", "d.biz", ""]
)
_TIMES = st.integers(min_value=-(2**63) - 2, max_value=2**63 + 2)
_FEEDS = st.sampled_from(["mx1", "mx2", "hum"])
_BATCH = st.lists(st.tuples(_DOMAINS, _TIMES), max_size=8)
_SCRIPT = st.lists(
    st.tuples(st.sampled_from(["k1", "k2"]), _FEEDS, _BATCH), max_size=12
)


def _observe(store: SightingStore):
    """Everything a reader can see, as one comparable value."""
    return (
        [(r.run_key, r.seed, r.config_fingerprint) for r in store.runs()],
        store.gold_rows(),
        store.feed_summaries(),
        store.bronze_summary(),
        [(r.feed, r.domain, r.time) for r in store.sightings()],
        store.first_seen("a.com"),
        store.first_seen("nowhere.example"),
    )


class TestBackendEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(script=_SCRIPT)
    def test_memory_and_sqlite_agree(self, script, tmp_path_factory):
        memory = SightingStore.in_memory()
        path = tmp_path_factory.mktemp("store") / "s.sqlite"
        sqlite_store = SightingStore.open(str(path))
        try:
            for run_key, feed, batch in script:
                for store in (memory, sqlite_store):
                    writer = store.open_run(run_key, 7, "cfg", "test")
                    writer.land_sightings(feed, batch)
                    writer.finish()
            assert _observe(memory) == _observe(sqlite_store)
        finally:
            sqlite_store.close()

    @settings(max_examples=30, deadline=None)
    @given(batch=_BATCH)
    def test_writer_stats_agree(self, batch, tmp_path_factory):
        memory = SightingStore.in_memory()
        path = tmp_path_factory.mktemp("store") / "s.sqlite"
        sqlite_store = SightingStore.open(str(path))
        try:
            stats = [
                store.open_run("k", 7, "cfg", "test").land_sightings(
                    "mx1", batch
                )
                for store in (memory, sqlite_store)
            ]
            assert stats[0] == stats[1]
            assert stats[0].bronze == len(batch)
        finally:
            sqlite_store.close()


class TestRunWriterSurface:
    def test_run_key_format(self):
        assert run_key_for("abc", 2012) == "abc:2012"

    def test_memory_backend_is_default_for_in_memory(self):
        assert isinstance(SightingStore.in_memory().backend, MemoryBackend)

    def test_open_gives_sqlite_backend(self, tmp_path):
        store = SightingStore.open(str(tmp_path / "s.sqlite"))
        try:
            assert isinstance(store.backend, SqliteBackend)
        finally:
            store.close()

    def test_writer_type_round_trip(self):
        store = SightingStore.in_memory()
        writer = store.open_run("k", 7, "cfg", "test")
        assert isinstance(writer, RunWriter)
        assert writer.created
        assert not store.open_run("k", 7, "cfg", "test").created
